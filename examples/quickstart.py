#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline result on one benchmark.

Runs leslie3d (the paper's flagship streaming workload) on the DDR3
baseline and on the RL heterogeneous memory (RLDRAM3 critical words +
LPDDR2 bulk), and prints the throughput gain and critical-word latency
reduction. Takes a few seconds.
"""

from repro import MemoryKind, SimConfig, run_benchmark


def main() -> None:
    config = SimConfig(target_dram_reads=3000)

    print("Simulating leslie3d on the 4-channel DDR3 baseline ...")
    baseline = run_benchmark("leslie3d", config.with_memory(MemoryKind.DDR3))
    print(f"  throughput (sum of IPCs): {baseline.throughput:.2f}")
    print(f"  avg critical-word latency: {baseline.avg_critical_latency:.0f} "
          f"CPU cycles")
    print(f"  DRAM bus utilisation: {baseline.bus_utilization:.1%}")

    print("\nSimulating leslie3d on the RL heterogeneous memory "
          "(word-0 on RLDRAM3, words 1-7 + ECC on LPDDR2) ...")
    rl = run_benchmark("leslie3d", config.with_memory(MemoryKind.RL))
    print(f"  throughput: {rl.throughput:.2f}  "
          f"({rl.speedup_over(baseline):.3f}x vs baseline)")
    print(f"  avg critical-word latency: {rl.avg_critical_latency:.0f} "
          f"CPU cycles "
          f"({rl.avg_critical_latency / baseline.avg_critical_latency - 1:+.1%})")
    print(f"  critical words served by RLDRAM3: "
          f"{rl.fast_service_fraction:.1%}")
    print(f"  memory power: {rl.memory_power_mw / 1000:.1f} W vs "
          f"{baseline.memory_power_mw / 1000:.1f} W baseline")

    gain = rl.speedup_over(baseline) - 1
    print(f"\nCritical-word-first heterogeneous memory gained {gain:+.1%} "
          "throughput on this workload.")
    print("The paper reports +12.9% on average across its 26-program suite "
          "(streaming codes like leslie3d gain the most).")


if __name__ == "__main__":
    main()
