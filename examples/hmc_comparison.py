#!/usr/bin/env python
"""HMC backends vs. the paper's planar organisations.

Section 10 of the paper sketches a future-work embodiment of
critical-word-first on 3D-stacked memory: a Hybrid Memory Cube whose
fast high-frequency layers return the critical word while low-power
layers stream the rest of the line. The ``hmc_hf``, ``hmc_lp``, and
``hmc_cwf`` registry backends model that sketch.

This script runs two benchmarks (one streaming, one pointer-chasing)
on the DDR3 baseline, the paper's RL organisation (RLDRAM3 critical
words + LPDDR2 bulk), and the stacked ``hmc_cwf`` organisation, then
prints a comparison table. The shorter interconnect and faster stacked
arrays should beat even RL on critical-word latency, which the script
asserts at the end.

Run with ``PYTHONPATH=src python examples/hmc_comparison.py``.
Takes roughly half a minute.
"""

from repro import SimConfig, run_benchmark

BENCHMARKS = ("leslie3d", "mcf")
MEMORIES = ("ddr3", "rl", "hmc_cwf")


def main() -> None:
    config = SimConfig(target_dram_reads=2000)
    results = {}
    for benchmark in BENCHMARKS:
        for memory in MEMORIES:
            print(f"simulating {benchmark} on {memory} ...")
            results[benchmark, memory] = run_benchmark(
                benchmark, config.with_memory(memory))

    header = (f"{'benchmark':<10} {'memory':<8} {'throughput':>10} "
              f"{'crit_lat':>9} {'fill_lat':>9} {'fast_frac':>9}")
    print()
    print(header)
    print("-" * len(header))
    for benchmark in BENCHMARKS:
        for memory in MEMORIES:
            r = results[benchmark, memory]
            print(f"{benchmark:<10} {memory:<8} {r.throughput:>10.3f} "
                  f"{r.avg_critical_latency:>9.1f} "
                  f"{r.avg_fill_latency:>9.1f} "
                  f"{r.fast_service_fraction:>9.1%}")

    print()
    for benchmark in BENCHMARKS:
        hmc = results[benchmark, "hmc_cwf"]
        rl = results[benchmark, "rl"]
        saving = 1 - hmc.avg_critical_latency / rl.avg_critical_latency
        print(f"{benchmark}: hmc_cwf critical-word latency "
              f"{hmc.avg_critical_latency:.1f} vs rl "
              f"{rl.avg_critical_latency:.1f} CPU cycles ({saving:+.1%})")
        # The stacked HMC-HF arrays plus the 1250 MHz link must serve
        # critical words faster than planar RLDRAM3 over a DDR bus.
        assert hmc.avg_critical_latency < rl.avg_critical_latency, (
            f"{benchmark}: expected hmc_cwf to beat rl on critical-word "
            f"latency ({hmc.avg_critical_latency:.1f} >= "
            f"{rl.avg_critical_latency:.1f})")
    print("\nOK: hmc_cwf beats rl on critical-word latency for every "
          "benchmark.")


if __name__ == "__main__":
    main()
