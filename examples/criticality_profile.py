#!/usr/bin/env python
"""Critical-word regularity study (paper Figures 3 and 4).

Profiles which word of each cache line is *critical* (requested by the
CPU when the line is fetched from DRAM) for a streaming benchmark
(leslie3d) and a pointer-chasing one (mcf):

* the suite-wide distribution of critical words (Fig 4), and
* per-line histograms for the most-fetched lines (Fig 3), showing that
  each line has a stable preferred word even when it is not word 0.

This regularity is what makes static (word-0) and adaptive (per-line
tag) placement work.
"""

from repro.experiments.criticality import profile_benchmark
from repro.experiments.runner import ExperimentConfig


def bar(fraction: float, width: int = 40) -> str:
    return "#" * round(fraction * width)


def main() -> None:
    config = ExperimentConfig(target_dram_reads=3000, cache_dir=None)

    for bench in ("leslie3d", "mcf"):
        profiler = profile_benchmark(bench, config)
        print(f"\n=== {bench}: {profiler.total} demand fetches ===")
        print("critical-word distribution (Fig 4):")
        for word, fraction in enumerate(profiler.distribution()):
            print(f"  word {word}: {fraction:6.1%} {bar(fraction)}")
        print(f"  word-0 critical: {profiler.word0_fraction:.1%} "
              f"(paper suite average: 67%)")
        print(f"  last-word-repeats (adaptive bound): "
              f"{profiler.repeat_fraction:.1%}")

        print("\nmost-fetched lines (Fig 3): per-line word histograms")
        for hist in profiler.top_lines(5):
            fractions = hist.fractions()
            dominant = hist.dominant_word()
            cells = " ".join(f"{f:4.0%}" for f in fractions)
            print(f"  line {hist.line_address:#014x} "
                  f"({hist.total:3d} fetches) words:[{cells}] "
                  f"dominant=w{dominant}")
        print(f"  mean per-line dominance: "
              f"{profiler.per_line_dominance():.1%} "
              "(how often a line's fetches hit its favourite word)")


if __name__ == "__main__":
    main()
