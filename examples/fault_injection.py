#!/usr/bin/env python
"""ECC / parity path demo (paper Section 4.2.3).

The CWF design wakes the waiting instruction with the critical word
*before* the line's SECDED ECC (which travels with the bulk part) can be
checked; a byte-parity code on the x9 RLDRAM chip guards the early wake.

Part 1 exercises the real codes at the bit level: SECDED(72,64)
encode/decode with injected single and double bit errors, and the byte
parity check.

Part 2 runs a simulation with an artificially high parity-error rate to
show the architectural effect: flagged words fall back to waking at
full-line arrival (after ECC correction), costing latency but never
correctness.
"""

import random

from repro.core.cwf import CriticalWordMemory, CWFConfig
from repro.core.ecc import SECDED, byte_parity, parity_check
from repro.sim.config import MemoryKind, SimConfig as _SimConfig
from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
from repro.workloads.profiles import profile_for


def part1_codes() -> None:
    print("=== SECDED(72,64) and byte parity, bit-level ===")
    rng = random.Random(1)
    word = rng.getrandbits(64)
    code = SECDED.encode(word)
    print(f"word {word:#018x} -> 72-bit codeword {code:#020x}")

    decoded, status = SECDED.decode(code)
    print(f"clean decode: {status} (match={decoded == word})")

    flipped = code ^ (1 << rng.randrange(72))
    decoded, status = SECDED.decode(flipped)
    print(f"single-bit error: {status} (recovered={decoded == word})")

    b1, b2 = rng.sample(range(72), 2)
    decoded, status = SECDED.decode(code ^ (1 << b1) ^ (1 << b2))
    print(f"double-bit error: {status} (uncorrectable, data=None: "
          f"{decoded is None})")

    parity = byte_parity(word)
    corrupted = word ^ (1 << rng.randrange(64))
    print(f"byte parity clean: {parity_check(word, parity)}, "
          f"after 1-bit flip: {parity_check(corrupted, parity)}")
    print()


def part2_architecture() -> None:
    print("=== parity deferral under injected faults ===")
    for rate in (0.0, 0.2):
        sim_config = _SimConfig(memory=MemoryKind.RL, target_dram_reads=1500)
        profile = profile_for("leslie3d")
        traces = make_traces(profile, sim_config)
        events_memory = None

        # Build the RL memory directly so we can set the error rate.
        system = SimulationSystem(
            sim_config, traces,
            memory=None if rate == 0.0 else None,
            profile=profile)
        # Swap in a fault-injecting memory before running.
        system.memory = CriticalWordMemory(
            system.events, CWFConfig(parity_error_rate=rate))
        system.uncore.memory = system.memory
        prewarm_l2(system, profile)
        result = system.run()
        memory = system.memory
        print(f"parity error rate {rate:4.0%}: "
              f"avg critical latency {result.avg_critical_latency:5.0f} cy, "
              f"deferred wakes {memory.parity_deferrals}, "
              f"parity checks {memory.fault_injector.stats.checks}")
    print("\nWith faults injected, flagged critical words wait for the "
          "full line + ECC;")
    print("coverage is unchanged (SECDED still corrects), only the "
          "fast-wake is lost.")


if __name__ == "__main__":
    part1_codes()
    part2_architecture()
