#!/usr/bin/env python
"""Render paper figures as terminal charts.

Regenerates Figure 6 (CWF throughput) and Figure 11 (bandwidth vs
energy savings) and draws them as ASCII bar/scatter charts. Uses the
shared result cache, so repeated invocations are instant.

Usage: python examples/paper_figures.py [--reads N] [--benchmarks a,b,c]
"""

import argparse
from dataclasses import replace

from repro.experiments.cwf_eval import figure_6
from repro.experiments.energy_eval import figure_11
from repro.experiments.runner import default_config
from repro.viz import bar_chart, table_scatter


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--reads", type=int, default=1200)
    parser.add_argument("--benchmarks",
                        default="leslie3d,mcf,bzip2,mg,gobmk,libquantum")
    args = parser.parse_args()
    config = replace(default_config(),
                     target_dram_reads=args.reads,
                     benchmarks=tuple(args.benchmarks.split(",")))

    print("Regenerating Figure 6 (CWF throughput vs DDR3 baseline)...\n")
    fig6 = figure_6(config)
    print(bar_chart(fig6, value="rl", reference=1.0))
    print("\n(reference marker '|' = DDR3 baseline; paper avg: RL 1.129)\n")

    print("Regenerating Figure 11 (bandwidth vs energy savings)...\n")
    fig11 = figure_11(config)
    print(table_scatter(fig11, x="bus_utilization", y="energy_savings",
                        width=56, height=14))
    print("\nEach mark is a workload (first letter of its name). The "
          "paper's claim:\nsavings grow with bandwidth utilisation.")


if __name__ == "__main__":
    main()
