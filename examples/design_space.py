#!/usr/bin/env python
"""Design-space walk across every memory organisation in the paper.

For one benchmark, runs the whole zoo — homogeneous DDR3 / RLDRAM3 /
LPDDR2, the three CWF pairings (RD / RL / DL), adaptive and oracle
placement, the random-mapping control, and the page-placement
alternative — and prints a performance / latency / power summary table.

Usage: python examples/design_space.py [benchmark] (default: mcf)
"""

import sys

from repro import MemoryKind, SimConfig, run_benchmark
from repro.workloads.profiles import PROFILES

ORGANISATIONS = [
    MemoryKind.DDR3,
    MemoryKind.RLDRAM3,
    MemoryKind.LPDDR2,
    MemoryKind.RD,
    MemoryKind.RL,
    MemoryKind.DL,
    MemoryKind.RL_ADAPTIVE,
    MemoryKind.RL_ORACLE,
    MemoryKind.RL_RANDOM,
    MemoryKind.PAGE_PLACEMENT,
]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    if benchmark not in PROFILES:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {sorted(PROFILES)}")
    config = SimConfig(target_dram_reads=2500)

    print(f"benchmark: {benchmark}  "
          f"(8 cores, 4 channels, {config.target_dram_reads} fetches)")
    header = (f"{'memory':<16} {'speedup':>8} {'crit lat':>9} "
              f"{'fill lat':>9} {'fast%':>6} {'bus%':>6} {'power W':>8}")
    print(header)
    print("-" * len(header))

    baseline = None
    for kind in ORGANISATIONS:
        result = run_benchmark(benchmark, config.with_memory(kind))
        if baseline is None:
            baseline = result
        print(f"{kind.value:<16} "
              f"{result.speedup_over(baseline):>8.3f} "
              f"{result.avg_critical_latency:>9.0f} "
              f"{result.avg_fill_latency:>9.0f} "
              f"{result.fast_service_fraction:>6.1%} "
              f"{result.bus_utilization:>6.1%} "
              f"{result.memory_power_mw / 1000:>8.2f}")

    print("\nspeedup is throughput normalised to the DDR3 baseline; "
          "crit/fill latency in CPU cycles;")
    print("fast% is the share of critical words served by the "
          "low-latency module.")


if __name__ == "__main__":
    main()
