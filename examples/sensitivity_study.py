#!/usr/bin/env python
"""Sensitivity study: how robust is the CWF gain to core/uncore sizing?

Sweeps the structures the paper holds fixed (Table 1) and shows how the
RL organisation's benefit responds:

* ROB size — more in-flight loads overlap more of the latency the fast
  DIMM removes, shrinking the relative gain.
* MSHR file size — too few MSHRs throttle everything equally.
* Prefetch degree — better prefetching hides latency and (like the
  paper's no-prefetcher experiment in reverse) reduces the CWF benefit.

Usage: python examples/sensitivity_study.py [benchmark]
"""

import sys

from repro.sim.config import MemoryKind
from repro.sweep import sweep


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "leslie3d"
    reads = 1200

    for parameter, values in (
        ("rob_size", [16, 64, 192]),
        ("mshr_capacity", [8, 64, 256]),
        ("prefetch_degree", [0, 2, 6]),
    ):
        if parameter == "prefetch_degree" and 0 in values:
            values = [v for v in values if v > 0]
        print(f"=== {parameter} ===")
        base = sweep(benchmark, parameter, values,
                     memory=MemoryKind.DDR3, target_dram_reads=reads)
        rl = sweep(benchmark, parameter, values,
                   memory=MemoryKind.RL, target_dram_reads=reads)
        print(f"{parameter:>16} {'DDR3 thr':>9} {'RL thr':>9} "
              f"{'RL gain':>8}")
        for b, r in zip(base.rows, rl.rows):
            gain = r["throughput"] / b["throughput"] - 1
            print(f"{b[parameter]:>16} {b['throughput']:>9.2f} "
                  f"{r['throughput']:>9.2f} {gain:>+8.1%}")
        print()

    print("The CWF gain is a latency effect: anything that hides or "
          "overlaps memory\nlatency (bigger windows, deeper prefetching) "
          "trims it — the paper's\nno-prefetcher experiment (17.3% vs "
          "12.9%) is the same phenomenon.")


if __name__ == "__main__":
    main()
