#!/usr/bin/env python
"""Energy trade-off study (paper Figures 2, 10 and 11).

Part 1 sweeps the Micron-style chip power model against bus utilisation
to show why heterogeneity pays: RLDRAM3's background power floor is an
order of magnitude above LPDDR2's, but the gap shrinks as activity
rises.

Part 2 runs a high-bandwidth streaming workload and a low-bandwidth one
through the baseline and the RL memory and rolls up system energy with
the paper's 25%-DRAM / 1/3-static-CPU model — reproducing the finding
that energy savings grow with bandwidth utilisation.
"""

from repro import MemoryKind, SimConfig, run_benchmark
from repro.dram.device import DRAMKind
from repro.dram.power import default_power_model
from repro.energy.model import SystemEnergyModel


def part1_power_curves() -> None:
    print("=== chip power vs bus utilisation (Fig 2) ===")
    models = {
        "DDR3   ": (default_power_model(DRAMKind.DDR3), 0.5),
        "RLDRAM3": (default_power_model(DRAMKind.RLDRAM3), 0.0),
        "LPDDR2 ": (default_power_model(DRAMKind.LPDDR2), 0.5),
    }
    print(f"{'util':>5}  " + "  ".join(models))
    for util in (0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
        cells = []
        for name, (model, hit_rate) in models.items():
            power = model.power_at_utilization(util, row_hit_rate=hit_rate)
            cells.append(f"{power.total_mw:7.0f}")
        print(f"{util:5.0%}  " + "  ".join(cells) + "   mW/chip")
    print()


def part2_system_energy() -> None:
    print("=== system energy, RL vs DDR3 baseline (Fig 10/11) ===")
    config = SimConfig(target_dram_reads=2500)
    for bench in ("mg", "gobmk"):
        base = run_benchmark(bench, config.with_memory(MemoryKind.DDR3))
        rl = run_benchmark(bench, config.with_memory(MemoryKind.RL))
        report = SystemEnergyModel(base).report(rl)
        print(f"{bench:<8} baseline bus util {base.bus_utilization:5.1%}  "
              f"RL speedup {rl.speedup_over(base):5.3f}  "
              f"memory energy {report.normalized_memory_energy:5.3f}  "
              f"system energy {report.normalized_system_energy:5.3f}")
    print("\nHigh-bandwidth workloads (mg) save energy with RL; "
          "low-bandwidth ones (gobmk)")
    print("pay RLDRAM3's background power without amortising it "
          "(paper Sec 6.1.3).")


if __name__ == "__main__":
    part1_power_curves()
    part2_system_energy()
