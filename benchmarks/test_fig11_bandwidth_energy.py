"""Figure 11: bandwidth utilisation vs RL energy savings (scatter).

Paper: savings generally grow with utilisation, because RLDRAM3's power
gap vs DDR3 shrinks at high activity.
"""

import statistics

from conftest import run_and_print

from repro.experiments.energy_eval import figure_11


def test_fig11_energy_vs_utilization(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_11, experiment_config)
    rows = [(r["bus_utilization"], r["energy_savings"])
            for r in table.rows]
    if len(rows) >= 10:
        # Positive rank correlation between utilisation and savings.
        rows.sort()
        half = len(rows) // 2
        low = statistics.mean(s for _, s in rows[:half])
        high = statistics.mean(s for _, s in rows[half:])
        assert high > low
