"""Tables 1 and 2: configuration tables from live model parameters."""

from conftest import run_and_print

from repro.experiments.tables import table_1, table_2


def test_table1_simulator_parameters(benchmark, experiment_config):
    table = run_and_print(benchmark, table_1, experiment_config)
    values = {r["parameter"]: r["value"] for r in table.rows}
    assert values["Re-Order-Buffer"] == "64 entry"
    assert values["Total DRAM Capacity"] == "8 GB"
    assert values["High/Low Watermarks"] == "32/16"


def test_table2_timing_parameters(benchmark, experiment_config):
    table = run_and_print(benchmark, table_2, experiment_config)
    by_param = {r["parameter"]: r for r in table.rows}
    # Paper Table 2, exact.
    assert by_param["tRC"]["ddr3"] == 50.0
    assert by_param["tRC"]["rldram3"] == 12.0
    assert by_param["tRC"]["lpddr2"] == 60.0
    assert by_param["tRL"]["rldram3"] == 10.0
    assert by_param["tWL"]["rldram3"] == 11.25
    assert by_param["tFAW"]["lpddr2"] == 50.0
