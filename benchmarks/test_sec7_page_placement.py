"""Section 7.1: page-placement heterogeneous memory vs CWF.

Paper: placing the hottest 7.6 % of pages in RLDRAM3 yields -9.3 % to
+11.2 % (avg ~+8 %), consistently below the CWF schemes, because the
hottest pages capture at most ~30 % of accesses.
"""

from conftest import run_and_print

from repro.experiments.page_placement import section_7_1


def test_sec71_page_placement(benchmark, experiment_config):
    table = run_and_print(benchmark, section_7_1, experiment_config)
    mean = table.rows[-1]
    # Page placement captures a bounded access share...
    assert mean["fast_fraction"] < 0.5
    # ... and trails the critical-word-first scheme.
    assert mean["page_placement"] < mean["rl"]
