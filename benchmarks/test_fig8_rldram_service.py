"""Figure 8: fraction of critical words served by the RLDRAM3 module.

Paper: with static word-0 placement, 67 % of critical-word requests are
served from the fast module on average; streaming codes are >85 %,
pointer chasers ~30 %.
"""

from conftest import run_and_print

from repro.experiments.cwf_eval import figure_8


def test_fig8_fast_service(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_8, experiment_config)
    rows = {r["benchmark"]: r["fast_fraction"] for r in table.rows}
    mean = rows.pop("MEAN")
    if len(rows) > 10:
        assert 0.55 < mean < 0.8
        assert rows["leslie3d"] > 0.8
        assert rows["mcf"] < 0.5
    # Static placement: fast service fraction == word-0 fraction.
    for row in table.rows:
        assert abs(row["fast_fraction"] - row["word0_fraction"]) < 0.05
