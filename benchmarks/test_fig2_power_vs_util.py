"""Figure 2: chip power vs bus utilisation (analytic, no simulation).

Paper: RLDRAM3's background power keeps it far above DDR3/LPDDR2 at low
utilisation; at high activity the curves are more comparable.
"""

from conftest import run_and_print

from repro.experiments.power_curves import figure_2


def test_fig2_power_curves(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_2, experiment_config)
    idle, full = table.rows[0], table.rows[-1]
    assert idle["rldram3_mw"] > 2 * idle["ddr3_mw"]
    assert idle["lpddr2_mw"] < idle["ddr3_mw"]
    idle_ratio = idle["rldram3_mw"] / idle["ddr3_mw"]
    full_ratio = full["rldram3_mw"] / full["ddr3_mw"]
    assert full_ratio < idle_ratio  # gap shrinks with activity
