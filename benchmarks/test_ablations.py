"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one design decision and shows its contribution:

* FR-FCFS vs strict FCFS scheduling on the baseline.
* Open-page vs close-page policy for LPDDR2.
* Sub-ranked fast DIMM (4 x single-chip x9 ranks per sub-channel) vs a
  single wide rank (Sec 4.2.4's first optimisation).
* Shared (aggregated) vs per-channel command bus for the fast side
  (Sec 4.2.4's second optimisation).
* MSHR split-transfer support on/off — without the early critical-word
  wake the whole CWF idea collapses to the bulk channel's latency.
"""

import dataclasses

from repro.core.cwf import CriticalWordMemory, CWFConfig
from repro.cpu.prefetch import PrefetcherConfig
from repro.cpu.uncore import UncoreConfig
from repro.dram.controller import ControllerConfig
from repro.dram.device import DRAMKind, LPDDR2_DEVICE, PagePolicy
from repro.dram.scheduler import SchedulingPolicy
from repro.memsys.homogeneous import HomogeneousConfig, HomogeneousMemory
from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
from repro.workloads.profiles import profile_for

BENCH = "leslie3d"
READS = 1500


def run_custom(memory_builder=None, uncore_override=None,
               benchmark=BENCH, memory_kind=MemoryKind.DDR3):
    config = SimConfig(memory=memory_kind, target_dram_reads=READS)
    if uncore_override is not None:
        config = dataclasses.replace(config, uncore=uncore_override)
    profile = profile_for(benchmark)
    traces = make_traces(profile, config)
    system = SimulationSystem(config, traces, profile=profile)
    if memory_builder is not None:
        system.memory = memory_builder(system.events)
        system.uncore.memory = system.memory
    prewarm_l2(system, profile)
    result = system.run()
    result.benchmark = benchmark
    return result


def test_ablation_scheduler_frfcfs_vs_fcfs(benchmark):
    def run(policy):
        return run_custom(memory_builder=lambda ev: HomogeneousMemory(
            ev, HomogeneousConfig(),
            controller_config=ControllerConfig(scheduling=policy)))

    def body():
        return run(SchedulingPolicy.FR_FCFS), run(SchedulingPolicy.FCFS)

    fr, fcfs = benchmark.pedantic(body, rounds=1, iterations=1)
    print(f"\nFR-FCFS thr={fr.throughput:.2f} "
          f"crit={fr.avg_critical_latency:.0f}; "
          f"FCFS thr={fcfs.throughput:.2f} "
          f"crit={fcfs.avg_critical_latency:.0f}")
    # Row-hit-first scheduling must not lose to strict FCFS.
    assert fr.throughput >= fcfs.throughput * 0.98


def test_ablation_lpddr2_page_policy(benchmark):
    def run(policy):
        device = dataclasses.replace(LPDDR2_DEVICE, page_policy=policy)
        return run_custom(memory_builder=lambda ev: HomogeneousMemory(
            ev, HomogeneousConfig(kind=DRAMKind.LPDDR2), device=device),
            memory_kind=MemoryKind.LPDDR2)

    def body():
        return run(PagePolicy.OPEN), run(PagePolicy.CLOSE)

    open_pg, close_pg = benchmark.pedantic(body, rounds=1, iterations=1)
    print(f"\nopen-page thr={open_pg.throughput:.2f} "
          f"pw={open_pg.memory_power_mw:.0f}mW; "
          f"close-page thr={close_pg.throughput:.2f} "
          f"pw={close_pg.memory_power_mw:.0f}mW")
    # Open-page is the right LPDRAM policy for streaming workloads: row
    # hits avoid the ACT-per-access cost in both time and array energy.
    # (Average *power* can favour close-page at low utilisation because
    # auto-precharged banks reach power-down sooner — the performance
    # gap is the decisive term.)
    assert open_pg.throughput > close_pg.throughput


def test_ablation_fast_subranking(benchmark):
    def run(ranks):
        return run_custom(
            memory_builder=lambda ev: CriticalWordMemory(
                ev, CWFConfig(fast_ranks_per_subchannel=ranks)),
            memory_kind=MemoryKind.RL)

    def body():
        return run(4), run(1)

    subranked, wide = benchmark.pedantic(body, rounds=1, iterations=1)
    print(f"\nsub-ranked(4) thr={subranked.throughput:.2f} "
          f"crit={subranked.avg_critical_latency:.0f}; "
          f"wide(1) thr={wide.throughput:.2f} "
          f"crit={wide.avg_critical_latency:.0f}")
    # More ranks -> more bank-level parallelism on the fast side: the
    # critical path must not get worse.
    assert (subranked.avg_critical_latency
            <= wide.avg_critical_latency * 1.10)


def test_ablation_shared_command_bus(benchmark):
    def run(shared):
        return run_custom(
            memory_builder=lambda ev: CriticalWordMemory(
                ev, CWFConfig(shared_command_bus=shared)),
            memory_kind=MemoryKind.RL)

    def body():
        return run(True), run(False)

    shared, private = benchmark.pedantic(body, rounds=1, iterations=1)
    print(f"\nshared cmd bus thr={shared.throughput:.2f} "
          f"crit={shared.avg_critical_latency:.0f}; "
          f"private thr={private.throughput:.2f} "
          f"crit={private.avg_critical_latency:.0f}")
    # Sec 4.2.4: the 4:1 data:command ratio makes sharing nearly free
    # (within ~10%), while saving 3 controllers and 3 address buses.
    assert shared.throughput >= private.throughput * 0.90


def test_ablation_mshr_split_wake(benchmark):
    no_split = UncoreConfig(
        prefetcher=PrefetcherConfig(), critical_word_wakeup=False)

    def body():
        with_split = run_custom(memory_kind=MemoryKind.RL)
        without = run_custom(memory_kind=MemoryKind.RL,
                             uncore_override=no_split)
        return with_split, without

    with_split, without = benchmark.pedantic(body, rounds=1, iterations=1)
    print(f"\nsplit-wake thr={with_split.throughput:.2f}; "
          f"full-line wake thr={without.throughput:.2f}")
    # The early critical-word wake is the mechanism behind the paper's
    # gain; removing it must hurt clearly.
    assert with_split.throughput > without.throughput * 1.05
