"""Figure 1: homogeneous DRAM flavour sensitivity.

Paper: RLDRAM3 +31 % throughput over DDR3, LPDDR2 -13 %; RLDRAM3 memory
latency ~43 % below DDR3, LPDDR2 ~41 % above (Fig 1b splits queue/core).
"""

from conftest import run_and_print

from repro.experiments.homogeneous import figure_1a, figure_1b


def test_fig1a_homogeneous_throughput(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_1a, experiment_config)
    mean = table.rows[-1]
    assert mean["benchmark"] == "MEAN"
    # Shape: RLDRAM3 wins, LPDDR2 loses.
    assert mean["rldram3"] > 1.05
    assert mean["lpddr2"] < 0.95


def test_fig1b_latency_breakdown(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_1b, experiment_config)
    means = {r["flavour"]: r for r in table.rows if r["benchmark"] == "MEAN"}
    assert means["rldram3"]["total"] < means["ddr3"]["total"]
    assert means["lpddr2"]["total"] > means["ddr3"]["total"]
    # Queue delay is a significant component for DDR3 (paper Fig 1b).
    assert means["ddr3"]["queue_latency"] > 0
