"""Figure 3: per-line critical-word histograms for leslie3d and mcf.

Paper: hot lines show a well-defined bias toward one or two words —
word 0 for leslie3d, varied-but-stable words for mcf.
"""

from conftest import run_and_print

from repro.experiments.criticality import figure_3


def test_fig3_per_line_bias(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_3, experiment_config)
    dominance = {r["benchmark"]: r["dominant_fraction"] for r in table.rows
                 if str(r["benchmark"]).endswith("mean-dominance")}
    # Strong per-line bias for both programs (paper Fig 3).
    assert dominance["leslie3d-mean-dominance"] > 0.6
    assert dominance["mcf-mean-dominance"] > 0.6
    # leslie3d's top lines are word-0 dominated; mcf's are not all w0.
    leslie_rows = [r for r in table.rows
                   if r["benchmark"] == "leslie3d" and r["line_rank"] >= 0]
    assert sum(r["dominant_word"] == 0 for r in leslie_rows) \
        >= len(leslie_rows) * 0.6
    mcf_rows = [r for r in table.rows
                if r["benchmark"] == "mcf" and r["line_rank"] >= 0]
    assert any(r["dominant_word"] != 0 for r in mcf_rows)
