"""Telemetry overhead bench: null sink vs fully instrumented runs.

Reports wall time for the same deterministic run in three modes —
un-instrumented (null-sink defaults), metrics-only, and metrics+trace —
so regressions in the hot-path instrumentation show up as a ratio.
The hard <=5% null-sink bound lives in tests/test_telemetry.py; this
bench is for watching the *instrumented* cost, which is allowed to be
larger (it does real work) but should stay within a small factor.
"""

import pytest

from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
from repro.telemetry import TelemetrySession
from repro.workloads.profiles import profile_for

BENCH = "mcf"
READS = 1500


def _run(telemetry=None):
    config = SimConfig(memory=MemoryKind.RL, target_dram_reads=READS)
    profile = profile_for(BENCH)
    traces = make_traces(profile, config)
    system = SimulationSystem(config, traces, profile=profile,
                              telemetry=telemetry)
    prewarm_l2(system, profile)
    return system.run()


@pytest.mark.benchmark(group="telemetry-overhead")
def test_null_sink_run(benchmark):
    result = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert result.telemetry is None


@pytest.mark.benchmark(group="telemetry-overhead")
def test_metrics_only_run(benchmark):
    session = TelemetrySession(trace_enabled=False)

    def run():
        return _run(session.begin_run(BENCH, "rl"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.telemetry is not None
    assert result.telemetry["critical_latency"]["count"] > 0


@pytest.mark.benchmark(group="telemetry-overhead")
def test_metrics_and_trace_run(benchmark):
    session = TelemetrySession(trace_enabled=True)

    def run():
        return _run(session.begin_run(BENCH, "rl"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.telemetry is not None
    assert session._tracers and session._tracers[-1].events
