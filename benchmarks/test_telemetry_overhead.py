"""Telemetry overhead bench: null sink vs fully instrumented runs.

Reports wall time for the same deterministic run in three modes —
un-instrumented (null-sink defaults), metrics-only, and metrics+trace —
so regressions in the hot-path instrumentation show up as a ratio.

Overhead budget (enforced by ``test_instrumented_overhead_budget``,
best-of-3 CPU time, interleaved to cancel machine drift):

* metrics-only:    <= 2.0x the null-sink run
* metrics + trace: <= 3.5x the null-sink run

The budgets are deliberately above today's measured ratios (~1.3x and
~2.2x on the reference machine) so only a real hot-path regression —
telemetry probes growing work on the un-instrumented path, or the
instrumented path picking up per-event allocations — trips them, not
scheduler noise. The much harder <=5% *null-sink* bound (telemetry off
must cost nothing) lives in tests/test_telemetry.py and is tier-1.
"""

import time

import pytest

from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
from repro.telemetry import TelemetrySession
from repro.workloads.profiles import profile_for

BENCH = "mcf"
READS = 1500

METRICS_BUDGET = 2.0
TRACE_BUDGET = 3.5


def _run(telemetry=None):
    config = SimConfig(memory=MemoryKind.RL, target_dram_reads=READS)
    profile = profile_for(BENCH)
    traces = make_traces(profile, config)
    system = SimulationSystem(config, traces, profile=profile,
                              telemetry=telemetry)
    prewarm_l2(system, profile)
    return system.run()


@pytest.mark.benchmark(group="telemetry-overhead")
def test_null_sink_run(benchmark):
    result = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert result.telemetry is None


@pytest.mark.benchmark(group="telemetry-overhead")
def test_metrics_only_run(benchmark):
    session = TelemetrySession(trace_enabled=False)

    def run():
        return _run(session.begin_run(BENCH, "rl"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.telemetry is not None
    assert result.telemetry["critical_latency"]["count"] > 0


@pytest.mark.benchmark(group="telemetry-overhead")
def test_metrics_and_trace_run(benchmark):
    session = TelemetrySession(trace_enabled=True)

    def run():
        return _run(session.begin_run(BENCH, "rl"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.telemetry is not None
    assert session._tracers and session._tracers[-1].events


def _best_cpu(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


def test_instrumented_overhead_budget():
    """Instrumentation cost must stay within the stated budgets.

    Interleaved best-of-3 CPU time: each mode is measured in the same
    loop so a machine-wide slowdown hits all three equally and the
    ratios stay meaningful.
    """
    def metrics_run():
        session = TelemetrySession(trace_enabled=False)
        _run(session.begin_run(BENCH, "rl"))

    def trace_run():
        session = TelemetrySession(trace_enabled=True)
        _run(session.begin_run(BENCH, "rl"))

    null_t = metrics_t = trace_t = float("inf")
    for _ in range(3):
        start = time.process_time()
        _run()
        null_t = min(null_t, time.process_time() - start)
        start = time.process_time()
        metrics_run()
        metrics_t = min(metrics_t, time.process_time() - start)
        start = time.process_time()
        trace_run()
        trace_t = min(trace_t, time.process_time() - start)

    metrics_ratio = metrics_t / null_t
    trace_ratio = trace_t / null_t
    assert metrics_ratio <= METRICS_BUDGET, (
        f"metrics-only run is {metrics_ratio:.2f}x the null-sink run "
        f"(budget {METRICS_BUDGET}x): null={null_t:.3f}s "
        f"metrics={metrics_t:.3f}s")
    assert trace_ratio <= TRACE_BUDGET, (
        f"metrics+trace run is {trace_ratio:.2f}x the null-sink run "
        f"(budget {TRACE_BUDGET}x): null={null_t:.3f}s "
        f"trace={trace_t:.3f}s")
