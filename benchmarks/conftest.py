"""Shared configuration for the per-figure benchmark harness.

Each benchmark regenerates one table/figure of the paper and prints it.
Simulation results are cached in ``.repro_cache`` so artefacts that
share runs (Fig 6/7/8/9...) simulate each configuration once.

Scale knobs (environment):

* ``REPRO_READS``   — demand fetches per run (default 2000 here; the
  paper uses 2M. Raise for tighter numbers, e.g. REPRO_READS=20000).
* ``REPRO_BENCHMARKS`` — subset of the 26-program suite.
"""

import os

import pytest

from repro.experiments.runner import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config():
    reads = int(os.environ.get("REPRO_READS", 2000))
    benches = tuple(b for b in os.environ.get("REPRO_BENCHMARKS",
                                              "").split(",") if b.strip())
    cache = os.environ.get("REPRO_CACHE", ".repro_cache")
    return ExperimentConfig(
        target_dram_reads=reads,
        benchmarks=benches,
        cache_dir=None if cache.lower() == "off" else cache)


def run_and_print(benchmark, fn, config):
    """Run an experiment once under pytest-benchmark and print its table."""
    table = benchmark.pedantic(fn, args=(config,), rounds=1, iterations=1)
    print()
    print(table.format())
    return table
