"""Section 6.1.1 controls: random mapping and no-prefetcher runs.

Paper: random critical-word mapping collapses the gain to +2.1 % (many
apps degrade); disabling the prefetcher raises the RL gain from 12.9 %
to 17.3 % (more latency left to hide).
"""

from conftest import run_and_print

from repro.experiments.controls import no_prefetcher, random_mapping


def test_random_mapping_control(benchmark, experiment_config):
    table = run_and_print(benchmark, random_mapping, experiment_config)
    mean = table.rows[-1]
    # Random placement finds the critical word in RLDRAM ~1/8 of the
    # time and loses most of the benefit.
    assert mean["fast_fraction"] < 0.25
    assert mean["rl_random"] < mean["rl"]
    assert mean["rl_random"] < 1.05


def test_no_prefetcher_raises_gain(benchmark, experiment_config):
    table = run_and_print(benchmark, no_prefetcher, experiment_config)
    mean = table.rows[-1]
    # Without prefetching there is more memory latency to hide, so the
    # CWF gain grows (paper: 17.3% vs 12.9%).
    assert mean["rl_noprefetch"] > mean["rl"] - 0.02
