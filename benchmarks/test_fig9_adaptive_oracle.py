"""Figure 9: RL variants — static, adaptive, oracle, all-RLDRAM3.

Paper averages: RL +12.9 %, RL AD +15.7 %, RL OR +28 %, all-RLDRAM3
+31 %. The ordering RL <= RL AD <= RL OR <= RLDRAM3 is the claim.
"""

from conftest import run_and_print

from repro.experiments.cwf_eval import figure_9


def test_fig9_variants(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_9, experiment_config)
    mean = table.rows[-1]
    assert mean["rl"] > 1.0
    # Adaptive placement captures more critical words than static.
    assert mean["rl_ad"] >= mean["rl"] * 0.97
    # Oracle bounds both; the all-RLDRAM3 system bounds the oracle.
    assert mean["rl_or"] >= mean["rl_ad"] * 0.98
    assert mean["rl_or"] >= mean["rl"]
    assert mean["rldram3"] >= mean["rl_or"] * 0.95
