"""Figure 7: average critical-word latency per configuration.

Paper: the CWF organisations cut the critical word's latency by ~30 %
(RD) and ~22 % (RL) vs the baseline.
"""

from conftest import run_and_print

from repro.experiments.cwf_eval import figure_7


def test_fig7_critical_latency(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_7, experiment_config)
    mean = table.rows[-1]
    assert mean["rd"] < mean["ddr3"]
    assert mean["rl"] < mean["ddr3"]
    # RD (DDR3 bulk) beats RL (LPDDR2 bulk) on latency.
    assert mean["rd"] <= mean["rl"] * 1.05
    reduction_rl = 1 - mean["rl"] / mean["ddr3"]
    assert reduction_rl > 0.10  # paper: 22 %
