"""Figure 6: RD / RL / DL throughput vs the DDR3 baseline.

Paper averages: RD +21 %, RL +12.9 %, DL -9 %.
"""

from conftest import run_and_print

from repro.experiments.cwf_eval import figure_6


def test_fig6_cwf_throughput(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_6, experiment_config)
    mean = table.rows[-1]
    # Ordering: RD > RL > DL, with RL a net win and DL roughly neutral
    # or a loss (it trades DDR3 bulk for LPDDR2 bulk).
    assert mean["rd"] > mean["rl"] > mean["dl"]
    assert mean["rl"] > 1.0
    assert mean["rd"] > 1.05
    assert mean["dl"] < 1.05
