"""Store overhead bench: budgets and durability must not tax the hot path.

The artifact store sits under every cache hit the executor takes, so
two ratios are guarded here, both measured interleaved in the same
loop so machine-wide drift cancels out:

* a *budgeted* store (auto-gc armed, journal appended per access) must
  cost <= 3x an unbounded store for the same put/get mix — budget
  enforcement is an O(1) byte-counter check per put, not a directory
  walk, and the journal append is one O_APPEND write;
* the store's *get* hit path (index read + blob read + digest
  re-verify) must cost <= 25x a raw ``read_bytes`` of the same
  payload — the sha256 over a few-KiB blob is the irreducible price
  of catching bit rot, and this bound trips only if the hit path
  grows an extra stat/scan, not on hash throughput noise.

Budgets are far above the measured ratios on the reference machine
(~1.1x and ~6x respectively); they catch accidental O(n) work leaking
into puts or gets, not scheduler jitter.
"""

import json
import time

from repro.store import ArtifactStore


def _mix(store, payloads, rounds=3):
    """One deterministic put+get mix; returns hits observed."""
    for i, payload in enumerate(payloads):
        store.put_bytes(f"key-{i}", payload)
    hits = 0
    for _ in range(rounds):
        for i in range(len(payloads)):
            if store.get_bytes(f"key-{i}") is not None:
                hits += 1
    return hits


def _payloads(n=32, size=2048):
    return [json.dumps({"i": i, "pad": "x" * size}).encode()
            for i in range(n)]


def test_budgeted_store_overhead(tmp_path):
    payloads = _payloads()
    total = sum(len(p) for p in payloads)

    plain_t = budget_t = float("inf")
    for round_no in range(3):
        plain = ArtifactStore(tmp_path / f"plain-{round_no}", tier="results")
        # Budget comfortably above the working set: gc arms but never
        # fires, so this measures the enforcement check, not eviction.
        budgeted = ArtifactStore(tmp_path / f"budget-{round_no}",
                                 tier="results", budget_bytes=total * 4)

        start = time.process_time()
        hits = _mix(plain, payloads)
        plain_t = min(plain_t, time.process_time() - start)
        assert hits == len(payloads) * 3

        start = time.process_time()
        hits = _mix(budgeted, payloads)
        budget_t = min(budget_t, time.process_time() - start)
        assert hits == len(payloads) * 3
        assert budgeted.counters["evictions"] == 0

    ratio = budget_t / plain_t
    assert ratio <= 3.0, (
        f"budgeted store cost {ratio:.2f}x the unbounded store "
        f"({budget_t * 1e3:.1f}ms vs {plain_t * 1e3:.1f}ms)")


def test_get_hit_path_overhead(tmp_path):
    payloads = _payloads()
    store = ArtifactStore(tmp_path / "store", tier="results")
    raw_dir = tmp_path / "raw"
    raw_dir.mkdir()
    for i, payload in enumerate(payloads):
        store.put_bytes(f"key-{i}", payload)
        (raw_dir / f"key-{i}.json").write_bytes(payload)

    raw_t = store_t = float("inf")
    for _ in range(3):
        start = time.process_time()
        for _ in range(5):
            for i in range(len(payloads)):
                assert (raw_dir / f"key-{i}.json").read_bytes()
        raw_t = min(raw_t, time.process_time() - start)

        start = time.process_time()
        for _ in range(5):
            for i in range(len(payloads)):
                assert store.get_bytes(f"key-{i}") is not None
        store_t = min(store_t, time.process_time() - start)

    ratio = store_t / raw_t
    assert ratio <= 25.0, (
        f"store hit path cost {ratio:.2f}x a raw read "
        f"({store_t * 1e3:.1f}ms vs {raw_t * 1e3:.1f}ms)")
