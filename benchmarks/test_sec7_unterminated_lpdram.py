"""Section 7.2: unterminated (Malladi-style) LPDRAM variant.

Paper: dropping the ODT/DLL server adaptation deepens the RL memory
energy savings to 26.1 %.
"""

from conftest import run_and_print

from repro.experiments.energy_eval import section_7_2


def test_sec72_unterminated_lpdram(benchmark, experiment_config):
    table = run_and_print(benchmark, section_7_2, experiment_config)
    mean = table.rows[-1]
    # Removing termination/DLL power strictly increases savings.
    assert mean["savings_boost"] > 0
    assert mean["unterminated"] > mean["server_adapted"]
