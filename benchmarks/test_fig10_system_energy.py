"""Figure 10: system energy normalised to the DDR3 baseline.

Paper: RL -6 % system energy (memory energy -15 %); DL -13 %; low-
bandwidth applications (bzip2, dealII, gobmk) see system energy rise.
"""

from conftest import run_and_print

from repro.experiments.energy_eval import figure_10


def test_fig10_system_energy(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_10, experiment_config)
    rows = {r["benchmark"]: r for r in table.rows}
    mean = rows.pop("MEAN")
    # DL trades performance for energy: it must be the most frugal.
    assert mean["dl"] <= mean["rl"] + 0.02
    if len(rows) > 10:
        assert mean["rl"] < 1.02          # net system-energy win-ish
        assert mean["rl_memory_energy"] < 1.0
        # Low-bandwidth apps pay RLDRAM3's background power.
        assert rows["gobmk"]["rl"] > 1.0
