"""Figure 4: distribution of critical words across the suite.

Paper: word 0 is the critical word for >50 % of fetches in 21 of 27
programs; the suite average is 67 %.
"""

from conftest import run_and_print

from repro.experiments.criticality import figure_4


def test_fig4_word0_distribution(benchmark, experiment_config):
    table = run_and_print(benchmark, figure_4, experiment_config)
    rows = [r for r in table.rows if r["benchmark"] != "MEAN"]
    mean = table.rows[-1]["word0_fraction"]
    if len(rows) > 10:  # full-suite claims only
        assert 0.55 < mean < 0.80
        over_half = sum(r["word0_fraction"] > 0.5 for r in rows)
        assert over_half >= len(rows) * 0.6
        # The pointer chasers show little word-0 bias.
        by_name = {r["benchmark"]: r["word0_fraction"] for r in rows}
        for chaser in ("mcf", "milc", "omnetpp", "xalancbmk"):
            assert by_name[chaser] < 0.5
