"""Kernel-throughput regression harness (perf smoke tier).

Not part of tier-1 (``benchmarks/`` is outside pytest's testpaths): run
explicitly with ``pytest benchmarks/perf`` or via ``repro bench``.

Measures simulated-DRAM-reads-per-wallclock-second over the pinned
(ddr3, rl, hmc_cwf) x (mcf, leslie3d) matrix, writes the report to
``BENCH_kernel.json`` next to this file, and — when the committed
baseline exists — fails on a total-throughput drop beyond the CI
threshold (25%). Knobs:

* ``REPRO_BENCH_READS``   target demand reads per cell (default 800,
  the ``repro bench --quick`` tier — the committed baseline uses the
  same tier so the rates are comparable)
* ``REPRO_BENCH_STRICT``  set to 1 to fail (rather than warn) when the
  baseline file is missing
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import pytest

from repro.bench import (
    DEFAULT_FAIL_THRESHOLD,
    QUICK_READS,
    compare_to_baseline,
    load_report,
    run_bench,
    write_report,
)

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_baseline.json"
REPORT_PATH = HERE / "BENCH_kernel.json"

READS = int(os.environ.get("REPRO_BENCH_READS", str(QUICK_READS)))
# Best-of-2 filters scheduler noise on shared CI runners; the committed
# baseline is a single run, so the comparison carries upward headroom.
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


@pytest.fixture(scope="module")
def bench_report():
    report = run_bench(target_dram_reads=READS, repeats=REPEATS)
    write_report(report, str(REPORT_PATH))
    return report


def test_matrix_complete(bench_report):
    """Every pinned cell ran and produced a positive throughput."""
    cells = bench_report["cells"]
    expected = {f"{b}/{m}"
                for m in ("ddr3", "rl", "hmc_cwf")
                for b in ("mcf", "leslie3d")}
    assert set(cells) == expected
    for key, cell in cells.items():
        # The run loop stops once the target is met at a coarser
        # granularity, so the exact count lands near (not at) READS.
        assert cell["dram_reads"] >= READS // 2, key
        assert cell["reads_per_second"] > 0, key
    assert bench_report["total"]["reads_per_second"] > 0


def test_no_throughput_regression(bench_report):
    """Total reads/s must stay within 25% of the committed baseline.

    The gate compares rates taken on the same machine within one CI
    job only when the baseline is regenerated there; the committed
    baseline is a coarse floor, hence the generous threshold.
    """
    baseline = load_report(str(BASELINE_PATH))
    if baseline is None:
        if os.environ.get("REPRO_BENCH_STRICT") == "1":
            pytest.fail(f"missing baseline {BASELINE_PATH}")
        warnings.warn(f"no baseline at {BASELINE_PATH}; gate skipped")
        return
    ok, messages = compare_to_baseline(
        bench_report, baseline, fail_threshold=DEFAULT_FAIL_THRESHOLD)
    assert ok, "\n".join(messages)
