"""Resilience overhead bench: the executor's failure-handling machinery
must be free when nothing fails.

Three scheduling modes over the same spec list — a plain in-process
loop (no executor), the serial executor with the default no-retry
policy, and the serial executor with a generous retry/timeout policy —
so any bookkeeping cost the resilience layer adds to the happy path
shows up as a ratio. The faulty-path costs (pool respawns, backoff
sleeps) are intentional and not measured here; they only occur when
something already went wrong.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ParallelExecutor,
    RetryPolicy,
    RunSpec,
    execute_spec,
)

BENCH = "mcf"
READS = 800
FLAVOURS = ("ddr3", "rldram3")


def _config():
    # cache off: every mode must do the same real work every round.
    return ExperimentConfig(target_dram_reads=READS, benchmarks=(BENCH,),
                            cache_dir=None)


def _specs():
    return [RunSpec(BENCH, kind) for kind in FLAVOURS]


@pytest.mark.benchmark(group="resilience-overhead")
def test_plain_loop(benchmark):
    config = _config()

    def run():
        return [execute_spec(spec, config) for spec in _specs()]

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r.elapsed_cycles > 0 for r in results)


@pytest.mark.benchmark(group="resilience-overhead")
def test_serial_executor_no_policy(benchmark):
    config = _config()

    def run():
        return ParallelExecutor(config, jobs=1).run(_specs())

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r.elapsed_cycles > 0 for r in results.values())


@pytest.mark.benchmark(group="resilience-overhead")
def test_serial_executor_with_retry_policy(benchmark):
    config = _config()
    policy = RetryPolicy(max_retries=3, timeout_s=300.0)

    def run():
        executor = ParallelExecutor(config, jobs=1, policy=policy,
                                    keep_going=True)
        return executor.run(_specs()), executor

    (results, executor) = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not executor.failures  # nothing failed, nothing retried
    assert all(r.elapsed_cycles > 0 for r in results.values())
