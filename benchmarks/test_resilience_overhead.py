"""Resilience overhead bench: the executor's failure-handling machinery
must be free when nothing fails.

Three scheduling modes over the same spec list — a plain in-process
loop (no executor), the serial executor with the default no-retry
policy, and the serial executor with a generous retry/timeout policy —
so any bookkeeping cost the resilience layer adds to the happy path
shows up as a ratio. The faulty-path costs (pool respawns, backoff
sleeps) are intentional and not measured here; they only occur when
something already went wrong.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ParallelExecutor,
    RetryPolicy,
    RunSpec,
    execute_spec,
)

BENCH = "mcf"
READS = 800
FLAVOURS = ("ddr3", "rldram3")


def _config():
    # cache off: every mode must do the same real work every round.
    return ExperimentConfig(target_dram_reads=READS, benchmarks=(BENCH,),
                            cache_dir=None)


def _specs():
    return [RunSpec(BENCH, kind) for kind in FLAVOURS]


@pytest.mark.benchmark(group="resilience-overhead")
def test_plain_loop(benchmark):
    config = _config()

    def run():
        return [execute_spec(spec, config) for spec in _specs()]

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r.elapsed_cycles > 0 for r in results)


@pytest.mark.benchmark(group="resilience-overhead")
def test_serial_executor_no_policy(benchmark):
    config = _config()

    def run():
        return ParallelExecutor(config, jobs=1).run(_specs())

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r.elapsed_cycles > 0 for r in results.values())


@pytest.mark.benchmark(group="resilience-overhead")
def test_serial_executor_with_retry_policy(benchmark):
    config = _config()
    policy = RetryPolicy(max_retries=3, timeout_s=300.0)

    def run():
        executor = ParallelExecutor(config, jobs=1, policy=policy,
                                    keep_going=True)
        return executor.run(_specs()), executor

    (results, executor) = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not executor.failures  # nothing failed, nothing retried
    assert all(r.elapsed_cycles > 0 for r in results.values())


# ---------------------------------------------------------------------------
# Sanitizer overhead: collect mode must stay cheap enough for CI smokes
# ---------------------------------------------------------------------------

SANITIZE_BUDGET = 2.5  # sanitized run <= 2.5x the null-sink run


def test_sanitizer_overhead_budget():
    """REPRO_SANITIZE=1 (collect mode) must cost <= 2.5x a plain run.

    Interleaved best-of-3 CPU time, same discipline as the telemetry
    budget bench: both modes measured in the same loop so machine-wide
    drift cancels out of the ratio. The budget is far above the
    measured ratio on the reference machine, so only a real hot-path
    regression — shadow checks leaking onto the unsanitized path, or
    per-command allocations growing — trips it, not scheduler noise.
    The *off* case costing nothing at all is tier-1
    (tests/test_sanitizer.py asserts no probes attach without the env).
    """
    import os
    import time

    from repro.sanitizer import global_report, reset_global_report
    from repro.sim.config import SimConfig
    from repro.sim.system import run_benchmark

    config = SimConfig(memory="rl", target_dram_reads=1500)

    def plain():
        os.environ.pop("REPRO_SANITIZE", None)
        return run_benchmark(BENCH, config)

    def sanitized():
        os.environ["REPRO_SANITIZE"] = "1"
        reset_global_report()
        try:
            result = run_benchmark(BENCH, config)
            assert global_report().clean, global_report().summary()
            return result
        finally:
            os.environ.pop("REPRO_SANITIZE", None)
            reset_global_report()

    plain_t = san_t = float("inf")
    try:
        for _ in range(3):
            start = time.process_time()
            plain()
            plain_t = min(plain_t, time.process_time() - start)
            start = time.process_time()
            sanitized()
            san_t = min(san_t, time.process_time() - start)
    finally:
        os.environ.pop("REPRO_SANITIZE", None)

    ratio = san_t / plain_t
    assert ratio <= SANITIZE_BUDGET, (
        f"sanitized run is {ratio:.2f}x the null-sink run "
        f"(budget {SANITIZE_BUDGET}x): plain={plain_t:.3f}s "
        f"sanitized={san_t:.3f}s")
