"""The simulation harness: cores + uncore + memory, run to completion.

A run executes a fixed instruction trace per core (identical across
memory configurations, the paper's methodology) and reports IPC,
latency, bandwidth, and power-model inputs. Throughput comparisons
normalise the sum of per-core IPCs to a baseline run — for rate-mode
workloads (8 copies of one program) this equals the paper's weighted
speedup up to a constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.criticality import CriticalityProfiler
from repro.cpu.core import Core, TraceRecord
from repro.cpu.uncore import Uncore
from repro.dram.power import default_power_model
from repro.memsys.base import MemorySystem, assert_conformant
from repro.sanitizer import (
    MODE_OFF,
    MODE_STRICT,
    ProtocolViolation,
    attach_sanitizers,
    global_report,
    sanitize_mode,
)
from repro.sim.config import SimConfig, build_memory
from repro.telemetry.sampler import Sampler
from repro.telemetry.session import RunTelemetry, active_session
from repro.util.events import EventQueue
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.synthetic import generate_core_trace


@dataclass
class SimResult:
    """Everything the experiment harness needs from one run."""

    benchmark: str
    memory: str
    num_cores: int
    elapsed_cycles: int
    instructions: int
    per_core_ipc: List[float]
    dram_reads: int
    dram_writes: int
    demand_reads: int
    avg_queue_latency: float
    avg_core_latency: float
    avg_critical_latency: float
    avg_fill_latency: float
    fast_service_fraction: float
    bus_utilization: float
    memory_power_mw: float
    memory_power_by_family: Dict[str, float]
    l2_hit_rate: float
    word0_fraction: float = 0.0
    repeat_fraction: float = 0.0
    critical_distribution: List[float] = field(default_factory=list)
    # Compact registry-derived summary (percentiles etc.); populated only
    # when the run was executed with telemetry attached.
    telemetry: Optional[Dict] = None
    # Named-runner payloads (JSON-serialisable) that need data only the
    # live system can provide — e.g. Sec 7.2 power-model reports or the
    # Fig 3 per-line histograms — so those runs cache like any other.
    extra: Dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Sum of per-core IPCs (normalise to a baseline run)."""
        return sum(self.per_core_ipc)

    @property
    def memory_energy_mj(self) -> float:
        """Memory energy over the run, in microjoule-scale units
        (mW x cycles / freq; consistent across configs)."""
        return self.memory_power_mw * self.elapsed_cycles

    def speedup_over(self, baseline: "SimResult") -> float:
        return self.throughput / baseline.throughput if baseline.throughput else 0.0


class _ReadQueueProbe:
    """Sampler probe: controller read-queue occupancy (picklable)."""

    __slots__ = ("mc",)

    def __init__(self, mc) -> None:
        self.mc = mc

    def __call__(self) -> int:
        return len(self.mc.read_queue)


class _WriteQueueProbe:
    """Sampler probe: controller write-queue occupancy (picklable)."""

    __slots__ = ("mc",)

    def __init__(self, mc) -> None:
        self.mc = mc

    def __call__(self) -> int:
        return len(self.mc.write_queue)


class _BusUtilProbe:
    """Sampler probe: channel data-bus utilization in percent (picklable)."""

    __slots__ = ("system", "mc")

    def __init__(self, system: "SimulationSystem", mc) -> None:
        self.system = system
        self.mc = mc

    def __call__(self) -> float:
        return 100.0 * self.mc.channel.utilization(
            max(1, self.system.events.now))


class _MSHRProbe:
    """Sampler probe: MSHR file occupancy (picklable)."""

    __slots__ = ("system",)

    def __init__(self, system: "SimulationSystem") -> None:
        self.system = system

    def __call__(self) -> int:
        return len(self.system.uncore.mshrs)


class SimulationSystem:
    """Assembled cores + uncore + memory, runnable once."""

    def __init__(self, config: SimConfig,
                 traces: Sequence[Iterable[TraceRecord]],
                 memory: Optional[MemorySystem] = None,
                 profile: Optional[BenchmarkProfile] = None,
                 telemetry: Optional[RunTelemetry] = None) -> None:
        self.config = config
        self.events = EventQueue()
        if memory is not None:
            self.memory = memory
        else:
            # Streams must reach the cores unconsumed: only re-iterable
            # materialized traces may feed a profiling backend build
            # (profile-guided backends prefer ``profile`` anyway).
            build_traces = (traces if all(isinstance(t, (list, tuple))
                                          for t in traces) else None)
            self.memory = build_memory(config, self.events, build_traces,
                                       profile=profile)
        # Registry-built memories arrive pre-checked; hand-assembled
        # ones (tests, ablations) are verified here, once, so the
        # collection path below can call protocol methods directly.
        assert_conformant(self.memory)
        self.uncore = Uncore(len(traces), self.memory, self.events,
                             config.uncore)
        self.profiler = CriticalityProfiler()
        self.uncore.demand_miss_observer = self.profiler.observe
        self._finished = 0
        # Each per-core trace may be a materialized list or a lazy
        # stream; Core consumes either through a one-record lookahead
        # and takes ownership without copying.
        self.cores: List[Core] = [
            Core(i, trace, self.uncore, self.events, config.core,
                 on_finish=self._core_finished)
            for i, trace in enumerate(traces)
        ]
        self.telemetry = telemetry
        self.sampler: Optional[Sampler] = None
        if telemetry is not None:
            self._attach_telemetry(telemetry)
        # Optional protocol sanitizer (REPRO_SANITIZE / repro run
        # --check): shadow FSM/timing checkers on every conventional
        # controller plus read conservation at the uncore. Off by
        # default; the hot path then pays one `is None` check per hook.
        self._san_report = None
        self._san_uncore = None
        self._san_counts_before: Optional[Dict[str, int]] = None
        mode = sanitize_mode()
        if mode != MODE_OFF:
            report = global_report()
            if mode == MODE_STRICT:
                report.strict = True
            _, self._san_uncore = attach_sanitizers(
                self.memory, self.uncore, report)
            self._san_report = report
            self._san_counts_before = dict(report.counts)

    def _attach_telemetry(self, telemetry: RunTelemetry) -> None:
        """Instrument the memory hierarchy and start periodic sampling."""
        self.memory.attach_telemetry(telemetry.registry, telemetry.tracer)
        self.sampler = Sampler(self.events, telemetry.registry,
                               telemetry.sample_interval)
        for mc in self.memory.telemetry_controllers():
            self.sampler.add_probe(
                f"dram.{mc.name}.read_queue_occupancy",
                _ReadQueueProbe(mc))
            self.sampler.add_probe(
                f"dram.{mc.name}.write_queue_occupancy",
                _WriteQueueProbe(mc))
            # Percent scale so the integer-bucketed histogram resolves it.
            self.sampler.add_probe(
                f"dram.{mc.name}.bus_utilization_pct",
                _BusUtilProbe(self, mc))
        self.sampler.add_probe("mshr.occupancy", _MSHRProbe(self))
        self.sampler.start()

    def _core_finished(self, core: Core) -> None:
        self._finished += 1

    def run(self, max_events: int = 200_000_000,
            checkpointer=None) -> "SimResult":
        for core in self.cores:
            core.start()
        return self._run_loop(0, max_events, checkpointer)

    def resume_run(self, executed: int = 0, max_events: int = 200_000_000,
                   checkpointer=None) -> "SimResult":
        """Continue a checkpoint-restored system to completion.

        The cores are already started (their start events live in the
        restored queue), so unlike :meth:`run` this only re-enters the
        event loop. ``executed`` carries the restored event count so the
        ``max_events`` guard spans the whole logical run.
        """
        return self._run_loop(executed, max_events, checkpointer)

    def _run_loop(self, executed: int, max_events: int,
                  checkpointer) -> "SimResult":
        num_cores = len(self.cores)
        step = self.events.step
        if checkpointer is None and self._san_report is None:
            # Tight path: unchanged from the plain simulator — no
            # per-event probes when neither feature is active.
            while self._finished < num_cores:
                if not step():
                    raise RuntimeError(
                        f"deadlock: {self._finished}/{num_cores} cores "
                        f"finished, event queue empty at t={self.events.now}")
                executed += 1
                if executed > max_events:
                    raise RuntimeError("simulation exceeded max_events")
            return self._collect()
        events = self.events
        report = self._san_report
        last_now = events.now
        while self._finished < num_cores:
            if not step():
                raise RuntimeError(
                    f"deadlock: {self._finished}/{num_cores} cores "
                    f"finished, event queue empty at t={events.now}")
            executed += 1
            if executed > max_events:
                raise RuntimeError("simulation exceeded max_events")
            if report is not None:
                now = events.now
                if now < last_now:
                    report.record(ProtocolViolation(
                        rule="sim.time_regression", time=now,
                        source="events",
                        command=f"event at {now}",
                        conflict=f"previous event at {last_now}"))
                last_now = now
            if checkpointer is not None:
                checkpointer.maybe_save(self, executed)
        return self._collect()

    # ------------------------------------------------------------------

    def _collect(self) -> SimResult:
        elapsed = max((c.finish_time or 0) for c in self.cores)
        elapsed = max(elapsed, 1)
        self.memory.finalize()
        power_by_family, total_mw = self._memory_power(elapsed)
        stats = self.memory.stats
        result = SimResult(
            benchmark="",
            memory=self.config.memory,
            num_cores=len(self.cores),
            elapsed_cycles=elapsed,
            instructions=sum(c.instructions for c in self.cores),
            per_core_ipc=[c.instructions / elapsed for c in self.cores],
            dram_reads=self.uncore.dram_reads,
            dram_writes=self.uncore.dram_writes,
            demand_reads=stats.demand_reads,
            avg_queue_latency=self.memory.avg_queue_latency(),
            avg_core_latency=self.memory.avg_core_latency(),
            avg_critical_latency=stats.avg_critical_latency,
            avg_fill_latency=stats.avg_fill_latency,
            fast_service_fraction=stats.fast_service_fraction,
            bus_utilization=self.memory.bus_utilization(elapsed),
            memory_power_mw=total_mw,
            memory_power_by_family=power_by_family,
            l2_hit_rate=self.uncore.l2.hit_rate,
            word0_fraction=self.profiler.word0_fraction,
            repeat_fraction=self.profiler.repeat_fraction,
            critical_distribution=self.profiler.distribution(),
        )
        if self.telemetry is not None:
            self._export_telemetry(elapsed, result)
        if self._san_report is not None:
            self._finalize_sanitizer()
        return result

    def _finalize_sanitizer(self) -> None:
        """End-of-run conservation check + counter export.

        Violations flow out-of-band (the process-wide report and
        ``sanitizer.*`` session counters); the :class:`SimResult` itself
        is untouched, so sanitized runs stay byte-identical to plain
        ones.
        """
        if self._san_uncore is not None:
            self._san_uncore.finalize(self.events.now,
                                      queue_drained=len(self.events) == 0)
        session = active_session()
        if session is None:
            return
        session.incr("sanitizer.runs", 1)
        before = self._san_counts_before or {}
        for rule, count in self._san_report.counts.items():
            delta = count - before.get(rule, 0)
            if delta > 0:
                session.incr(f"sanitizer.{rule}", delta)
                session.incr("sanitizer.violations", delta)
        self._san_counts_before = dict(self._san_report.counts)

    def _export_telemetry(self, elapsed: int, result: SimResult) -> None:
        """Flush end-of-run metrics into the run's registry."""
        registry = self.telemetry.registry
        if self.sampler is not None:
            self.sampler.stop()
            registry.gauge("sample.samples_taken").set(
                self.sampler.samples_taken)
        self.memory.export_telemetry(elapsed)
        registry.gauge("sim.elapsed_cycles").set(elapsed)
        registry.gauge("sim.instructions").set(result.instructions)
        registry.gauge("sim.dram_reads").set(self.uncore.dram_reads)
        registry.gauge("sim.dram_writes").set(self.uncore.dram_writes)
        registry.gauge("sim.prefetch_drops").set(self.uncore.prefetch_drops)
        registry.gauge("sim.l2_hit_rate").set(self.uncore.l2.hit_rate)
        for key, value in self.uncore.mshrs.telemetry_items().items():
            registry.gauge(f"mshr.{key}").set(value)
        for core in self.cores:
            for key, value in core.telemetry_items().items():
                registry.gauge(f"core{core.core_id}.{key}").set(value)
        # Compact summary carried on the SimResult. The derived average
        # must agree with the legacy field (same observation stream).
        critical = registry.get("memsys.critical_latency_cycles")
        fill = registry.get("memsys.fill_latency_cycles")
        result.telemetry = {
            "memory": self.memory.describe(),
            "avg_critical_latency": self.memory.derived_avg_critical_latency(),
            "critical_latency": critical.snapshot() if critical else None,
            "fill_latency": fill.snapshot() if fill else None,
            "queue_latency_by_channel": {
                mc.name: registry.get(
                    f"dram.{mc.name}.queue_latency_cycles").snapshot()
                for mc in self.memory.telemetry_controllers()
            },
        }

    def _memory_power(self, elapsed: int):
        """Run every chip's activity through the Micron-style model."""
        from repro.dram.device import DRAMKind
        activities = self.memory.chip_activities(elapsed)
        by_family: Dict[str, float] = {}
        total = 0.0
        for key, chips in activities.items():
            family = key.split(":")[-1]
            model = default_power_model(DRAMKind(family))
            fam_total = sum(model.compute(a).total_mw for a in chips)
            by_family[key] = fam_total
            total += fam_total
        return by_family, total


# Memoized prewarm images. One benchmark profile is typically simulated
# across several memory organisations back to back (every figure sweeps
# memories with the benchmark held fixed); the warm-L2 image depends only
# on the profile, the core count, and the L2 geometry — not the memory —
# so after the first run we snapshot the final tag-store contents and
# replay them into later systems instead of re-deriving ~64k lines
# through the RNG. Replay is bit-identical by construction: it restores
# the exact per-set dicts (same recency order, same dirty bits and
# critical words) and the same eviction-counter deltas the insert
# sequence would have produced on an empty cache.
_PREWARM_CACHE: Dict[tuple, tuple] = {}
_PREWARM_CACHE_MAX = 8


def _prewarm_key(profile: BenchmarkProfile, num_cores: int,
                 num_sets: int, associativity: int) -> tuple:
    return (profile.name, profile.hot_fraction, profile.hot_lines,
            profile.footprint_lines, profile.write_fraction,
            profile.stream_fraction, profile.chase_line_bias,
            tuple(sorted(profile.chase_word_weights.items())),
            num_cores, num_sets, associativity)


def prewarm_l2(system: SimulationSystem, profile: BenchmarkProfile) -> None:
    """Fill the shared L2 with plausible steady-state contents.

    The paper fast-forwards 2 B instructions and warms up before
    measuring, so measurement starts with a full L2 whose evictions
    (some dirty) generate writeback traffic immediately. We model that
    by populating the L2 with lines drawn from each core's footprint:
    dirty with the profile's write probability, carrying the critical
    word a fetch of that line would have observed.
    """
    import random as _random
    from repro.cpu.cache import CacheLine
    from repro.dram.request import LINE_BYTES as _LB, WORDS_PER_LINE
    from repro.workloads.synthetic import (
        _BUCKETS,
        _HASH_MASK,
        _HASH_MULT,
        _table_cache,
        _word_lookup_table,
        CORE_ADDRESS_STRIDE,
    )
    l2 = system.uncore.l2
    num_sets = l2.config.num_sets
    assoc = l2.config.associativity
    sets = l2._sets
    key = _prewarm_key(profile, len(system.cores), num_sets, assoc)
    cached = _PREWARM_CACHE.get(key)
    if cached is not None and not any(sets):
        contents, evictions, dirty_evictions = cached
        # Rebuild each set as a fresh dict (comprehension order ==
        # snapshot order == the recency order the inserts produced).
        l2._sets = [
            {addr: CacheLine(addr, dirty, word)
             for addr, dirty, word in entries}
            for entries in contents
        ]
        l2.evictions += evictions
        l2.dirty_evictions += dirty_evictions
        return
    was_empty = not any(sets)
    evictions_before = l2.evictions
    dirty_before = l2.dirty_evictions
    capacity = num_sets * assoc
    per_core = capacity // len(system.cores)
    lines_per_core = CORE_ADDRESS_STRIDE // _LB
    hot_fraction = profile.hot_fraction
    footprint = profile.footprint_lines
    write_fraction = profile.write_fraction
    stream_fraction = profile.stream_fraction
    chase_line_bias = profile.chase_line_bias
    hot_span = min(profile.hot_lines, footprint)
    evicted = 0
    dirty_evicted = 0
    # Inlined expected_critical_word / preferred_word_for_global_line:
    # the prewarm loop samples a word per resident line (~64k draws),
    # and the per-call profile-attribute chasing dominates the hash.
    table = _table_cache.get(profile.name)
    if table is None:
        table = _word_lookup_table(profile.chase_word_weights)
        _table_cache[profile.name] = table
    for core in system.cores:
        rng = _random.Random(0xC0FFEE ^ core.core_id)
        random = rng.random
        # randrange(n) for positive int n is exactly _randbelow(n); bind
        # the inner method to skip the argument-normalisation wrapper.
        # Identical draw sequence either way.
        randrange = getattr(rng, "_randbelow", rng.randrange)
        base_line = core.core_id * lines_per_core
        for _ in range(per_core):
            # Hot-region lines are the ones a warm cache would hold.
            if hot_fraction and random() < 0.6:
                line = base_line + randrange(hot_span)
            else:
                line = base_line + randrange(footprint)
            if random() < stream_fraction:
                word = 0
            elif random() < chase_line_bias:
                h = ((line % lines_per_core) * _HASH_MULT) & _HASH_MASK
                word = table[(h >> 32) % _BUCKETS]
            else:
                word = randrange(WORDS_PER_LINE)
            # Cache.insert, inlined (the victim EvictedLine it would
            # build is discarded here; only the eviction counters and
            # the tag-store mutation matter). Same LRU/dirty semantics.
            dirty = random() < write_fraction
            s = sets[line % num_sets]
            existing = s.get(line)
            if existing is not None:
                del s[line]
                if dirty:
                    existing.dirty = True
                s[line] = existing
            else:
                if len(s) >= assoc:
                    lru = s.pop(next(iter(s)))
                    evicted += 1
                    if lru.dirty:
                        dirty_evicted += 1
                s[line] = CacheLine(line, dirty, word)
    l2.evictions += evicted
    l2.dirty_evictions += dirty_evicted
    if was_empty:
        if len(_PREWARM_CACHE) >= _PREWARM_CACHE_MAX:
            _PREWARM_CACHE.pop(next(iter(_PREWARM_CACHE)))
        _PREWARM_CACHE[key] = (
            tuple(tuple((ln.line_address, ln.dirty, ln.critical_word)
                        for ln in s.values()) for s in sets),
            l2.evictions - evictions_before,
            l2.dirty_evictions - dirty_before,
        )


def run_benchmark(benchmark: str, config: SimConfig,
                  traces: Optional[Sequence[Iterable[TraceRecord]]] = None,
                  warm: bool = True,
                  telemetry: Optional[RunTelemetry] = None) -> SimResult:
    """Resolve ``benchmark`` against the workload registry and run once.

    ``benchmark`` is any registry-resolvable workload name — a bare
    profile name (``mcf``), ``synthetic:<profile>``, or
    ``trace:<path>`` for recorded replays. The source's per-core record
    streams feed the cores lazily; explicit ``traces`` (tests,
    ablations) bypass the source. When a telemetry session is active
    (see :mod:`repro.telemetry.session`) and no explicit ``telemetry``
    is given, the run is automatically registered with the session.
    """
    from repro.workloads.registry import create_workload

    source = create_workload(benchmark)
    profile = source.profile
    if traces is None:
        traces = source.streams(config)
    display = source.display_benchmark()
    session = None
    if telemetry is None:
        session = active_session()
        if session is not None:
            telemetry = session.begin_run(display, config.memory)
    system = SimulationSystem(config, traces, profile=profile,
                              telemetry=telemetry)
    if warm and profile is not None:
        prewarm_l2(system, profile)
    result = system.run()
    result.benchmark = display
    if session is not None and telemetry is not None:
        session.end_run(telemetry, summary={
            "elapsed_cycles": result.elapsed_cycles,
            "instructions": result.instructions,
            "throughput": result.throughput,
            "dram_reads": result.dram_reads,
            "avg_critical_latency": result.avg_critical_latency,
            "avg_fill_latency": result.avg_fill_latency,
            "avg_queue_latency": result.avg_queue_latency,
            "bus_utilization": result.bus_utilization,
            "seed": config.seed,
        })
    return result


def make_traces(profile: BenchmarkProfile,
                config: SimConfig) -> List[List[TraceRecord]]:
    """Per-core deterministic traces sized for the configured fetch target."""
    per_core = max(1, config.target_dram_reads // config.num_cores)
    return [generate_core_trace(profile, core_id, per_core, config.seed)
            for core_id in range(config.num_cores)]


def run_weighted_speedup(benchmark: str, config: SimConfig,
                         warm: bool = True) -> float:
    """The paper's throughput metric: sum_i IPC_shared_i / IPC_alone_i.

    ``IPC_alone_i`` comes from running core *i*'s trace on a single-core
    system with the same memory organisation (the paper's definition).
    For rate-mode workloads (8 copies of one program) this differs from
    the sum-of-IPCs metric only by a near-constant factor, which is why
    the figure harness uses sum-of-IPCs normalised to a baseline;
    this helper exists for studies that need the exact metric.
    """
    import dataclasses
    from repro.energy.model import weighted_speedup
    from repro.workloads.registry import create_workload

    shared = run_benchmark(benchmark, config, warm=warm)
    source = create_workload(benchmark)
    profile = source.profile
    alone_config = dataclasses.replace(config, num_cores=1)
    alone_ipcs = []
    # Re-derive each core's stream from a fresh source view and run it
    # on a single-core system (the paper's IPC_alone definition).
    for trace in source.streams(config):
        system = SimulationSystem(alone_config, [trace], profile=profile)
        if warm and profile is not None:
            prewarm_l2(system, profile)
        result = system.run()
        alone_ipcs.append(result.per_core_ipc[0])
    return weighted_speedup(shared.per_core_ipc, alone_ipcs)
