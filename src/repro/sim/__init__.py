"""Simulation assembly: configs, the system harness, and run results."""

from repro.sim.config import SimConfig, MemoryKind, TABLE1
from repro.sim.system import SimulationSystem, SimResult, run_benchmark

__all__ = ["SimConfig", "MemoryKind", "TABLE1",
           "SimulationSystem", "SimResult", "run_benchmark"]
