"""Crash-safe simulation checkpoints: snapshot, resume, byte-identical.

A checkpoint is one file::

    {"version": 1, "cache_key": ..., "benchmark": ..., "reads": ...,
     "executed": ..., "request_ids": ..., "payload_bytes": ...,
     "payload_sha256": ...}\\n
    <pickle of the whole SimulationSystem>

The JSON header line carries everything needed to validate the snapshot
without unpickling it: a format version, the v8 spec cache key the run
was launched under (a resumed run must answer for exactly the same
spec), progress counters, the process-wide request-id allocator position
(the one piece of simulator state not reachable from the system object),
and a sha256 over the pickle payload so torn or bit-rotted files are
detected before deserialisation.

Snapshots go through the shared artifact-store write path
(:func:`~repro.store.atomic_write_bytes`: temp sibling + fsync +
``os.replace`` + parent-dir fsync) every N simulated DRAM reads, so a
crash — even a power loss — leaves either the previous complete
checkpoint or the new complete checkpoint, never a torn one. While a
run is snapshotting, a ``<file>.ckpt.pin`` sibling carrying the owning
pid protects the checkpoint from ``repro store gc`` eviction; the pin
dies with the file (and expires automatically if the process crashes).
A checkpoint that fails validation on load is quarantined as
``<file>.corrupt`` and the run starts from scratch.

Determinism: the snapshot captures the entire event-driven simulator —
event queue, cores (with their materialized trace iterators), caches,
MSHRs, controllers, bank/rank/bus timing state — plus the request-id
position, so a resumed run replays exactly the event sequence the
uninterrupted run would have executed and produces a byte-identical
:class:`~repro.sim.system.SimResult`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Optional, Tuple

from repro.dram.request import request_id_allocator
from repro.store import atomic_write_bytes, quarantine_file

CHECKPOINT_VERSION = 1

ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"
ENV_CHECKPOINT_EVERY = "REPRO_CHECKPOINT_EVERY"

#: Default snapshot cadence, in simulated DRAM reads.
DEFAULT_EVERY_READS = 1000


class CheckpointError(RuntimeError):
    """A checkpoint file failed validation (and was quarantined)."""


def checkpoint_every(default: int = DEFAULT_EVERY_READS) -> int:
    """Snapshot cadence from ``REPRO_CHECKPOINT_EVERY`` (reads)."""
    raw = os.environ.get(ENV_CHECKPOINT_EVERY, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CHECKPOINT_EVERY} must be an integer number of DRAM "
            f"reads, got {raw!r}") from None
    return max(1, value)


def checkpoint_path(directory, cache_key: str) -> Path:
    """Deterministic checkpoint location for one spec cache key."""
    digest = hashlib.sha256(cache_key.encode()).hexdigest()[:24]
    return Path(directory) / f"ck-{digest}.ckpt"


def checkpoint_pin_path(path) -> Path:
    """The pid-carrying pin shielding an in-flight checkpoint from gc."""
    path = Path(path)
    return path.with_name(path.name + ".pin")


def delete_checkpoint(path) -> None:
    """Remove a checkpoint and its pin (a finished run leaves nothing)."""
    checkpoint_pin_path(path).unlink(missing_ok=True)
    Path(path).unlink(missing_ok=True)


class Checkpointer:
    """Periodic whole-simulator snapshots keyed by DRAM-read progress.

    ``maybe_save`` is called from the simulation loop after every event;
    its fast path is one integer compare, so the checkpointing run-loop
    overhead is dominated by the (rare) pickles. ``kill_after`` supports
    the ``ckptkill`` fault mode: hard-exit the process right after the
    N-th successful save, leaving a valid checkpoint behind — the
    re-run's resume path is exercised end-to-end.
    """

    __slots__ = ("path", "cache_key", "benchmark", "every", "next_mark",
                 "saves", "disabled", "kill_after", "last_error")

    def __init__(self, path, cache_key: str, benchmark: str = "",
                 every_reads: int = DEFAULT_EVERY_READS,
                 kill_after: Optional[int] = None,
                 first_mark: Optional[int] = None) -> None:
        self.path = Path(path)
        self.cache_key = cache_key
        self.benchmark = benchmark
        self.every = max(1, every_reads)
        self.next_mark = self.every if first_mark is None else first_mark
        self.saves = 0
        self.disabled = False
        self.kill_after = kill_after
        self.last_error: Optional[str] = None

    def maybe_save(self, system, executed: int) -> bool:
        """Snapshot when the read counter crossed the next mark."""
        if system.uncore.dram_reads < self.next_mark or self.disabled:
            return False
        self.next_mark = system.uncore.dram_reads + self.every
        return self.save(system, executed)

    def save(self, system, executed: int) -> bool:
        try:
            payload = pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # unpicklable extension state: give up
            # once, loudly in the counters, instead of failing the run.
            self.disabled = True
            self.last_error = f"{type(exc).__name__}: {exc}"
            return False
        header = {
            "version": CHECKPOINT_VERSION,
            "cache_key": self.cache_key,
            "benchmark": self.benchmark,
            "reads": system.uncore.dram_reads,
            "executed": executed,
            "request_ids": request_id_allocator().next_id,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        atomic_write_bytes(self.path,
                           json.dumps(header).encode() + b"\n" + payload)
        if self.saves == 0:
            # Pin on the first snapshot: gc must never evict a
            # checkpoint whose run is still alive. The pin carries our
            # pid, so it expires automatically if we crash.
            try:
                checkpoint_pin_path(self.path).write_text(str(os.getpid()))
            except OSError:  # pragma: no cover - read-only directory
                pass
        self.saves += 1
        if self.kill_after is not None and self.saves >= self.kill_after:
            os._exit(1)  # injected mid-flight death; checkpoint survives
        return True


def _quarantine(path: Path, reason: str) -> CheckpointError:
    quarantine_file(path)
    checkpoint_pin_path(path).unlink(missing_ok=True)
    return CheckpointError(f"checkpoint {path}: {reason} (quarantined)")


def read_header(path) -> dict:
    """The JSON header of a checkpoint file (no payload validation)."""
    with open(path, "rb") as handle:
        line = handle.readline()
    header = json.loads(line)
    if not isinstance(header, dict):
        raise ValueError("header is not an object")
    return header


def load_checkpoint(path, expect_cache_key: Optional[str] = None
                    ) -> Tuple[object, int, dict]:
    """Validate and restore a checkpoint.

    Returns ``(system, executed, header)`` with the process-wide
    request-id allocator already rewound to the snapshot position. Any
    validation failure — unreadable header, version or cache-key
    mismatch, short payload, digest mismatch, unpicklable payload —
    quarantines the file as ``<file>.corrupt`` and raises
    :class:`CheckpointError`.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            line = handle.readline()
            header = json.loads(line)
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
            payload = handle.read()
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise _quarantine(path, f"unreadable header ({exc})") from None
    if header.get("version") != CHECKPOINT_VERSION:
        raise _quarantine(
            path, f"version {header.get('version')!r} != "
            f"{CHECKPOINT_VERSION}")
    if (expect_cache_key is not None
            and header.get("cache_key") != expect_cache_key):
        raise _quarantine(path, "cache key mismatch (stale spec/config)")
    if len(payload) != header.get("payload_bytes"):
        raise _quarantine(
            path, f"payload truncated ({len(payload)} of "
            f"{header.get('payload_bytes')} bytes)")
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise _quarantine(path, "payload sha256 mismatch")
    try:
        system = pickle.loads(payload)
    except Exception as exc:
        raise _quarantine(path, f"unpicklable payload ({exc})") from None
    request_ids = header.get("request_ids")
    if not isinstance(request_ids, int) or request_ids < 0:
        raise _quarantine(path, "missing request-id position")
    request_id_allocator().next_id = request_ids
    return system, int(header.get("executed", 0)), header


# ---------------------------------------------------------------------------
# Checkpoint-aware benchmark execution (the execute_spec integration)
# ---------------------------------------------------------------------------


def run_benchmark_checkpointed(benchmark: str, sim_config, cache_key: str,
                               directory, every_reads: Optional[int] = None,
                               kill_after: Optional[int] = None,
                               warm: bool = True):
    """Run ``benchmark`` with periodic checkpoints, resuming if one exists.

    Mirrors :func:`~repro.sim.system.run_benchmark` exactly — same
    workload resolution, same prewarm — except the per-core streams are
    materialized (generators cannot be pickled; the records are
    identical), so the completed :class:`SimResult` is byte-identical to
    an uninterrupted, un-checkpointed run. The checkpoint file is
    deleted on completion.

    Telemetry-instrumented runs (an active session) fall back to a
    plain run: a registry cannot be stitched across the process
    boundary a resume implies, and instrumented runs are diagnostics,
    not long-haul suite work.
    """
    from repro.sim.system import (
        SimulationSystem,
        prewarm_l2,
        run_benchmark,
    )
    from repro.telemetry.session import active_session
    from repro.workloads.registry import create_workload

    if active_session() is not None:
        return run_benchmark(benchmark, sim_config)
    every = checkpoint_every() if every_reads is None else max(1, every_reads)
    path = checkpoint_path(directory, cache_key)

    if path.exists():
        try:
            system, executed, header = load_checkpoint(
                path, expect_cache_key=cache_key)
        except CheckpointError:
            system = None  # quarantined; fall through to a fresh run
        if system is not None:
            checkpointer = Checkpointer(
                path, cache_key, benchmark=header.get("benchmark", ""),
                every_reads=every, kill_after=kill_after,
                first_mark=system.uncore.dram_reads + every)
            result = system.resume_run(executed=executed,
                                       checkpointer=checkpointer)
            result.benchmark = header.get("benchmark", benchmark)
            delete_checkpoint(path)
            return result

    source = create_workload(benchmark)
    profile = source.profile
    traces = [list(stream) for stream in source.streams(sim_config)]
    display = source.display_benchmark()
    system = SimulationSystem(sim_config, traces, profile=profile)
    if warm and profile is not None:
        prewarm_l2(system, profile)
    checkpointer = Checkpointer(path, cache_key, benchmark=display,
                                every_reads=every, kill_after=kill_after)
    result = system.run(checkpointer=checkpointer)
    result.benchmark = display
    delete_checkpoint(path)
    return result
