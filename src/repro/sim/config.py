"""Top-level simulation configuration (paper Table 1).

``SimConfig.memory`` is a *registry name*: any backend registered with
:mod:`repro.memsys.registry` (canonical name or alias) is a valid
memory organisation, validated at construction time.
:func:`build_memory` delegates to the registry, so new organisations —
HMC cubes, future unterminated-LPDRAM variants, user plugins — need no
changes here.

:class:`MemoryKind` remains as a **deprecated** thin shim over the
registry names: existing call sites (and pickled artefacts) that pass
``MemoryKind.RL`` keep working because every consumer canonicalises
through :func:`repro.memsys.registry.resolve_name`. New code should use
plain strings (``"rl"``, ``"hmc_cwf"``, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.cpu.core import CoreConfig
from repro.cpu.prefetch import PrefetcherConfig
from repro.cpu.uncore import UncoreConfig
from repro.memsys.base import MemorySystem
from repro.memsys.registry import create_memory, resolve_name
from repro.util.events import EventQueue


class MemoryKind(enum.Enum):
    """Deprecated: the pre-registry closed enum of organisations.

    Kept so existing call sites and cached artefacts keep working; each
    member's value is the corresponding registry name. Prefer plain
    registry names — ``MemoryKind`` cannot name backends registered
    after this module was written (e.g. the HMC organisations).
    """

    DDR3 = "ddr3"                    # baseline: 4 x 72-bit DDR3
    RLDRAM3 = "rldram3"              # Fig 1 homogeneous
    LPDDR2 = "lpddr2"                # Fig 1 homogeneous
    RD = "rd"                        # CWF: RLDRAM3 + DDR3
    RL = "rl"                        # CWF: RLDRAM3 + LPDDR2 (flagship)
    DL = "dl"                        # CWF: DDR3 + LPDDR2
    RL_ADAPTIVE = "rl_adaptive"      # Sec 4.2.5
    RL_ORACLE = "rl_oracle"         # Sec 6.1.2 upper bound
    RL_RANDOM = "rl_random"          # Sec 6.1.1 control
    PAGE_PLACEMENT = "page_placement"  # Sec 7.1


@dataclass(frozen=True)
class SimConfig:
    """Paper Table 1 defaults."""

    memory: str = "ddr3"
    num_cores: int = 8
    cpu_freq_ghz: float = 3.2
    core: CoreConfig = field(default_factory=CoreConfig)
    uncore: UncoreConfig = field(default_factory=UncoreConfig)
    seed: int = 42
    # Target demand DRAM fetches per run (the paper uses 2M; scale down
    # for pure-Python wall-clock, the shape is preserved).
    target_dram_reads: int = 12000

    def __post_init__(self) -> None:
        # Canonicalise eagerly (accepting aliases and the deprecated
        # MemoryKind enum) so an unknown organisation fails at config
        # construction, not mid-run, and equal configs hash equally.
        object.__setattr__(self, "memory", resolve_name(self.memory))

    def with_memory(self, memory) -> "SimConfig":
        """A copy running on ``memory`` (registry name, alias, or enum)."""
        return replace(self, memory=resolve_name(memory))

    def without_prefetcher(self) -> "SimConfig":
        uncore = UncoreConfig(
            l1=self.uncore.l1, l2=self.uncore.l2,
            mshr_capacity=self.uncore.mshr_capacity,
            prefetcher=PrefetcherConfig(enabled=False),
            writeback_retry_interval=self.uncore.writeback_retry_interval)
        return replace(self, uncore=uncore)


def adaptive_tag_seeder(profile, seed_probability: float = 0.8):
    """Steady-state adaptive tags (paper Sec 4.2.5).

    The paper measures after a 2 B-instruction fast-forward, by which
    time most previously-written lines have been re-organised so their
    last critical word sits on the fast DIMM. We model that warm state:
    a line not yet written during the measured window falls back to its
    expected preferred word with probability ``seed_probability``
    (the chance it was dirtied and re-organised before measurement),
    else to word 0 (never written — layout never altered).
    """
    from repro.workloads.synthetic import preferred_word_for_global_line

    def seeder(line_address: int) -> int:
        h = (line_address * 0x2545F4914F6CDD1D) & ((1 << 64) - 1)
        if (h >> 33) % 1000 >= seed_probability * 1000:
            return 0  # never written during warm-up: layout unaltered
        # Re-organised to its last critical word: word 0 for lines
        # touched by streams, the stable preferred word for chased lines.
        if ((h >> 13) % 1000) < profile.stream_fraction * 1000:
            return 0
        return preferred_word_for_global_line(profile, line_address)

    return seeder


def build_memory(config: SimConfig, events: EventQueue,
                 traces: Optional[Sequence] = None,
                 profile=None) -> MemorySystem:
    """Instantiate the memory organisation named by ``config.memory``.

    Delegates to the backend registry; the returned instance is
    protocol-checked. ``traces`` feeds offline profiling passes (page
    placement); ``profile`` enables warm adaptive tags and synthetic
    profiling traces for backends that want them.
    """
    return create_memory(config.memory, config, events, traces=traces,
                         profile=profile)


# Paper Table 1, for the table-reproduction bench and the README.
TABLE1 = {
    "ISA": "UltraSPARC III ISA",
    "CMP size and Core Freq.": "8-core, 3.2 GHz",
    "Re-Order-Buffer": "64 entry",
    "Fetch, Dispatch, Execute, Retire": "Maximum 4 per cycle",
    "L1 I-cache": "32KB/2-way, private, 1-cycle",
    "L1 D-cache": "32KB/2-way, private, 1-cycle",
    "L2 Cache": "4MB/64B/8-way, shared, 10-cycle",
    "Coherence Protocol": "Snooping MESI",
    "DDR3": "MT41J256M8 DDR3-1600",
    "RLDRAM3": "Micron MT44K32M18",
    "LPDDR-2": "Micron MT42L128M16D1 (400MHz)",
    "Baseline DRAM": "4 72-bit channels, 1 DIMM/channel, "
                     "1 rank/DIMM, 9 devices/rank (unbuffered, ECC)",
    "Total DRAM Capacity": "8 GB",
    "DRAM Bus Frequency": "800MHz",
    "DRAM Read Queue": "48 entries per channel",
    "DRAM Write Queue Size": "48 entries per channel",
    "High/Low Watermarks": "32/16",
}
