"""Homogeneous main memory: N identical channels of one DRAM family.

This is the paper's baseline (4 x 72-bit DDR3 channels, 1 rank of 9 x8
chips each) and, with a different device preset, the all-RLDRAM3 and
all-LPDDR2 systems of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import DeviceConfig, DRAMKind, PagePolicy, device_for
from repro.dram.power import ChipActivity
from repro.dram.request import LINE_BYTES, MemoryRequest, RequestKind
from repro.dram.timing import TimingSet
from repro.memsys.base import MemorySystem, MemorySystemStats
from repro.util.events import EventQueue


@dataclass(frozen=True)
class HomogeneousConfig:
    """Geometry of a homogeneous memory (paper Table 1 defaults)."""

    kind: DRAMKind = DRAMKind.DDR3
    num_channels: int = 4
    ranks_per_channel: int = 1
    devices_per_rank: int = 9   # 8 data + 1 ECC (72-bit channel)
    cpu_freq_ghz: float = 3.2


class _ReadCritical:
    """Stats-recording critical-word callback (picklable, not a closure)."""

    __slots__ = ("memory", "start", "is_prefetch", "on_critical")

    def __init__(self, memory: "HomogeneousMemory", start: int,
                 is_prefetch: bool,
                 on_critical: Callable[[int], None]) -> None:
        self.memory = memory
        self.start = start
        self.is_prefetch = is_prefetch
        self.on_critical = on_critical

    def __call__(self, t: int) -> None:
        memory = self.memory
        if not self.is_prefetch:
            memory.stats.sum_critical_latency += t - self.start
            if memory._telemetry_attached:
                memory._h_critical.observe(t - self.start)
        self.on_critical(t)


class _ReadComplete:
    """Stats-recording fill-complete callback (picklable, not a closure)."""

    __slots__ = ("memory", "start", "on_complete")

    def __init__(self, memory: "HomogeneousMemory", start: int,
                 on_complete: Callable[[int], None]) -> None:
        self.memory = memory
        self.start = start
        self.on_complete = on_complete

    def __call__(self, t: int) -> None:
        memory = self.memory
        memory.stats.sum_fill_latency += t - self.start
        if memory._telemetry_attached:
            memory._h_fill.observe(t - self.start)
        self.on_complete(t)


class HomogeneousMemory(MemorySystem):
    """N identical channels, each with its own controller."""

    def __init__(self, events: EventQueue,
                 config: HomogeneousConfig = HomogeneousConfig(),
                 controller_config: Optional[ControllerConfig] = None,
                 device: Optional[DeviceConfig] = None) -> None:
        self.events = events
        self.config = config
        self.device = device or device_for(config.kind)
        self.timing = TimingSet(self.device.timing, config.cpu_freq_ghz)
        scheme = (MappingScheme.OPEN_PAGE
                  if self.device.page_policy is PagePolicy.OPEN
                  else MappingScheme.CLOSE_PAGE)
        self.mapper = AddressMapper(
            device=self.device,
            num_channels=config.num_channels,
            ranks_per_channel=config.ranks_per_channel,
            devices_per_rank=8,  # 64 data bits move each line; ECC rides along
            scheme=scheme)
        self.channels: List[Channel] = []
        self.controllers: List[MemoryController] = []
        cc = controller_config or ControllerConfig()
        for i in range(config.num_channels):
            channel = Channel(self.timing, num_data_buses=1,
                              cmd_slots_per_cycle=1, index=i)
            self.channels.append(channel)
            self.controllers.append(MemoryController(
                device=self.device, timing=self.timing, channel=channel,
                num_ranks=config.ranks_per_channel, events=events,
                config=cc, name=f"{config.kind.value}-ch{i}"))
        self.stats = MemorySystemStats()

    # ------------------------------------------------------------------

    def issue_read(self, line_address: int, critical_word: int, core_id: int,
                   is_prefetch: bool,
                   on_critical: Callable[[int], None],
                   on_complete: Callable[[int], None]) -> bool:
        address = line_address * LINE_BYTES
        decoded = self.mapper.decode(address)
        controller = self.controllers[decoded.channel]
        if controller.read_queue_free <= 0:
            return False
        start = self.events.now
        request = MemoryRequest(
            kind=RequestKind.READ, address=address,
            critical_word=critical_word, is_prefetch=is_prefetch,
            core_id=core_id, decoded=decoded)

        request.on_critical_word = _ReadCritical(self, start, is_prefetch,
                                                 on_critical)
        request.on_complete = _ReadComplete(self, start, on_complete)
        if not controller.enqueue(request):
            return False
        self.stats.reads += 1
        if not is_prefetch:
            self.stats.demand_reads += 1
            self.stats.critical_served_slow += 1
        if self._telemetry_attached:
            self._c_reads.inc()
            if not is_prefetch:
                self._c_demand_reads.inc()
                self._c_slow.inc()
        return True

    def issue_write(self, line_address: int, critical_word_tag: int,
                    core_id: int) -> bool:
        address = line_address * LINE_BYTES
        decoded = self.mapper.decode(address)
        controller = self.controllers[decoded.channel]
        request = MemoryRequest(kind=RequestKind.WRITE, address=address,
                                core_id=core_id, decoded=decoded)
        if not controller.enqueue(request):
            return False
        self.stats.writes += 1
        if self._telemetry_attached:
            self._c_writes.inc()
        return True

    # ------------------------------------------------------------------

    def telemetry_controllers(self) -> List[MemoryController]:
        return self.controllers

    def finalize(self) -> None:
        for controller in self.controllers:
            controller.finalize()

    def bus_utilization(self, elapsed_cycles: int) -> float:
        if not self.channels:
            return 0.0
        return sum(c.utilization(elapsed_cycles)
                   for c in self.channels) / len(self.channels)

    def chip_activities(self, elapsed_cycles: int) -> Dict[str, List[ChipActivity]]:
        """One activity record per chip; all chips of a rank are alike."""
        self.finalize()
        ghz = self.config.cpu_freq_ghz
        to_ns = lambda c: c / ghz  # noqa: E731
        elapsed_ns = max(1.0, to_ns(elapsed_cycles))
        t_burst_ns = self.device.timing.t_burst
        out: List[ChipActivity] = []
        for controller in self.controllers:
            for rank in controller.ranks:
                tally = rank.finalize_tally(self.events.now)
                reads = rank.read_count
                writes = rank.write_count
                activity = ChipActivity(
                    elapsed_ns=elapsed_ns,
                    activates=rank.activate_count,
                    reads=reads,
                    writes=writes,
                    read_bus_ns=reads * t_burst_ns,
                    write_bus_ns=writes * t_burst_ns,
                    active_standby_ns=to_ns(tally.active),
                    precharge_standby_ns=to_ns(tally.standby),
                    power_down_ns=to_ns(tally.power_down),
                    self_refresh_ns=to_ns(tally.self_refresh),
                )
                out.extend([activity] * self.config.devices_per_rank)
        return {self.config.kind.value: out}

    # The aggregate latency views (paper Fig 1b) come from the protocol
    # defaults in MemorySystem: every controller serves demand reads.

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update({
            "organisation": "homogeneous",
            "dram_kind": self.config.kind.value,
            "device": self.device.part_number,
            "num_channels": self.config.num_channels,
            "ranks_per_channel": self.config.ranks_per_channel,
        })
        return info
