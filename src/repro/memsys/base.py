"""The :class:`MemorySystem` protocol between the uncore and a memory.

Every memory organisation — homogeneous, the paper's CWF pairs, page
placement, HMC cubes, user plugins — implements this interface. The
protocol is *formal*: :func:`conformance_problems` enumerates exactly
what an implementation must provide, the backend registry and the
simulation harness check it before accepting an instance, and the
aggregate latency views (``avg_queue_latency`` / ``avg_core_latency``)
are part of the contract with controller-derived defaults rather than
optional duck-typed extras.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dram.power import ChipActivity
from repro.telemetry.registry import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
)
from repro.telemetry.trace import NULL_TRACER


@dataclass
class MemorySystemStats:
    """Roll-up the experiment harness reads after a run."""

    reads: int = 0
    demand_reads: int = 0
    writes: int = 0
    critical_served_fast: int = 0      # critical word came from the fast DIMM
    critical_served_slow: int = 0
    sum_critical_latency: int = 0      # arrival -> critical word (demands)
    sum_fill_latency: int = 0          # arrival -> full line (all reads)

    @property
    def avg_critical_latency(self) -> float:
        if not self.demand_reads:
            return 0.0
        return self.sum_critical_latency / self.demand_reads

    @property
    def avg_fill_latency(self) -> float:
        return self.sum_fill_latency / self.reads if self.reads else 0.0

    @property
    def fast_service_fraction(self) -> float:
        total = self.critical_served_fast + self.critical_served_slow
        return self.critical_served_fast / total if total else 0.0


class MemorySystem(abc.ABC):
    """A main memory reachable from the LLC.

    Contract:

    * :meth:`issue_read` starts a line fill. ``on_critical`` fires when
      the *requested word* is at the processor pins — from whichever part
      of the organisation carries it (the fast DIMM, or the first beat of
      the reordered bulk burst). ``on_complete`` fires when the whole
      line has arrived. Returns ``False`` if a controller queue is full
      (caller must retry).
    * :meth:`issue_write` enqueues a writeback. ``critical_word_tag`` is
      the observed critical word the adaptive scheme may persist.
    """

    stats: MemorySystemStats

    # Canonical registry name, stamped by the backend registry when the
    # instance was built through it (None for hand-assembled memories).
    backend_name: Optional[str] = None

    # Telemetry handles default to the shared null sink (class
    # attributes, so subclasses need no __init__ cooperation). The
    # ``_telemetry_attached`` flag lets per-request paths skip even the
    # no-op calls: an un-instrumented run pays one bool check per probe.
    telemetry_registry: Optional[MetricsRegistry] = None
    _telemetry_attached = False
    tracer = NULL_TRACER
    _h_critical = NULL_HISTOGRAM     # arrival -> critical word (demands)
    _h_fill = NULL_HISTOGRAM         # arrival -> full line (all reads)
    _c_demand_reads = NULL_COUNTER
    _c_reads = NULL_COUNTER
    _c_writes = NULL_COUNTER
    _c_fast = NULL_COUNTER           # critical word from the fast DIMM
    _c_slow = NULL_COUNTER

    def telemetry_controllers(self):
        """Memory controllers to instrument; overridden by subclasses."""
        return []

    def attach_telemetry(self, registry: MetricsRegistry,
                         tracer=None) -> None:
        """Bind this memory system (and its controllers) to a registry."""
        self.telemetry_registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._h_critical = registry.histogram("memsys.critical_latency_cycles")
        self._h_fill = registry.histogram("memsys.fill_latency_cycles")
        self._c_demand_reads = registry.counter("memsys.demand_reads")
        self._c_reads = registry.counter("memsys.reads")
        self._c_writes = registry.counter("memsys.writes")
        self._c_fast = registry.counter("memsys.critical_served_fast")
        self._c_slow = registry.counter("memsys.critical_served_slow")
        self._telemetry_attached = True
        for controller in self.telemetry_controllers():
            controller.attach_telemetry(registry, self.tracer)

    def export_telemetry(self, elapsed_cycles: int) -> None:
        """Publish end-of-run structural metrics (per channel/rank/bank)."""
        if self.telemetry_registry is None:
            return
        registry = self.telemetry_registry
        registry.gauge("memsys.bus_utilization").set(
            self.bus_utilization(elapsed_cycles))
        registry.gauge("memsys.fast_service_fraction").set(
            self.stats.fast_service_fraction)
        for controller in self.telemetry_controllers():
            controller.export_telemetry(elapsed_cycles)

    def derived_avg_critical_latency(self) -> float:
        """``avg_critical_latency`` recomputed purely from the registry.

        Must agree with :attr:`MemorySystemStats.avg_critical_latency`
        (the histogram sums the same observations; the demand-read
        counter increments where ``stats.demand_reads`` does).
        """
        demands = self._c_demand_reads.value
        return self._h_critical.sum / demands if demands else 0.0

    # --- aggregate latency views (protocol methods, paper Fig 1b) ----
    #
    # Abstract-with-default: part of the formal contract (the harness
    # calls them unconditionally; no getattr probing), with a sensible
    # controller-derived implementation so most organisations inherit
    # them for free. Organisations whose notion of "the queue" is more
    # subtle (e.g. CWF reports the bulk side only) override.

    def avg_queue_latency(self) -> float:
        """Mean cycles a demand read waited in controller queues."""
        controllers = self.telemetry_controllers()
        done = sum(c.stats.reads_done for c in controllers)
        if not done:
            return 0.0
        return sum(c.stats.sum_queue_latency for c in controllers) / done

    def avg_core_latency(self) -> float:
        """Mean cycles from issue to data once a read left the queue."""
        controllers = self.telemetry_controllers()
        done = sum(c.stats.reads_done for c in controllers)
        if not done:
            return 0.0
        return sum(c.stats.sum_core_latency for c in controllers) / done

    def describe(self) -> Dict[str, object]:
        """Structural self-description (capability hook).

        Telemetry manifests, the CLI, and debugging tools read this
        instead of poking at implementation attributes. Subclasses
        should call ``super().describe()`` and add organisation facts
        (devices, channel counts, policies).
        """
        return {
            "class": type(self).__name__,
            "backend": self.backend_name,
            "controllers": [c.name for c in self.telemetry_controllers()],
        }

    @abc.abstractmethod
    def issue_read(self, line_address: int, critical_word: int, core_id: int,
                   is_prefetch: bool,
                   on_critical: Callable[[int], None],
                   on_complete: Callable[[int], None]) -> bool:
        ...

    @abc.abstractmethod
    def issue_write(self, line_address: int, critical_word_tag: int,
                    core_id: int) -> bool:
        ...

    @abc.abstractmethod
    def chip_activities(self, elapsed_cycles: int) -> Dict[str, List[ChipActivity]]:
        """Per-chip activity factors keyed by chip family name."""
        ...

    @abc.abstractmethod
    def bus_utilization(self, elapsed_cycles: int) -> float:
        """Mean data-bus utilisation across the system's channels."""
        ...

    def finalize(self) -> None:
        """Fold any residency tallies; called once at end of run."""


# ---------------------------------------------------------------------------
# Protocol conformance
# ---------------------------------------------------------------------------

# The formal MemorySystem surface. Everything here must be a callable
# attribute; ``stats`` must additionally be a MemorySystemStats. The
# harness (and the backend registry) verify instances against this list
# once, up front, instead of getattr-probing on the hot path.
PROTOCOL_METHODS = (
    "issue_read",
    "issue_write",
    "chip_activities",
    "bus_utilization",
    "finalize",
    "avg_queue_latency",
    "avg_core_latency",
    "describe",
    "telemetry_controllers",
    "attach_telemetry",
    "export_telemetry",
)


class MemorySystemProtocolError(TypeError):
    """An object was offered as a MemorySystem but violates the protocol."""


def conformance_problems(memory: object) -> List[str]:
    """Every way ``memory`` falls short of the MemorySystem protocol.

    Returns an empty list for a conformant implementation. Structural
    (not nominal): a duck-typed object that provides the full surface
    passes even without inheriting :class:`MemorySystem`, so plugins
    are free to build on their own base classes.
    """
    problems: List[str] = []
    for name in PROTOCOL_METHODS:
        attr = getattr(memory, name, None)
        if attr is None:
            problems.append(f"missing method {name}()")
        elif not callable(attr):
            problems.append(f"attribute {name!r} is not callable")
    stats = getattr(memory, "stats", None)
    if stats is None:
        problems.append("missing 'stats' attribute")
    elif not isinstance(stats, MemorySystemStats):
        problems.append(
            f"'stats' must be a MemorySystemStats, got {type(stats).__name__}")
    return problems


def assert_conformant(memory: object) -> None:
    """Raise :class:`MemorySystemProtocolError` unless ``memory`` conforms."""
    problems = conformance_problems(memory)
    if problems:
        raise MemorySystemProtocolError(
            f"{type(memory).__name__} does not implement the MemorySystem "
            f"protocol: {'; '.join(problems)}")
