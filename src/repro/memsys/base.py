"""Abstract interface between the uncore and a main-memory organisation."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.dram.power import ChipActivity


@dataclass
class MemorySystemStats:
    """Roll-up the experiment harness reads after a run."""

    reads: int = 0
    demand_reads: int = 0
    writes: int = 0
    critical_served_fast: int = 0      # critical word came from the fast DIMM
    critical_served_slow: int = 0
    sum_critical_latency: int = 0      # arrival -> critical word (demands)
    sum_fill_latency: int = 0          # arrival -> full line (all reads)

    @property
    def avg_critical_latency(self) -> float:
        if not self.demand_reads:
            return 0.0
        return self.sum_critical_latency / self.demand_reads

    @property
    def avg_fill_latency(self) -> float:
        return self.sum_fill_latency / self.reads if self.reads else 0.0

    @property
    def fast_service_fraction(self) -> float:
        total = self.critical_served_fast + self.critical_served_slow
        return self.critical_served_fast / total if total else 0.0


class MemorySystem(abc.ABC):
    """A main memory reachable from the LLC.

    Contract:

    * :meth:`issue_read` starts a line fill. ``on_critical`` fires when
      the *requested word* is at the processor pins — from whichever part
      of the organisation carries it (the fast DIMM, or the first beat of
      the reordered bulk burst). ``on_complete`` fires when the whole
      line has arrived. Returns ``False`` if a controller queue is full
      (caller must retry).
    * :meth:`issue_write` enqueues a writeback. ``critical_word_tag`` is
      the observed critical word the adaptive scheme may persist.
    """

    stats: MemorySystemStats

    @abc.abstractmethod
    def issue_read(self, line_address: int, critical_word: int, core_id: int,
                   is_prefetch: bool,
                   on_critical: Callable[[int], None],
                   on_complete: Callable[[int], None]) -> bool:
        ...

    @abc.abstractmethod
    def issue_write(self, line_address: int, critical_word_tag: int,
                    core_id: int) -> bool:
        ...

    @abc.abstractmethod
    def chip_activities(self, elapsed_cycles: int) -> Dict[str, List[ChipActivity]]:
        """Per-chip activity factors keyed by chip family name."""
        ...

    @abc.abstractmethod
    def bus_utilization(self, elapsed_cycles: int) -> float:
        """Mean data-bus utilisation across the system's channels."""
        ...

    def finalize(self) -> None:
        """Fold any residency tallies; called once at end of run."""
