"""String-keyed registry of memory-organisation backends.

The paper's central claim is that critical-word-first is
*organisation-agnostic*: any memory that can deliver the requested word
early fits the architecture (Sec 10 sketches HMC-era embodiments). This
module makes organisations first-class: each one registers a
:class:`BackendDescriptor` — a canonical name, aliases, a factory, and
capability flags — via the :func:`register_backend` decorator, and the
simulator builds memories by *name* instead of through a closed enum.

Adding a new organisation is one self-contained module::

    from repro.memsys.registry import register_backend

    @register_backend("my_dram", aliases=("mine",),
                      description="my custom organisation",
                      dram_families=("ddr3",))
    def _build_my_dram(config, events, traces=None, profile=None):
        return MyMemory(events, cpu_freq_ghz=config.cpu_freq_ghz)

Factories receive the full :class:`~repro.sim.config.SimConfig`, the
run's :class:`~repro.util.events.EventQueue`, and (optionally) the
per-core traces and benchmark profile, and must return a
:class:`~repro.memsys.base.MemorySystem`; the returned instance is
protocol-checked before the simulator accepts it.

Built-in backends live in :mod:`repro.memsys.backends` and are loaded
lazily on first lookup, so importing this module is cheap and free of
circular imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.memsys.base import MemorySystem, assert_conformant
from repro.util.suggest import close_matches, did_you_mean


class BackendError(ValueError):
    """Base class for registry failures."""


class UnknownBackendError(BackendError):
    """Lookup of a name no backend registered (carries a did-you-mean)."""

    def __init__(self, name: str, suggestions: Sequence[str] = ()) -> None:
        self.name = name
        self.suggestions = list(suggestions)
        message = (f"unknown memory backend {name!r}"
                   + did_you_mean(self.suggestions)
                   + " (run 'repro list-backends' for the full list)")
        super().__init__(message)


class DuplicateBackendError(BackendError):
    """A name or alias was registered twice."""


@dataclass(frozen=True)
class BackendDescriptor:
    """Everything the harness needs to know about one organisation.

    ``factory(config, events, traces=None, profile=None)`` builds the
    live :class:`MemorySystem`. Capability flags let schedulers and the
    CLI reason about a backend without instantiating it:

    * ``needs_profile`` — the factory wants the benchmark profile (for
      offline profiling passes or warm adaptive tags); the harness
      passes it when available, and such backends cannot be built from
      a bare event queue alone.
    * ``is_heterogeneous`` — more than one DRAM family serves demand
      fetches (CWF pairs, page placement, mixed HMC cubes).
    * ``dram_families`` — power-model families the organisation draws
      from, fast part first.
    """

    name: str
    factory: Callable[..., MemorySystem]
    aliases: Tuple[str, ...] = ()
    description: str = ""
    needs_profile: bool = False
    is_heterogeneous: bool = False
    dram_families: Tuple[str, ...] = ()
    paper_section: str = ""

    def capabilities(self) -> Dict[str, object]:
        """Capability flags as a plain dict (CLI / manifest friendly)."""
        return {
            "needs_profile": self.needs_profile,
            "is_heterogeneous": self.is_heterogeneous,
            "dram_families": list(self.dram_families),
        }


_BACKENDS: Dict[str, BackendDescriptor] = {}
_ALIASES: Dict[str, str] = {}
_builtins_loaded = False


def register_backend(name: str, *, aliases: Sequence[str] = (),
                     description: str = "", needs_profile: bool = False,
                     is_heterogeneous: bool = False,
                     dram_families: Sequence[str] = (),
                     paper_section: str = ""):
    """Decorator registering ``factory`` under ``name`` (plus aliases)."""

    def decorator(factory: Callable[..., MemorySystem]):
        descriptor = BackendDescriptor(
            name=name, factory=factory, aliases=tuple(aliases),
            description=description, needs_profile=needs_profile,
            is_heterogeneous=is_heterogeneous,
            dram_families=tuple(dram_families),
            paper_section=paper_section)
        _register(descriptor)
        return factory

    return decorator


def _register(descriptor: BackendDescriptor) -> None:
    for key in (descriptor.name,) + descriptor.aliases:
        owner = _ALIASES.get(key)
        if owner is not None and owner != descriptor.name:
            raise DuplicateBackendError(
                f"backend name {key!r} already registered by {owner!r}")
    if descriptor.name in _BACKENDS:
        raise DuplicateBackendError(
            f"backend {descriptor.name!r} already registered")
    _BACKENDS[descriptor.name] = descriptor
    _ALIASES[descriptor.name] = descriptor.name
    for alias in descriptor.aliases:
        _ALIASES[alias] = descriptor.name


def unregister_backend(name: str) -> None:
    """Remove a backend (test hygiene for plugin round-trips)."""
    descriptor = _BACKENDS.pop(name, None)
    if descriptor is None:
        return
    for key in (descriptor.name,) + descriptor.aliases:
        if _ALIASES.get(key) == name:
            del _ALIASES[key]


def ensure_builtin_backends() -> None:
    """Load the built-in backend module exactly once (idempotent)."""
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.memsys.backends  # noqa: F401  (registers on import)


def resolve_name(name) -> str:
    """Canonical backend name for ``name`` (str, alias, or legacy enum).

    Raises :class:`UnknownBackendError` — with close-match suggestions —
    when nothing is registered under the name.
    """
    ensure_builtin_backends()
    # Accept the deprecated MemoryKind enum (and any str-valued enum).
    name = getattr(name, "value", name)
    if not isinstance(name, str):
        raise BackendError(
            f"memory backend must be a name, got {type(name).__name__}")
    key = name.strip().lower().replace("-", "_")
    canonical = _ALIASES.get(key)
    if canonical is None:
        raise UnknownBackendError(name, close_matches(key, _ALIASES))
    return canonical


def get_backend(name) -> BackendDescriptor:
    """The descriptor registered under ``name`` (alias-aware)."""
    return _BACKENDS[resolve_name(name)]


def backend_names() -> List[str]:
    """Canonical names of every registered backend, sorted."""
    ensure_builtin_backends()
    return sorted(_BACKENDS)


def list_backends() -> List[BackendDescriptor]:
    """Every registered descriptor, sorted by canonical name."""
    ensure_builtin_backends()
    return [_BACKENDS[name] for name in sorted(_BACKENDS)]


def create_memory(name, config, events, traces=None,
                  profile=None) -> MemorySystem:
    """Build the named organisation and protocol-check the result."""
    descriptor = get_backend(name)
    memory = descriptor.factory(config, events, traces=traces,
                                profile=profile)
    assert_conformant(memory)
    memory.backend_name = descriptor.name
    return memory
