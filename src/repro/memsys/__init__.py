"""Memory-system assemblies and the pluggable backend registry.

:mod:`repro.memsys.base` defines the formal :class:`MemorySystem`
protocol every organisation implements; :mod:`repro.memsys.registry`
holds the string-keyed backend registry (``"ddr3"``, ``"rl"``,
``"hmc_cwf"``, ...); :mod:`repro.memsys.backends` registers the
built-in organisations. The heterogeneous critical-word-first systems
(the paper's contribution) live in :mod:`repro.core`; they implement
the same protocol so that the uncore and experiment harness are
agnostic to the memory organisation.
"""

from repro.memsys.base import (
    MemorySystem,
    MemorySystemProtocolError,
    MemorySystemStats,
    assert_conformant,
    conformance_problems,
)
from repro.memsys.homogeneous import HomogeneousMemory
from repro.memsys.registry import (
    BackendDescriptor,
    DuplicateBackendError,
    UnknownBackendError,
    backend_names,
    create_memory,
    get_backend,
    list_backends,
    register_backend,
    resolve_name,
)

__all__ = [
    "MemorySystem", "MemorySystemStats", "MemorySystemProtocolError",
    "assert_conformant", "conformance_problems", "HomogeneousMemory",
    "BackendDescriptor", "DuplicateBackendError", "UnknownBackendError",
    "backend_names", "create_memory", "get_backend", "list_backends",
    "register_backend", "resolve_name",
]
