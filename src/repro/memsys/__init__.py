"""Memory-system assemblies: the DDR3 baseline and homogeneous variants.

The heterogeneous critical-word-first systems (the paper's contribution)
live in :mod:`repro.core`; they implement the same
:class:`~repro.memsys.base.MemorySystem` interface so that the uncore
and experiment harness are agnostic to the memory organisation.
"""

from repro.memsys.base import MemorySystem, MemorySystemStats
from repro.memsys.homogeneous import HomogeneousMemory

__all__ = ["MemorySystem", "MemorySystemStats", "HomogeneousMemory"]
