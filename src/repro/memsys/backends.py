"""Built-in memory-organisation backends.

Every organisation the paper evaluates — plus the Sec 10 HMC sketches —
registered with :mod:`repro.memsys.registry`. Imported lazily by the
registry on first lookup; importing this module has no side effect
beyond populating the registry.

Factory contract: ``factory(config, events, traces=None, profile=None)``
where ``config`` is the run's :class:`~repro.sim.config.SimConfig`.
``traces``/``profile`` only matter to backends that declare
``needs_profile`` (offline page-heat profiling, warm adaptive tags).
"""

from __future__ import annotations

from repro.core.cwf import (
    CriticalWordMemory,
    CWFConfig,
    CWFPolicy,
    HeteroPair,
)
from repro.core.hmc import build_hmc_memory, HMC_HF_DEVICE, HMC_LP_DEVICE
from repro.core.placement import (
    PagePlacementConfig,
    PagePlacementMemory,
    profile_page_heat,
)
from repro.dram.device import DRAMKind
from repro.memsys.homogeneous import HomogeneousConfig, HomogeneousMemory
from repro.memsys.registry import register_backend

# ---------------------------------------------------------------------------
# Homogeneous organisations (paper Fig 1)
# ---------------------------------------------------------------------------


def _register_homogeneous(name: str, kind: DRAMKind, description: str,
                          aliases=()) -> None:
    @register_backend(name, aliases=aliases, description=description,
                      dram_families=(kind.value,), paper_section="Fig 1")
    def _build(config, events, traces=None, profile=None, _kind=kind):
        return HomogeneousMemory(
            events, HomogeneousConfig(kind=_kind,
                                      cpu_freq_ghz=config.cpu_freq_ghz))


_register_homogeneous(
    "ddr3", DRAMKind.DDR3, "baseline: 4 x 72-bit DDR3-1600 channels",
    aliases=("baseline",))
_register_homogeneous(
    "rldram3", DRAMKind.RLDRAM3,
    "all-RLDRAM3: fast, power-hungry homogeneous system",
    aliases=("rldram",))
_register_homogeneous(
    "lpddr2", DRAMKind.LPDDR2,
    "all-LPDDR2: low-power, slow homogeneous system",
    aliases=("lpddr",))

# ---------------------------------------------------------------------------
# Critical-word-first pairs (paper Sec 4.2 / 6.1)
# ---------------------------------------------------------------------------

_CWF_FAMILIES = {
    HeteroPair.RD: ("rldram3", "ddr3"),
    HeteroPair.RL: ("rldram3", "lpddr2"),
    HeteroPair.DL: ("ddr3", "lpddr2"),
}


def _register_cwf(name: str, pair: HeteroPair, policy: CWFPolicy,
                  description: str, section: str, aliases=(),
                  needs_profile: bool = False) -> None:
    @register_backend(name, aliases=aliases, description=description,
                      needs_profile=needs_profile, is_heterogeneous=True,
                      dram_families=_CWF_FAMILIES[pair],
                      paper_section=section)
    def _build(config, events, traces=None, profile=None,
               _pair=pair, _policy=policy):
        seeder = None
        if _policy is CWFPolicy.ADAPTIVE and profile is not None:
            from repro.sim.config import adaptive_tag_seeder
            seeder = adaptive_tag_seeder(profile)
        return CriticalWordMemory(
            events, CWFConfig(pair=_pair, policy=_policy,
                              cpu_freq_ghz=config.cpu_freq_ghz),
            tag_seeder=seeder)


_register_cwf("rd", HeteroPair.RD, CWFPolicy.STATIC,
              "CWF: RLDRAM3 critical word + DDR3 bulk", "Sec 6.1")
_register_cwf("rl", HeteroPair.RL, CWFPolicy.STATIC,
              "CWF: RLDRAM3 critical word + LPDDR2 bulk (flagship)",
              "Sec 6.1")
_register_cwf("dl", HeteroPair.DL, CWFPolicy.STATIC,
              "CWF: DDR3 critical word + LPDDR2 bulk", "Sec 6.1")
_register_cwf("rl_adaptive", HeteroPair.RL, CWFPolicy.ADAPTIVE,
              "RL with per-line adaptive critical-word tags", "Sec 4.2.5",
              needs_profile=True)
_register_cwf("rl_oracle", HeteroPair.RL, CWFPolicy.ORACLE,
              "RL upper bound: every critical word at fast latency",
              "Sec 6.1.2")
_register_cwf("rl_random", HeteroPair.RL, CWFPolicy.RANDOM,
              "RL control: hash-random word on the fast DIMM", "Sec 6.1.1")

# ---------------------------------------------------------------------------
# Page placement (paper Sec 7.1)
# ---------------------------------------------------------------------------


@register_backend("page_placement", aliases=("pp",),
                  description="hot 7.6% of pages in RLDRAM3, rest LPDDR2",
                  needs_profile=True, is_heterogeneous=True,
                  dram_families=("rldram3", "lpddr2"),
                  paper_section="Sec 7.1")
def _build_page_placement(config, events, traces=None, profile=None):
    # Offline profiling pass: rank pages over a long profiling trace —
    # the paper profiles the whole execution, not the measured window.
    if profile is not None:
        from repro.workloads.synthetic import TraceGenerator
        profiling = [TraceGenerator(profile, core, config.seed).records(30_000)
                     for core in range(config.num_cores)]
    elif traces is not None:
        profiling = traces
    else:
        raise ValueError("page_placement needs a profile or traces")
    ranking = profile_page_heat(profiling)
    return PagePlacementMemory(
        events, ranking,
        PagePlacementConfig(cpu_freq_ghz=config.cpu_freq_ghz))


# ---------------------------------------------------------------------------
# HMC embodiments (paper Sec 10 future work)
# ---------------------------------------------------------------------------


@register_backend("hmc_hf", description="all high-frequency HMC cubes "
                  "(fast stacked arrays, power-hungry SerDes)",
                  dram_families=(HMC_HF_DEVICE.kind.value,),
                  paper_section="Sec 10")
def _build_hmc_hf(config, events, traces=None, profile=None):
    return HomogeneousMemory(
        events,
        HomogeneousConfig(kind=HMC_HF_DEVICE.kind,
                          cpu_freq_ghz=config.cpu_freq_ghz),
        device=HMC_HF_DEVICE)


@register_backend("hmc_lp", description="all low-power HMC cubes "
                  "(slow link, deep power-down)",
                  dram_families=(HMC_LP_DEVICE.kind.value,),
                  paper_section="Sec 10")
def _build_hmc_lp(config, events, traces=None, profile=None):
    return HomogeneousMemory(
        events,
        HomogeneousConfig(kind=HMC_LP_DEVICE.kind,
                          cpu_freq_ghz=config.cpu_freq_ghz),
        device=HMC_LP_DEVICE)


@register_backend("hmc_cwf", aliases=("hmc",),
                  description="CWF across cubes: critical word from "
                  "high-frequency HMC, bulk from low-power HMC",
                  is_heterogeneous=True,
                  dram_families=(HMC_HF_DEVICE.kind.value,
                                 HMC_LP_DEVICE.kind.value),
                  paper_section="Sec 10")
def _build_hmc_cwf(config, events, traces=None, profile=None):
    return build_hmc_memory(events, cpu_freq_ghz=config.cpu_freq_ghz)
