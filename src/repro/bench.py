"""Kernel-throughput benchmark: the perf-regression harness of the repo.

Runs a pinned matrix of (memory organisation x benchmark) cells through
:func:`repro.sim.system.run_benchmark` and reports *simulated DRAM reads
per wallclock second* — the end-to-end figure of merit for the event
kernel (event queue, DRAM timing FSMs, controller issue loops, cache
hierarchy). The matrix is fixed so numbers are comparable across
commits:

* memories: ``ddr3`` (open-page FR-FCFS), ``rl`` (heterogeneous
  RLDRAM3+LPDDR2 critical-word system), ``hmc_cwf`` (HMC-style bulk with
  a critical-word fast channel) — together they exercise the open-page,
  close-page, and aggregated shared-command-bus controller paths;
* benchmarks: ``mcf`` (pointer-chasing, cache-hostile) and ``leslie3d``
  (streaming with prefetch traffic).

Besides wallclock rates the report carries ``process_cpu_seconds`` per
cell, which is less noisy on loaded machines, and the regression check
used by CI: ``compare_to_baseline`` fails when total throughput drops
more than ``fail_threshold`` (default 25%) below a committed baseline
(``benchmarks/perf/BENCH_baseline.json``).

Schema 2 adds provenance and footprint columns: each cell records the
resolved workload-source id and its content token (so a report pins
exactly which workload bytes it measured), plus the process peak RSS
(``ru_maxrss``) after the cell ran — the figure that demonstrates the
streaming trace pipeline's memory win. ``compare_to_baseline`` only
reads throughput fields, so schema-1 baselines keep gating schema-2
reports.

Used by ``repro bench`` (see :mod:`repro.cli`) and by
``benchmarks/perf/test_kernel_throughput.py``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import SimConfig
from repro.sim.system import run_benchmark

# The pinned matrix. Do not reorder: the prewarm memoization in
# sim.system makes the first cell of each benchmark bear the warm-L2
# compute, and keeping the order fixed keeps that attribution stable
# across runs and commits.
BENCH_MEMORIES: Tuple[str, ...] = ("ddr3", "rl", "hmc_cwf")
BENCH_BENCHMARKS: Tuple[str, ...] = ("mcf", "leslie3d")

DEFAULT_READS = 4000
QUICK_READS = 800
DEFAULT_FAIL_THRESHOLD = 0.25

SCHEMA = 2


def _peak_rss_kb() -> int:
    """Process high-water RSS in KiB (0 where resource is unavailable)."""
    try:
        import resource
    except ImportError:  # non-Unix platform
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_bench(target_dram_reads: int = DEFAULT_READS,
              memories: Sequence[str] = BENCH_MEMORIES,
              benchmarks: Sequence[str] = BENCH_BENCHMARKS,
              repeats: int = 1) -> Dict[str, object]:
    """Run the matrix; returns the report dict (see module docstring).

    ``repeats`` re-runs the whole matrix and keeps, per cell, the run
    with the best wallclock rate — the standard noise filter for
    throughput numbers on shared machines.
    """
    from repro.workloads.registry import (
        resolve_workload,
        workload_cache_token,
    )

    cells: Dict[str, Dict[str, object]] = {}
    for _ in range(max(1, repeats)):
        for memory in memories:
            for benchmark in benchmarks:
                cfg = SimConfig(memory=memory,
                                target_dram_reads=target_dram_reads)
                workload = resolve_workload(benchmark)
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                result = run_benchmark(benchmark, cfg)
                cpu = time.process_time() - cpu0
                wall = time.perf_counter() - wall0
                reads = result.dram_reads
                cell = {
                    "benchmark": benchmark,
                    "memory": memory,
                    "workload": workload,
                    "workload_token": workload_cache_token(workload),
                    "dram_reads": reads,
                    "wall_seconds": round(wall, 6),
                    "process_cpu_seconds": round(cpu, 6),
                    "reads_per_second": round(reads / wall, 1) if wall else 0.0,
                    "elapsed_cycles": result.elapsed_cycles,
                    # ru_maxrss is a process-lifetime high-water mark, so
                    # per-cell values are cumulative; the interesting
                    # figure is the report-level peak staying flat as
                    # read targets grow (streaming traces, no O(trace)
                    # lists).
                    "max_rss_kb": _peak_rss_kb(),
                }
                key = f"{benchmark}/{memory}"
                prev = cells.get(key)
                if prev is None or cell["reads_per_second"] > prev["reads_per_second"]:
                    cells[key] = cell
    total_reads = sum(c["dram_reads"] for c in cells.values())
    total_wall = sum(c["wall_seconds"] for c in cells.values())
    total_cpu = sum(c["process_cpu_seconds"] for c in cells.values())
    return {
        "schema": SCHEMA,
        "target_dram_reads": target_dram_reads,
        "repeats": max(1, repeats),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cells": cells,
        "total": {
            "dram_reads": total_reads,
            "wall_seconds": round(total_wall, 6),
            "process_cpu_seconds": round(total_cpu, 6),
            "reads_per_second": (round(total_reads / total_wall, 1)
                                 if total_wall else 0.0),
            "max_rss_kb": _peak_rss_kb(),
        },
    }


def compare_to_baseline(report: Dict[str, object],
                        baseline: Dict[str, object],
                        fail_threshold: float = DEFAULT_FAIL_THRESHOLD
                        ) -> Tuple[bool, List[str]]:
    """Regression gate: total reads/s must stay within ``fail_threshold``
    of the baseline. Returns ``(ok, messages)``.

    Only the aggregate rate gates — per-cell rates are reported for
    diagnosis but are too noisy to fail on individually.
    """
    messages: List[str] = []
    base_total = baseline.get("total", {}).get("reads_per_second")
    cur_total = report.get("total", {}).get("reads_per_second")
    if not base_total or not cur_total:
        return True, ["baseline or report missing totals; skipping gate"]
    ratio = cur_total / base_total
    messages.append(
        f"total: {cur_total:,.0f} reads/s vs baseline {base_total:,.0f} "
        f"({ratio:.2f}x)")
    base_cells = baseline.get("cells", {})
    for key, cell in report.get("cells", {}).items():
        base = base_cells.get(key)
        if not base:
            continue
        messages.append(
            f"  {key}: {cell['reads_per_second']:,.0f} vs "
            f"{base['reads_per_second']:,.0f} reads/s")
    ok = ratio >= 1.0 - fail_threshold
    if not ok:
        messages.append(
            f"REGRESSION: total throughput fell {100 * (1 - ratio):.0f}% "
            f"(> {100 * fail_threshold:.0f}% allowed)")
    return ok, messages


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def format_report(report: Dict[str, object]) -> str:
    lines = [
        f"kernel throughput (target_dram_reads="
        f"{report['target_dram_reads']}, repeats={report['repeats']})",
        f"{'cell':<22}{'reads/s':>12}{'cpu reads/s':>14}{'reads':>9}",
    ]
    for key in sorted(report["cells"]):
        cell = report["cells"][key]
        cpu = cell["process_cpu_seconds"]
        cpu_rate = cell["dram_reads"] / cpu if cpu else 0.0
        lines.append(f"{key:<22}{cell['reads_per_second']:>12,.0f}"
                     f"{cpu_rate:>14,.0f}{cell['dram_reads']:>9,}")
    total = report["total"]
    lines.append(f"{'TOTAL':<22}{total['reads_per_second']:>12,.0f}"
                 f"{'':>14}{total['dram_reads']:>9,}")
    rss = total.get("max_rss_kb")
    if rss:
        lines.append(f"peak RSS: {rss / 1024:,.1f} MiB")
    return "\n".join(lines)
