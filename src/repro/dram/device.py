"""DRAM device (chip) geometry and page policy.

A :class:`DeviceConfig` describes one chip family well enough for the
address mapper (rows/columns/banks), the bank state machines (page
policy, timing), and the power model (device width, capacity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.timing import (
    DDR3_TIMING,
    LPDDR2_TIMING,
    RLDRAM3_TIMING,
    TimingParameters,
)


class DRAMKind(enum.Enum):
    """The three device families the paper builds memories from."""

    DDR3 = "ddr3"
    LPDDR2 = "lpddr2"
    RLDRAM3 = "rldram3"


class PagePolicy(enum.Enum):
    """Row-buffer management policy.

    DDR3/LPDDR2 use open-page in the paper (best-performing baseline);
    RLDRAM3 auto-precharges after every access so it is close-page by
    construction.
    """

    OPEN = "open"
    CLOSE = "close"


@dataclass(frozen=True)
class DeviceConfig:
    """One DRAM chip family.

    ``row_size_bytes`` is the row-buffer (page) size per chip; a rank's
    effective page is ``row_size_bytes * devices_per_rank``.
    """

    kind: DRAMKind
    part_number: str
    timing: TimingParameters
    capacity_mbit: int
    data_width_bits: int
    num_banks: int
    num_rows: int
    num_cols: int
    page_policy: PagePolicy
    supports_power_down: bool = True
    # RLDRAM provides the entire address with a single READ/WRITE command
    # (SRAM-style); DDR-style devices split it into RAS + CAS.
    single_command_addressing: bool = False

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_rows <= 0 or self.num_cols <= 0:
            raise ValueError(f"{self.part_number}: geometry must be positive")
        derived_mbit = (self.num_banks * self.num_rows * self.num_cols
                        * self.data_width_bits) / (1024 * 1024)
        if abs(derived_mbit - self.capacity_mbit) / self.capacity_mbit > 0.01:
            raise ValueError(
                f"{self.part_number}: geometry implies {derived_mbit:.0f} Mbit, "
                f"declared {self.capacity_mbit} Mbit")

    @property
    def row_size_bytes(self) -> int:
        """Bytes fetched into this chip's row buffer by one ACT."""
        return self.num_cols * self.data_width_bits // 8

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_mbit * 1024 * 1024 // 8


# --- Part presets (paper Table 1 / Section 5) ------------------------------

# Micron MT41J256M8: 2 Gb DDR3, x8, 8 banks, 32K rows x 1K cols.
DDR3_DEVICE = DeviceConfig(
    kind=DRAMKind.DDR3,
    part_number="MT41J256M8",
    timing=DDR3_TIMING,
    capacity_mbit=2048,
    data_width_bits=8,
    num_banks=8,
    num_rows=32768,
    num_cols=1024,
    page_policy=PagePolicy.OPEN,
)

# Micron MT42L128M16D1 at 400 MHz: 2 Gb LPDDR2. The paper uses it in an
# x8-per-line role on the low-power DIMM; core geometry matches DDR3
# densities ("core densities and bank counts remain the same", Sec 2.2).
LPDDR2_DEVICE = DeviceConfig(
    kind=DRAMKind.LPDDR2,
    part_number="MT42L128M16D1",
    timing=LPDDR2_TIMING,
    capacity_mbit=2048,
    data_width_bits=8,
    num_banks=8,
    num_rows=32768,
    num_cols=1024,
    page_policy=PagePolicy.OPEN,
)

# Micron MT44K32M18: 576 Mb RLDRAM3, 16 banks, tiny fast arrays. The
# paper assumes a future x9 part for the critical-word DIMM (Sec 4.1).
RLDRAM3_DEVICE = DeviceConfig(
    kind=DRAMKind.RLDRAM3,
    part_number="MT44K32M18",
    timing=RLDRAM3_TIMING,
    capacity_mbit=576,
    data_width_bits=9,
    num_banks=16,
    num_rows=8192,
    num_cols=512,
    page_policy=PagePolicy.CLOSE,
    supports_power_down=False,
    single_command_addressing=True,
)

DEVICE_PRESETS = {
    DRAMKind.DDR3: DDR3_DEVICE,
    DRAMKind.LPDDR2: LPDDR2_DEVICE,
    DRAMKind.RLDRAM3: RLDRAM3_DEVICE,
}


def device_for(kind: DRAMKind) -> DeviceConfig:
    """Return the preset chip for a DRAM family."""
    return DEVICE_PRESETS[kind]
