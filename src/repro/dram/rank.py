"""Rank model: a set of banks sharing tFAW, turnaround, and power state.

The rank also owns the power-down state machine used by the aggressive
sleep-transition policy on the low-power channel (paper Sec 4.1): when a
rank has been idle for a threshold the controller moves it to precharge
power-down; wake-up costs ``t_pd_exit``.

Like :class:`~repro.dram.bank.Bank`, the rank is slotted and carries
its tFAW/tRRD/power-down constraints as flat integers resolved once at
construction; ``earliest_activate``/``note_activate`` run on every ACT.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.dram.bank import Bank
from repro.dram.device import DeviceConfig
from repro.dram.timing import TimingSet


class PowerState(enum.Enum):
    ACTIVE = "active"            # at least one bank open (IDD3N class)
    STANDBY = "standby"          # all banks precharged (IDD2N class)
    POWER_DOWN = "power_down"    # precharge power-down (IDD2P class)
    SELF_REFRESH = "self_refresh"


class PowerStateTally:
    """Cycles spent resident in each power state, for the power model."""

    __slots__ = ("active", "standby", "power_down", "self_refresh")

    def __init__(self, active: int = 0, standby: int = 0,
                 power_down: int = 0, self_refresh: int = 0) -> None:
        self.active = active
        self.standby = standby
        self.power_down = power_down
        self.self_refresh = self_refresh

    def total(self) -> int:
        return self.active + self.standby + self.power_down + self.self_refresh

    def __repr__(self) -> str:
        return (f"PowerStateTally(active={self.active}, "
                f"standby={self.standby}, power_down={self.power_down}, "
                f"self_refresh={self.self_refresh})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PowerStateTally):
            return NotImplemented
        return (self.active == other.active
                and self.standby == other.standby
                and self.power_down == other.power_down
                and self.self_refresh == other.self_refresh)


class Rank:
    """Banks plus rank-wide constraints (tFAW, tRRD, power-down)."""

    __slots__ = (
        "device", "timing", "index", "banks", "open_banks",
        "_recent_activates",
        "next_act_allowed", "power_state", "wake_time",
        "last_activity_time", "tally", "_tally_mark", "power_down_entries",
        "t_faw", "t_rrd", "t_pd_exit", "_supports_power_down",
    )

    def __init__(self, device: DeviceConfig, timing: TimingSet,
                 index: int = 0) -> None:
        self.device = device
        self.timing = timing
        self.index = index
        self.banks: List[Bank] = [
            Bank(timing=timing, index=b) for b in range(device.num_banks)
        ]
        # Count of banks with an open row, maintained by the banks
        # themselves on every ACT/PRE/refresh transition.
        self.open_banks = 0
        for bank in self.banks:
            bank.owner = self
        # Sliding window of recent ACT times for the tFAW constraint.
        self._recent_activates: List[int] = []
        self.next_act_allowed = 0  # tRRD across banks
        self.power_state = PowerState.STANDBY
        self.wake_time = 0          # when a power-down exit completes
        self.last_activity_time = 0
        self.tally = PowerStateTally()
        self._tally_mark = 0        # last time the tally was folded up
        self.power_down_entries = 0
        # Flat rank-wide timing constraints.
        self.t_faw = timing.t_faw
        self.t_rrd = timing.t_rrd
        self.t_pd_exit = timing.t_pd_exit
        self._supports_power_down = device.supports_power_down

    # --- tFAW / tRRD ----------------------------------------------------

    def earliest_activate(self, now: int) -> int:
        """Earliest time a new ACT satisfies tFAW and tRRD rank-wide."""
        earliest = max(now, self.next_act_allowed, self.wake_time)
        t_faw = self.t_faw
        if t_faw > 0:
            recent = self._recent_activates
            if len(recent) >= 4:
                window = recent[-4] + t_faw
                if window > earliest:
                    earliest = window
        return earliest

    def can_activate(self, now: int) -> bool:
        return self.earliest_activate(now) <= now

    def note_activate(self, now: int) -> None:
        """Record an ACT issued now (caller already checked legality)."""
        recent = self._recent_activates
        recent.append(now)
        if len(recent) > 8:
            del recent[:-8]
        self.next_act_allowed = now + self.t_rrd
        self.touch(now)

    # --- power-down management ------------------------------------------

    def touch(self, now: int) -> None:
        """Mark activity: wakes the rank if powered down."""
        self._fold_tally(now)
        self.last_activity_time = now
        if self.power_state in (PowerState.POWER_DOWN, PowerState.SELF_REFRESH):
            self.power_state = PowerState.STANDBY

    def wake(self, now: int) -> int:
        """Begin power-down exit; returns the time the rank is usable."""
        if self.power_state not in (PowerState.POWER_DOWN,
                                    PowerState.SELF_REFRESH):
            return now
        self._fold_tally(now)
        self.power_state = PowerState.STANDBY
        self.wake_time = now + self.t_pd_exit
        return self.wake_time

    def try_power_down(self, now: int, idle_threshold: int) -> bool:
        """Enter precharge power-down if idle long enough and all banks closed."""
        if not self._supports_power_down:
            return False
        if self.power_state is not PowerState.STANDBY:
            return False
        if now - self.last_activity_time < idle_threshold:
            return False
        if self.open_banks:
            return False
        self._fold_tally(now)
        self.power_state = PowerState.POWER_DOWN
        self.power_down_entries += 1
        return True

    def all_banks_idle(self) -> bool:
        return self.open_banks == 0

    def _fold_tally(self, now: int) -> None:
        span = now - self._tally_mark
        if span <= 0:
            self._tally_mark = max(self._tally_mark, now)
            return
        state = self._effective_state()
        if state is PowerState.ACTIVE:
            self.tally.active += span
        elif state is PowerState.STANDBY:
            self.tally.standby += span
        elif state is PowerState.POWER_DOWN:
            self.tally.power_down += span
        else:
            self.tally.self_refresh += span
        self._tally_mark = now

    def _effective_state(self) -> PowerState:
        # Runs inside every tally fold (i.e. on every command); the
        # open-bank count makes the any-bank-open question O(1).
        state = self.power_state
        if state is PowerState.STANDBY and self.open_banks:
            return PowerState.ACTIVE
        return state

    def finalize_tally(self, now: int) -> PowerStateTally:
        """Fold residency up to ``now`` and return the tally."""
        self._fold_tally(now)
        return self.tally

    # --- statistics -------------------------------------------------------

    @property
    def activate_count(self) -> int:
        return sum(b.activate_count for b in self.banks)

    @property
    def read_count(self) -> int:
        return sum(b.read_count for b in self.banks)

    @property
    def write_count(self) -> int:
        return sum(b.write_count for b in self.banks)

    def bank(self, index: int) -> Bank:
        return self.banks[index]

    def telemetry_items(self, now: int) -> dict:
        """End-of-run counters and power-state residency for export."""
        tally = self.finalize_tally(now)
        return {
            "act_count": self.activate_count,
            "read_count": self.read_count,
            "write_count": self.write_count,
            "power_down_entries": self.power_down_entries,
            "cycles_active": tally.active,
            "cycles_standby": tally.standby,
            "cycles_power_down": tally.power_down,
            "cycles_self_refresh": tally.self_refresh,
        }


def open_row_of(rank: Rank, bank: int) -> Optional[int]:
    """Convenience: the open row in ``bank`` or None."""
    return rank.banks[bank].open_row
