"""Channel model: shared data bus and address/command bus.

A channel serialises data transfers from its ranks and accounts for bus
turnaround penalties (write-to-read tWTR within a rank, tRTRS between
ranks / between reads and writes back-to-back on the bus).

The command bus is modelled as a slotted resource: ``cmd_slots_per_cycle``
commands may issue per bus clock. The aggregated RLDRAM channel of the
paper (Sec 4.2.4) shares one double-data-rate command bus across four
skinny data sub-channels, i.e. 2 slots per bus cycle feeding 4 data buses
— the data:command utilisation ratio of 4:1 the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.request import RequestKind
from repro.dram.timing import TimingSet


@dataclass
class BusStats:
    """Occupancy accounting for utilisation figures."""

    data_busy_cycles: int = 0
    cmd_busy_cycles: int = 0
    reads_transferred: int = 0
    writes_transferred: int = 0


class DataBus:
    """One data bus; serialises bursts and applies turnaround gaps."""

    def __init__(self, timing: TimingSet) -> None:
        self.timing = timing
        self.free_at = 0
        self.last_kind: Optional[RequestKind] = None
        self.last_rank: Optional[int] = None
        self.stats = BusStats()

    def earliest_start(self, desired: int, kind: RequestKind, rank: int) -> int:
        """Earliest time a burst of ``kind`` from ``rank`` may start."""
        start = max(desired, self.free_at)
        if self.last_kind is None:
            return start
        gap = 0
        if self.last_rank is not None and rank != self.last_rank:
            gap = max(gap, self.timing.t_rtrs)
        if self.last_kind is not RequestKind.READ and kind is RequestKind.READ:
            # Write-to-read turnaround on the shared bus.
            gap = max(gap, self.timing.t_wtr)
        elif self.last_kind is RequestKind.READ and kind is RequestKind.WRITE:
            gap = max(gap, self.timing.t_rtrs)
        return max(start, self.free_at + gap)

    def reserve(self, start: int, kind: RequestKind, rank: int) -> int:
        """Occupy the bus for one burst starting at ``start``; returns end."""
        if start < self.free_at:
            raise RuntimeError(
                f"data bus conflict: start {start} < free_at {self.free_at}")
        end = start + self.timing.t_burst
        self.free_at = end
        self.last_kind = kind
        self.last_rank = rank
        self.stats.data_busy_cycles += self.timing.t_burst
        if kind is RequestKind.READ:
            self.stats.reads_transferred += 1
        else:
            self.stats.writes_transferred += 1
        return end

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus carried data."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.data_busy_cycles / elapsed)


class CommandBus:
    """Slotted address/command bus shared by one or more data buses."""

    def __init__(self, timing: TimingSet, slots_per_cycle: int = 1) -> None:
        if slots_per_cycle < 1:
            raise ValueError("slots_per_cycle must be >= 1")
        self.timing = timing
        self.slots_per_cycle = slots_per_cycle
        self._used: Dict[int, int] = {}
        self.stats = BusStats()

    def _bus_cycle(self, time: int) -> int:
        return time // self.timing.bus_cycle

    def earliest_slot(self, desired: int) -> int:
        """Earliest time >= desired with a free command slot."""
        cyc = self._bus_cycle(desired)
        while self._used.get(cyc, 0) >= self.slots_per_cycle:
            cyc += 1
        return max(desired, cyc * self.timing.bus_cycle)

    def reserve(self, time: int, n_commands: int = 1) -> None:
        """Consume ``n_commands`` slots in the bus cycle containing ``time``."""
        cyc = self._bus_cycle(time)
        used = self._used.get(cyc, 0)
        if used + n_commands > self.slots_per_cycle:
            raise RuntimeError(f"command bus overflow at bus cycle {cyc}")
        self._used[cyc] = used + n_commands
        self.stats.cmd_busy_cycles += n_commands
        # Prune old entries so the dict stays small.
        if len(self._used) > 4096:
            cutoff = cyc - 2048
            for key in [k for k in self._used if k < cutoff]:
                del self._used[key]


class Channel:
    """A command bus plus one or more data buses (sub-channels).

    The conventional case is one data bus. The aggregated critical-word
    channel instantiates four data buses behind a dual-pumped command bus.
    """

    def __init__(self, timing: TimingSet, num_data_buses: int = 1,
                 cmd_slots_per_cycle: int = 1, index: int = 0) -> None:
        self.timing = timing
        self.index = index
        self.data_buses = [DataBus(timing) for _ in range(num_data_buses)]
        self.cmd_bus = CommandBus(timing, cmd_slots_per_cycle)

    def data_bus(self, sub: int = 0) -> DataBus:
        return self.data_buses[sub]

    def utilization(self, elapsed: int) -> float:
        """Mean data-bus utilisation across sub-channels."""
        if not self.data_buses:
            return 0.0
        return sum(b.utilization(elapsed) for b in self.data_buses) / len(self.data_buses)

    def export_telemetry(self, registry, namespace: str,
                         elapsed_cycles: int) -> None:
        """Publish per-(sub-)bus occupancy gauges under ``namespace``."""
        registry.gauge(f"{namespace}.cmd_busy_cycles").set(
            self.cmd_bus.stats.cmd_busy_cycles)
        for sub, bus in enumerate(self.data_buses):
            bns = f"{namespace}.bus{sub}"
            registry.gauge(f"{bns}.data_busy_cycles").set(
                bus.stats.data_busy_cycles)
            registry.gauge(f"{bns}.reads_transferred").set(
                bus.stats.reads_transferred)
            registry.gauge(f"{bns}.writes_transferred").set(
                bus.stats.writes_transferred)
            registry.gauge(f"{bns}.utilization").set(
                bus.utilization(elapsed_cycles))
