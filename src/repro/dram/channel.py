"""Channel model: shared data bus and address/command bus.

A channel serialises data transfers from its ranks and accounts for bus
turnaround penalties (write-to-read tWTR within a rank, tRTRS between
ranks / between reads and writes back-to-back on the bus).

The command bus is modelled as a slotted resource: ``cmd_slots_per_cycle``
commands may issue per bus clock. The aggregated RLDRAM channel of the
paper (Sec 4.2.4) shares one double-data-rate command bus across four
skinny data sub-channels, i.e. 2 slots per bus cycle feeding 4 data buses
— the data:command utilisation ratio of 4:1 the paper relies on.

Bus objects sit on the per-command issue path, so they are slotted and
keep their turnaround/burst/bus-cycle constants as flat integers resolved
once at construction.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dram.request import RequestKind
from repro.dram.timing import TimingSet


class BusStats:
    """Occupancy accounting for utilisation figures."""

    __slots__ = ("data_busy_cycles", "cmd_busy_cycles",
                 "reads_transferred", "writes_transferred")

    def __init__(self, data_busy_cycles: int = 0, cmd_busy_cycles: int = 0,
                 reads_transferred: int = 0,
                 writes_transferred: int = 0) -> None:
        self.data_busy_cycles = data_busy_cycles
        self.cmd_busy_cycles = cmd_busy_cycles
        self.reads_transferred = reads_transferred
        self.writes_transferred = writes_transferred

    def __repr__(self) -> str:
        return (f"BusStats(data_busy_cycles={self.data_busy_cycles}, "
                f"cmd_busy_cycles={self.cmd_busy_cycles}, "
                f"reads_transferred={self.reads_transferred}, "
                f"writes_transferred={self.writes_transferred})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BusStats):
            return NotImplemented
        return (self.data_busy_cycles == other.data_busy_cycles
                and self.cmd_busy_cycles == other.cmd_busy_cycles
                and self.reads_transferred == other.reads_transferred
                and self.writes_transferred == other.writes_transferred)


class DataBus:
    """One data bus; serialises bursts and applies turnaround gaps."""

    __slots__ = ("timing", "free_at", "last_kind", "last_rank", "stats",
                 "t_burst", "t_rtrs", "t_wtr")

    def __init__(self, timing: TimingSet) -> None:
        self.timing = timing
        self.free_at = 0
        self.last_kind: Optional[RequestKind] = None
        self.last_rank: Optional[int] = None
        self.stats = BusStats()
        self.t_burst = timing.t_burst
        self.t_rtrs = timing.t_rtrs
        self.t_wtr = timing.t_wtr

    def earliest_start(self, desired: int, kind: RequestKind, rank: int) -> int:
        """Earliest time a burst of ``kind`` from ``rank`` may start."""
        free_at = self.free_at
        start = desired if desired > free_at else free_at
        last_kind = self.last_kind
        if last_kind is None:
            return start
        gap = 0
        if self.last_rank is not None and rank != self.last_rank:
            gap = self.t_rtrs
        if kind is RequestKind.READ:
            if last_kind is not RequestKind.READ:
                # Write-to-read turnaround on the shared bus.
                if self.t_wtr > gap:
                    gap = self.t_wtr
        elif last_kind is RequestKind.READ:
            if self.t_rtrs > gap:
                gap = self.t_rtrs
        gapped = free_at + gap
        return gapped if gapped > start else start

    def reserve(self, start: int, kind: RequestKind, rank: int) -> int:
        """Occupy the bus for one burst starting at ``start``; returns end."""
        if start < self.free_at:
            raise RuntimeError(
                f"data bus conflict: start {start} < free_at {self.free_at}")
        end = start + self.t_burst
        self.free_at = end
        self.last_kind = kind
        self.last_rank = rank
        self.stats.data_busy_cycles += self.t_burst
        if kind is RequestKind.READ:
            self.stats.reads_transferred += 1
        else:
            self.stats.writes_transferred += 1
        return end

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus carried data."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.data_busy_cycles / elapsed)


class CommandBus:
    """Slotted address/command bus shared by one or more data buses."""

    __slots__ = ("timing", "slots_per_cycle", "_used", "stats", "bus_cycle")

    def __init__(self, timing: TimingSet, slots_per_cycle: int = 1) -> None:
        if slots_per_cycle < 1:
            raise ValueError("slots_per_cycle must be >= 1")
        self.timing = timing
        self.slots_per_cycle = slots_per_cycle
        self._used: Dict[int, int] = {}
        self.stats = BusStats()
        self.bus_cycle = timing.bus_cycle

    def _bus_cycle(self, time: int) -> int:
        return time // self.bus_cycle

    def earliest_slot(self, desired: int) -> int:
        """Earliest time >= desired with a free command slot."""
        bus_cycle = self.bus_cycle
        cyc = desired // bus_cycle
        used = self._used
        if not used:
            return desired
        slots = self.slots_per_cycle
        get = used.get
        while get(cyc, 0) >= slots:
            cyc += 1
        slot_time = cyc * bus_cycle
        return slot_time if slot_time > desired else desired

    def reserve(self, time: int, n_commands: int = 1) -> None:
        """Consume ``n_commands`` slots in the bus cycle containing ``time``."""
        cyc = time // self.bus_cycle
        used = self._used.get(cyc, 0)
        if used + n_commands > self.slots_per_cycle:
            raise RuntimeError(f"command bus overflow at bus cycle {cyc}")
        self._used[cyc] = used + n_commands
        self.stats.cmd_busy_cycles += n_commands
        # Prune old entries so the dict stays small.
        if len(self._used) > 4096:
            cutoff = cyc - 2048
            for key in [k for k in self._used if k < cutoff]:
                del self._used[key]


class Channel:
    """A command bus plus one or more data buses (sub-channels).

    The conventional case is one data bus. The aggregated critical-word
    channel instantiates four data buses behind a dual-pumped command bus.
    """

    __slots__ = ("timing", "index", "data_buses", "cmd_bus")

    def __init__(self, timing: TimingSet, num_data_buses: int = 1,
                 cmd_slots_per_cycle: int = 1, index: int = 0) -> None:
        self.timing = timing
        self.index = index
        self.data_buses = [DataBus(timing) for _ in range(num_data_buses)]
        self.cmd_bus = CommandBus(timing, cmd_slots_per_cycle)

    def data_bus(self, sub: int = 0) -> DataBus:
        return self.data_buses[sub]

    def utilization(self, elapsed: int) -> float:
        """Mean data-bus utilisation across sub-channels."""
        if not self.data_buses:
            return 0.0
        return sum(b.utilization(elapsed) for b in self.data_buses) / len(self.data_buses)

    def export_telemetry(self, registry, namespace: str,
                         elapsed_cycles: int) -> None:
        """Publish per-(sub-)bus occupancy gauges under ``namespace``."""
        registry.gauge(f"{namespace}.cmd_busy_cycles").set(
            self.cmd_bus.stats.cmd_busy_cycles)
        for sub, bus in enumerate(self.data_buses):
            bns = f"{namespace}.bus{sub}"
            registry.gauge(f"{bns}.data_busy_cycles").set(
                bus.stats.data_busy_cycles)
            registry.gauge(f"{bns}.reads_transferred").set(
                bus.stats.reads_transferred)
            registry.gauge(f"{bns}.writes_transferred").set(
                bus.stats.writes_transferred)
            registry.gauge(f"{bns}.utilization").set(
                bus.utilization(elapsed_cycles))
