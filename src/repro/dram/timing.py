"""DRAM timing parameter sets.

The nanosecond values are taken verbatim from Table 2 of the paper;
parameters the paper leaves blank for RLDRAM3 (tRCD, tRP, tRAS, tFAW) are
zero because RLDRAM3 uses SRAM-style single-command addressing with
automatic precharge — the whole array access is folded into tRC/tRL.

All durations convert to integer CPU cycles via :class:`TimingSet`, which
is what the bank/rank/channel state machines consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.cycles import DEFAULT_CPU_FREQ_GHZ, ns_to_cycles


@dataclass(frozen=True)
class TimingParameters:
    """Device timing in physical units (ns unless noted).

    Attributes mirror standard JEDEC names:

    * ``t_rc`` — bank turnaround: ACT-to-ACT on one bank.
    * ``t_rcd`` — ACT to column command.
    * ``t_rl`` — read latency: column-read to first data beat.
    * ``t_rp`` — precharge period.
    * ``t_ras`` — minimum ACT-to-PRE.
    * ``t_rtrs_bus_cycles`` — rank-to-rank data-bus switch (bus cycles).
    * ``t_faw`` — four-activate window (0 = unrestricted, RLDRAM3).
    * ``t_wtr`` — write-to-read turnaround (same rank).
    * ``t_wl`` — write latency: column-write to first data beat.
    * ``t_refi`` / ``t_rfc`` — refresh interval and refresh cycle time.
    * ``t_rrd`` — ACT-to-ACT across banks of one rank.
    * ``t_ccd_bus_cycles`` — column-to-column gap (bus cycles).
    * ``burst_length`` — beats per column access.
    * ``bus_freq_mhz`` — command/data clock; data is double-pumped.
    """

    name: str
    t_rc: float
    t_rcd: float
    t_rl: float
    t_rp: float
    t_ras: float
    t_rtrs_bus_cycles: int
    t_faw: float
    t_wtr: float
    t_wl: float
    t_refi: float = 7800.0
    t_rfc: float = 160.0
    t_rrd: float = 6.0
    t_ccd_bus_cycles: int = 4
    burst_length: int = 8
    bus_freq_mhz: float = 800.0
    # Power-down entry/exit (ns). LPDDR2's fast transitions are what let
    # the paper put LPDDR2 ranks to sleep aggressively (Sec 6.1.3).
    t_pd_entry: float = 10.0
    t_pd_exit: float = 24.0

    def __post_init__(self) -> None:
        if self.t_rc <= 0 or self.t_rl <= 0:
            raise ValueError(f"{self.name}: t_rc and t_rl must be positive")
        if self.burst_length <= 0 or self.bus_freq_mhz <= 0:
            raise ValueError(f"{self.name}: burst_length/bus_freq must be positive")

    @property
    def bus_cycle_ns(self) -> float:
        """Duration of one bus clock in ns."""
        return 1000.0 / self.bus_freq_mhz

    @property
    def t_burst(self) -> float:
        """Data-bus occupancy of one burst in ns (double data rate)."""
        return (self.burst_length / 2.0) * self.bus_cycle_ns


@dataclass(frozen=True)
class TimingSet:
    """Timing converted to integer CPU cycles for the simulator core."""

    params: TimingParameters
    cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ
    t_rc: int = field(init=False, default=0)
    t_rcd: int = field(init=False, default=0)
    t_rl: int = field(init=False, default=0)
    t_rp: int = field(init=False, default=0)
    t_ras: int = field(init=False, default=0)
    t_rtrs: int = field(init=False, default=0)
    t_faw: int = field(init=False, default=0)
    t_wtr: int = field(init=False, default=0)
    t_wl: int = field(init=False, default=0)
    t_refi: int = field(init=False, default=0)
    t_rfc: int = field(init=False, default=0)
    t_rrd: int = field(init=False, default=0)
    t_ccd: int = field(init=False, default=0)
    t_burst: int = field(init=False, default=0)
    bus_cycle: int = field(init=False, default=0)
    t_pd_entry: int = field(init=False, default=0)
    t_pd_exit: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        p = self.params
        ghz = self.cpu_freq_ghz
        conv = lambda ns: ns_to_cycles(ns, ghz)  # noqa: E731 - local shorthand
        bus_ns = p.bus_cycle_ns
        object.__setattr__(self, "t_rc", conv(p.t_rc))
        object.__setattr__(self, "t_rcd", conv(p.t_rcd))
        object.__setattr__(self, "t_rl", conv(p.t_rl))
        object.__setattr__(self, "t_rp", conv(p.t_rp))
        object.__setattr__(self, "t_ras", conv(p.t_ras))
        object.__setattr__(self, "t_rtrs", conv(p.t_rtrs_bus_cycles * bus_ns))
        object.__setattr__(self, "t_faw", conv(p.t_faw))
        object.__setattr__(self, "t_wtr", conv(p.t_wtr))
        object.__setattr__(self, "t_wl", conv(p.t_wl))
        object.__setattr__(self, "t_refi", conv(p.t_refi))
        object.__setattr__(self, "t_rfc", conv(p.t_rfc))
        object.__setattr__(self, "t_rrd", conv(p.t_rrd))
        object.__setattr__(self, "t_ccd", conv(p.t_ccd_bus_cycles * bus_ns))
        object.__setattr__(self, "t_burst", conv(p.t_burst))
        object.__setattr__(self, "bus_cycle", max(1, conv(bus_ns)))
        object.__setattr__(self, "t_pd_entry", conv(p.t_pd_entry))
        object.__setattr__(self, "t_pd_exit", conv(p.t_pd_exit))


# --- Paper Table 2 presets -------------------------------------------------

DDR3_TIMING = TimingParameters(
    name="DDR3-1600",
    t_rc=50.0, t_rcd=13.5, t_rl=13.5, t_rp=13.5, t_ras=37.0,
    t_rtrs_bus_cycles=2, t_faw=40.0, t_wtr=7.5, t_wl=6.5,
    bus_freq_mhz=800.0,
    t_pd_entry=10.0, t_pd_exit=24.0,
)

LPDDR2_TIMING = TimingParameters(
    name="LPDDR2-800",
    t_rc=60.0, t_rcd=18.0, t_rl=18.0, t_rp=18.0, t_ras=42.0,
    t_rtrs_bus_cycles=2, t_faw=50.0, t_wtr=7.5, t_wl=6.5,
    bus_freq_mhz=400.0,
    # LPDDR2 enters and leaves power-down faster than DDR3, which the
    # paper exploits with an aggressive sleep-transition policy.
    t_pd_entry=7.5, t_pd_exit=15.0,
)

RLDRAM3_TIMING = TimingParameters(
    name="RLDRAM3",
    t_rc=12.0, t_rcd=0.0, t_rl=10.0, t_rp=0.0, t_ras=0.0,
    t_rtrs_bus_cycles=2, t_faw=0.0, t_wtr=0.0, t_wl=11.25,
    t_rrd=1.25,  # no activation-window restrictions (Sec 2.3)
    bus_freq_mhz=800.0,
    # RLDRAM trades power management for latency; make power-down slow
    # enough that the controller effectively never uses it.
    t_pd_entry=100.0, t_pd_exit=200.0,
)

TIMING_PRESETS = {
    "ddr3": DDR3_TIMING,
    "lpddr2": LPDDR2_TIMING,
    "rldram3": RLDRAM3_TIMING,
}
