"""Physical address mapping.

Two interleaving schemes, following the paper's methodology section:

* ``OPEN_PAGE`` — row-interleaved mapping from Jacob et al. that maximises
  row-buffer hits: consecutive cache lines fall in the same row, and the
  channel/rank/bank bits sit just above the column bits so that streams
  still spread across channels at row granularity.
  Layout (LSB first):  line-offset | column | channel | rank | bank | row
* ``CLOSE_PAGE`` — cache-line interleaved, for close-page parts (RLDRAM):
  consecutive lines round-robin across channels, then banks, maximising
  bank-level parallelism.
  Layout (LSB first):  line-offset | channel | bank | rank | column | row
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.device import DeviceConfig
from repro.dram.request import LINE_BYTES, DecodedAddress


class MappingScheme(enum.Enum):
    OPEN_PAGE = "open_page"
    CLOSE_PAGE = "close_page"


def _bits_for(n: int) -> int:
    """log2 of an exact power of two."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


@dataclass(frozen=True)
class AddressMapper:
    """Decompose a physical byte address into channel/rank/bank/row/col.

    ``lines_per_row`` is derived from the rank's effective row size: a
    rank of N chips each with a ``row_size_bytes`` page holds
    ``N * row_size_bytes`` bytes per row.
    """

    device: DeviceConfig
    num_channels: int
    ranks_per_channel: int
    devices_per_rank: int
    scheme: MappingScheme

    def __post_init__(self) -> None:
        # Decomposition uses divmod, so non-power-of-two channel counts
        # (e.g. the 3-channel LPDDR2 side of the Sec 7.1 page-placement
        # system) are fine; only positivity is required.
        for name, val in (("num_channels", self.num_channels),
                          ("ranks_per_channel", self.ranks_per_channel),
                          ("devices_per_rank", self.devices_per_rank)):
            if val <= 0:
                raise ValueError(f"{name} must be positive, got {val}")

    @property
    def row_bytes(self) -> int:
        return self.device.row_size_bytes * self.devices_per_rank

    @property
    def lines_per_row(self) -> int:
        return max(1, self.row_bytes // LINE_BYTES)

    @property
    def capacity_bytes(self) -> int:
        return (self.device.capacity_bytes * self.devices_per_rank
                * self.ranks_per_channel * self.num_channels)

    def decode(self, address: int) -> DecodedAddress:
        line = address // LINE_BYTES
        if self.scheme is MappingScheme.OPEN_PAGE:
            return self._decode_open(line)
        return self._decode_close(line)

    def _decode_open(self, line: int) -> DecodedAddress:
        rest, column = divmod(line, self.lines_per_row)
        rest, channel = divmod(rest, self.num_channels)
        rest, rank = divmod(rest, self.ranks_per_channel)
        rest, bank = divmod(rest, self.device.num_banks)
        row = rest % self.device.num_rows
        return DecodedAddress(channel=channel, rank=rank, bank=bank,
                              row=row, column=column)

    def _decode_close(self, line: int) -> DecodedAddress:
        rest, channel = divmod(line, self.num_channels)
        rest, bank = divmod(rest, self.device.num_banks)
        rest, rank = divmod(rest, self.ranks_per_channel)
        rest, column = divmod(rest, self.lines_per_row)
        row = rest % self.device.num_rows
        return DecodedAddress(channel=channel, rank=rank, bank=bank,
                              row=row, column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (returns the line's base address)."""
        if self.scheme is MappingScheme.OPEN_PAGE:
            line = decoded.row
            line = line * self.device.num_banks + decoded.bank
            line = line * self.ranks_per_channel + decoded.rank
            line = line * self.num_channels + decoded.channel
            line = line * self.lines_per_row + decoded.column
        else:
            line = decoded.row
            line = line * self.lines_per_row + decoded.column
            line = line * self.ranks_per_channel + decoded.rank
            line = line * self.device.num_banks + decoded.bank
            line = line * self.num_channels + decoded.channel
        return line * LINE_BYTES
