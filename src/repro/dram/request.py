"""Memory request records exchanged between the CPU side and controllers.

Both record types are slotted plain classes rather than dataclasses:
one :class:`MemoryRequest` (plus a :class:`DecodedAddress`) is allocated
per DRAM access, and the controller touches its fields on every
scheduling tick, so avoiding per-instance ``__dict__`` allocation and
generated-method dispatch is a measurable kernel win. ``is_read`` is
frozen to a plain attribute at construction for the same reason.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

WORDS_PER_LINE = 8
WORD_BYTES = 8
LINE_BYTES = WORDS_PER_LINE * WORD_BYTES


class RequestIdAllocator:
    """Process-wide request-id counter with an inspectable position.

    Request ids break FR-FCFS arrival-time ties, so the id stream is
    part of simulation determinism. Unlike ``itertools.count`` the
    position can be read out and restored, which is what lets a resumed
    checkpoint hand out the same ids an uninterrupted run would have.
    """

    __slots__ = ("next_id",)

    def __init__(self, next_id: int = 0) -> None:
        self.next_id = next_id

    def allocate(self) -> int:
        value = self.next_id
        self.next_id = value + 1
        return value


_request_ids = RequestIdAllocator()


def request_id_allocator() -> RequestIdAllocator:
    """The process-wide allocator (checkpoint save/restore handle)."""
    return _request_ids


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class DecodedAddress:
    """Physical address decomposed by an :class:`AddressMapper`."""

    __slots__ = ("channel", "rank", "bank", "row", "column")

    def __init__(self, channel: int, rank: int, bank: int, row: int,
                 column: int) -> None:
        self.channel = channel
        self.rank = rank
        self.bank = bank
        self.row = row
        self.column = column

    def __repr__(self) -> str:
        return (f"DecodedAddress(channel={self.channel}, rank={self.rank}, "
                f"bank={self.bank}, row={self.row}, column={self.column})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecodedAddress):
            return NotImplemented
        return (self.channel == other.channel and self.rank == other.rank
                and self.bank == other.bank and self.row == other.row
                and self.column == other.column)

    def __hash__(self) -> int:
        return hash((self.channel, self.rank, self.bank, self.row,
                     self.column))


class MemoryRequest:
    """One cache-line-granularity DRAM access.

    ``critical_word`` is the word (0-7) the CPU actually asked for; the
    controller reorders the burst so it is transferred first (conventional
    CWF) and the heterogeneous system uses it to decide whether the
    RLDRAM part can serve the wake-up.

    Completion is signalled through two callbacks:

    * ``on_critical_word(time)`` — the requested word is at the CPU.
    * ``on_complete(time)`` — the whole line transfer is done.
    """

    __slots__ = (
        "kind", "address", "critical_word", "is_prefetch", "core_id",
        "arrival_time", "request_id", "decoded", "on_critical_word",
        "on_complete", "first_command_time", "data_start_time",
        "critical_word_time", "completion_time", "promoted", "is_read",
    )

    def __init__(self, kind: RequestKind, address: int,
                 critical_word: int = 0, is_prefetch: bool = False,
                 core_id: int = 0, arrival_time: int = 0,
                 request_id: Optional[int] = None,
                 decoded: Optional[DecodedAddress] = None,
                 on_critical_word: Optional[Callable[[int], None]] = None,
                 on_complete: Optional[Callable[[int], None]] = None) -> None:
        if not 0 <= critical_word < WORDS_PER_LINE:
            raise ValueError(f"critical_word must be 0..7, got {critical_word}")
        if address < 0:
            raise ValueError("address must be non-negative")
        self.kind = kind
        self.address = address
        self.critical_word = critical_word
        self.is_prefetch = is_prefetch
        self.core_id = core_id
        self.arrival_time = arrival_time
        self.request_id = (_request_ids.allocate() if request_id is None
                           else request_id)
        self.decoded = decoded
        self.on_critical_word = on_critical_word
        self.on_complete = on_complete
        # --- set by the controller as the request moves through ---
        self.first_command_time: Optional[int] = None
        self.data_start_time: Optional[int] = None
        self.critical_word_time: Optional[int] = None
        self.completion_time: Optional[int] = None
        # Promotion flag: an aged prefetch is treated as a demand (Sec 5).
        self.promoted = False
        self.is_read = kind is RequestKind.READ

    def __repr__(self) -> str:
        return (f"MemoryRequest(kind={self.kind}, address={self.address:#x}, "
                f"critical_word={self.critical_word}, "
                f"is_prefetch={self.is_prefetch}, core_id={self.core_id}, "
                f"request_id={self.request_id})")

    @property
    def line_address(self) -> int:
        return self.address // LINE_BYTES

    @property
    def queue_latency(self) -> Optional[int]:
        """Cycles the request waited before its first DRAM command."""
        if self.first_command_time is None:
            return None
        return self.first_command_time - self.arrival_time

    @property
    def core_latency(self) -> Optional[int]:
        """Cycles from first DRAM command to critical word delivery."""
        if self.first_command_time is None or self.critical_word_time is None:
            return None
        return self.critical_word_time - self.first_command_time

    @property
    def total_latency(self) -> Optional[int]:
        if self.critical_word_time is None:
            return None
        return self.critical_word_time - self.arrival_time
