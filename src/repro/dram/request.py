"""Memory request records exchanged between the CPU side and controllers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

WORDS_PER_LINE = 8
WORD_BYTES = 8
LINE_BYTES = WORDS_PER_LINE * WORD_BYTES

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class DecodedAddress:
    """Physical address decomposed by an :class:`AddressMapper`."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


@dataclass
class MemoryRequest:
    """One cache-line-granularity DRAM access.

    ``critical_word`` is the word (0-7) the CPU actually asked for; the
    controller reorders the burst so it is transferred first (conventional
    CWF) and the heterogeneous system uses it to decide whether the
    RLDRAM part can serve the wake-up.

    Completion is signalled through two callbacks:

    * ``on_critical_word(time)`` — the requested word is at the CPU.
    * ``on_complete(time)`` — the whole line transfer is done.
    """

    kind: RequestKind
    address: int
    critical_word: int = 0
    is_prefetch: bool = False
    core_id: int = 0
    arrival_time: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    decoded: Optional[DecodedAddress] = None
    on_critical_word: Optional[Callable[[int], None]] = None
    on_complete: Optional[Callable[[int], None]] = None

    # --- set by the controller as the request moves through ---
    first_command_time: Optional[int] = None
    data_start_time: Optional[int] = None
    critical_word_time: Optional[int] = None
    completion_time: Optional[int] = None
    # Promotion flag: an aged prefetch is treated as a demand (Sec 5).
    promoted: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.critical_word < WORDS_PER_LINE:
            raise ValueError(f"critical_word must be 0..7, got {self.critical_word}")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    @property
    def line_address(self) -> int:
        return self.address // LINE_BYTES

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def queue_latency(self) -> Optional[int]:
        """Cycles the request waited before its first DRAM command."""
        if self.first_command_time is None:
            return None
        return self.first_command_time - self.arrival_time

    @property
    def core_latency(self) -> Optional[int]:
        """Cycles from first DRAM command to critical word delivery."""
        if self.first_command_time is None or self.critical_word_time is None:
            return None
        return self.critical_word_time - self.first_command_time

    @property
    def total_latency(self) -> Optional[int]:
        if self.critical_word_time is None:
            return None
        return self.critical_word_time - self.arrival_time
