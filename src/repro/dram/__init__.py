"""DRAM substrate: device models, banks/ranks/channels, controllers, power.

The three device families modelled are the ones the paper evaluates
(Section 2, Table 2):

* **DDR3** — Micron MT41J256M8, DDR3-1600, x8, 2 Gb, 8 banks.
* **LPDDR2** — Micron MT42L128M16D1 at 400 MHz, 8 banks, low power.
* **RLDRAM3** — Micron MT44K32M18: 16 banks, tRC of 12 ns, SRAM-style
  single READ/WRITE command with auto-precharge (close-page only).
"""

from repro.dram.timing import TimingParameters, DDR3_TIMING, LPDDR2_TIMING, RLDRAM3_TIMING
from repro.dram.device import DeviceConfig, DRAMKind, DDR3_DEVICE, LPDDR2_DEVICE, RLDRAM3_DEVICE
from repro.dram.request import MemoryRequest, RequestKind
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.controller import MemoryController, ControllerConfig
from repro.dram.channel import Channel
from repro.dram.power import PowerModel, ChipActivity, IddCurrents

__all__ = [
    "TimingParameters", "DDR3_TIMING", "LPDDR2_TIMING", "RLDRAM3_TIMING",
    "DeviceConfig", "DRAMKind", "DDR3_DEVICE", "LPDDR2_DEVICE", "RLDRAM3_DEVICE",
    "MemoryRequest", "RequestKind",
    "AddressMapper", "MappingScheme",
    "MemoryController", "ControllerConfig", "Channel",
    "PowerModel", "ChipActivity", "IddCurrents",
]
