"""Per-bank DRAM state machine.

The bank tracks its open row and the earliest CPU-cycle times at which
each command class may legally be issued to it (ACT / column read /
column write / PRE), derived from the device timing set. The scheduler
asks ``can_*`` questions and the bank updates its horizon when a command
is actually issued.

RLDRAM3 banks use ``access()`` instead of the ACT/READ/PRE sequence: a
single command performs the whole array access and auto-precharges,
occupying the bank for tRC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.timing import TimingSet

FAR_FUTURE = 1 << 62


class BankState(enum.Enum):
    IDLE = "idle"          # precharged, no open row
    ACTIVE = "active"      # a row is open


@dataclass
class Bank:
    """One DRAM bank's timing state."""

    timing: TimingSet
    index: int = 0
    state: BankState = BankState.IDLE
    open_row: Optional[int] = None
    # Earliest legal issue times (CPU cycles).
    next_activate: int = 0
    next_read: int = FAR_FUTURE
    next_write: int = FAR_FUTURE
    next_precharge: int = 0
    # Statistics.
    activate_count: int = 0
    read_count: int = 0
    write_count: int = 0
    row_hit_count: int = 0
    last_activate_time: int = field(default=-(1 << 62))
    last_use: int = 0  # last command touching this bank (idle-close timer)

    def is_row_hit(self, row: int) -> bool:
        return self.state is BankState.ACTIVE and self.open_row == row

    def telemetry_items(self) -> dict:
        """End-of-run counters for the telemetry exporter."""
        return {
            "act_count": self.activate_count,
            "read_count": self.read_count,
            "write_count": self.write_count,
            "row_hit_count": self.row_hit_count,
        }

    # --- DDR-style command application -------------------------------

    def can_activate(self, now: int) -> bool:
        return self.state is BankState.IDLE and now >= self.next_activate

    def activate(self, now: int, row: int) -> None:
        """Open ``row``; column commands legal after tRCD."""
        if not self.can_activate(now):
            raise RuntimeError(
                f"bank {self.index}: illegal ACT at {now} "
                f"(state={self.state}, next_activate={self.next_activate})")
        t = self.timing
        self.state = BankState.ACTIVE
        self.open_row = row
        self.next_read = now + t.t_rcd
        self.next_write = now + t.t_rcd
        self.next_precharge = now + t.t_ras
        self.next_activate = now + t.t_rc
        self.activate_count += 1
        self.last_activate_time = now
        self.last_use = now

    def can_read(self, now: int, row: int) -> bool:
        return self.is_row_hit(row) and now >= self.next_read

    def column_read(self, now: int) -> int:
        """Issue a column read; returns the time data starts on the bus."""
        t = self.timing
        if self.state is not BankState.ACTIVE or now < self.next_read:
            raise RuntimeError(f"bank {self.index}: illegal READ at {now}")
        self.next_read = max(self.next_read, now + t.t_ccd)
        self.next_write = max(self.next_write, now + t.t_ccd)
        # Reading delays how soon the row may close (read-to-precharge).
        self.next_precharge = max(self.next_precharge, now + t.t_ccd)
        self.read_count += 1
        self.last_use = now
        return now + t.t_rl

    def column_write(self, now: int) -> int:
        """Issue a column write; returns the time data starts on the bus."""
        t = self.timing
        if self.state is not BankState.ACTIVE or now < self.next_write:
            raise RuntimeError(f"bank {self.index}: illegal WRITE at {now}")
        self.next_read = max(self.next_read, now + t.t_ccd)
        self.next_write = max(self.next_write, now + t.t_ccd)
        # Write recovery before precharge: model as WL + burst + tWTR.
        recovery = t.t_wl + t.t_burst + t.t_wtr
        self.next_precharge = max(self.next_precharge, now + recovery)
        self.write_count += 1
        self.last_use = now
        return now + t.t_wl

    def can_precharge(self, now: int) -> bool:
        return self.state is BankState.ACTIVE and now >= self.next_precharge

    def precharge(self, now: int) -> None:
        if not self.can_precharge(now):
            raise RuntimeError(f"bank {self.index}: illegal PRE at {now}")
        t = self.timing
        self.state = BankState.IDLE
        self.open_row = None
        self.next_activate = max(self.next_activate, now + t.t_rp)
        self.next_read = FAR_FUTURE
        self.next_write = FAR_FUTURE

    # --- RLDRAM-style unified access ----------------------------------

    def can_access(self, now: int) -> bool:
        """SRAM-style READ/WRITE legality: bank free (tRC elapsed)."""
        return now >= self.next_activate

    def access(self, now: int, is_write: bool) -> int:
        """Unified close-page access with auto-precharge.

        Occupies the bank for tRC; returns time data appears on the bus.
        For RLDRAM (tRCD = 0, SRAM-style addressing) data appears after
        tRL/tWL; a DDR-style part used close-page still pays its row
        activation (tRCD) before the column access.
        """
        t = self.timing
        if not self.can_access(now):
            raise RuntimeError(f"bank {self.index}: illegal ACCESS at {now}")
        self.next_activate = now + max(t.t_rc, t.t_rcd + t.t_rp)
        self.activate_count += 1
        self.last_activate_time = now
        self.last_use = now
        if is_write:
            self.write_count += 1
            return now + t.t_rcd + t.t_wl
        self.read_count += 1
        return now + t.t_rcd + t.t_rl

    # --- Refresh -------------------------------------------------------

    def refresh_block(self, now: int, until: int) -> None:
        """Block the bank until ``until`` for a refresh cycle."""
        if self.state is BankState.ACTIVE:
            # Controller must have precharged first; be forgiving in the
            # model and force-close the row.
            self.state = BankState.IDLE
            self.open_row = None
            self.next_read = FAR_FUTURE
            self.next_write = FAR_FUTURE
        self.next_activate = max(self.next_activate, until)
