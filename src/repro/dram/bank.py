"""Per-bank DRAM state machine.

The bank tracks its open row and the earliest CPU-cycle times at which
each command class may legally be issued to it (ACT / column read /
column write / PRE), derived from the device timing set. The scheduler
asks ``can_*`` questions and the bank updates its horizon when a command
is actually issued.

RLDRAM3 banks use ``access()`` instead of the ACT/READ/PRE sequence: a
single command performs the whole array access and auto-precharges,
occupying the bank for tRC.

The timing constraints each command consumes (tRCD/tRAS/tRC/tCCD, the
write-recovery window, the close-page occupancy and data latencies) are
flattened to integer attributes at construction: the command-application
methods run on every DRAM transaction, and chasing them through the
shared :class:`TimingSet` on each call costs more than the state update
itself. The class is slotted for the same reason — a simulation holds
hundreds of banks and touches them millions of times.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.dram.timing import TimingSet

FAR_FUTURE = 1 << 62


class BankState(enum.Enum):
    IDLE = "idle"          # precharged, no open row
    ACTIVE = "active"      # a row is open


class Bank:
    """One DRAM bank's timing state."""

    __slots__ = (
        "timing", "index", "owner", "state", "open_row",
        "next_activate", "next_read", "next_write", "next_precharge",
        "activate_count", "read_count", "write_count", "row_hit_count",
        "last_activate_time", "last_use",
        # Precomputed per-command timing constraints (CPU cycles).
        "t_rcd", "t_ras", "t_rc", "t_rp", "t_ccd", "t_rl", "t_wl",
        "_write_recovery", "_access_occupancy", "_access_read_latency",
        "_access_write_latency",
    )

    def __init__(self, timing: TimingSet, index: int = 0) -> None:
        self.timing = timing
        self.index = index
        # Owning rank, set by Rank.__init__: state transitions keep the
        # rank's open-bank count current so rank-wide "any bank open?"
        # questions (power management, refresh) are O(1) instead of a
        # per-call scan. None for standalone banks (unit tests).
        self.owner = None
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        # Earliest legal issue times (CPU cycles).
        self.next_activate = 0
        self.next_read = FAR_FUTURE
        self.next_write = FAR_FUTURE
        self.next_precharge = 0
        # Statistics.
        self.activate_count = 0
        self.read_count = 0
        self.write_count = 0
        self.row_hit_count = 0
        self.last_activate_time = -(1 << 62)
        self.last_use = 0  # last command touching this bank (idle-close timer)
        # Flat timing-constraint table.
        self.t_rcd = timing.t_rcd
        self.t_ras = timing.t_ras
        self.t_rc = timing.t_rc
        self.t_rp = timing.t_rp
        self.t_ccd = timing.t_ccd
        self.t_rl = timing.t_rl
        self.t_wl = timing.t_wl
        # Write recovery before precharge: WL + burst + tWTR.
        self._write_recovery = timing.t_wl + timing.t_burst + timing.t_wtr
        # Close-page single-command access: the bank is busy for tRC (a
        # DDR-style part used close-page still pays tRCD + tRP).
        self._access_occupancy = max(timing.t_rc, timing.t_rcd + timing.t_rp)
        self._access_read_latency = timing.t_rcd + timing.t_rl
        self._access_write_latency = timing.t_rcd + timing.t_wl

    def is_row_hit(self, row: int) -> bool:
        return self.state is BankState.ACTIVE and self.open_row == row

    def telemetry_items(self) -> dict:
        """End-of-run counters for the telemetry exporter."""
        return {
            "act_count": self.activate_count,
            "read_count": self.read_count,
            "write_count": self.write_count,
            "row_hit_count": self.row_hit_count,
        }

    # --- DDR-style command application -------------------------------

    def can_activate(self, now: int) -> bool:
        return self.state is BankState.IDLE and now >= self.next_activate

    def activate(self, now: int, row: int) -> None:
        """Open ``row``; column commands legal after tRCD."""
        if not self.can_activate(now):
            raise RuntimeError(
                f"bank {self.index}: illegal ACT at {now} "
                f"(state={self.state}, next_activate={self.next_activate})")
        self.state = BankState.ACTIVE
        owner = self.owner
        if owner is not None:
            owner.open_banks += 1
        self.open_row = row
        self.next_read = now + self.t_rcd
        self.next_write = now + self.t_rcd
        self.next_precharge = now + self.t_ras
        self.next_activate = now + self.t_rc
        self.activate_count += 1
        self.last_activate_time = now
        self.last_use = now

    def can_read(self, now: int, row: int) -> bool:
        return self.is_row_hit(row) and now >= self.next_read

    def column_read(self, now: int) -> int:
        """Issue a column read; returns the time data starts on the bus."""
        if self.state is not BankState.ACTIVE or now < self.next_read:
            raise RuntimeError(f"bank {self.index}: illegal READ at {now}")
        next_col = now + self.t_ccd
        if next_col > self.next_read:
            self.next_read = next_col
        if next_col > self.next_write:
            self.next_write = next_col
        # Reading delays how soon the row may close (read-to-precharge).
        if next_col > self.next_precharge:
            self.next_precharge = next_col
        self.read_count += 1
        self.last_use = now
        return now + self.t_rl

    def column_write(self, now: int) -> int:
        """Issue a column write; returns the time data starts on the bus."""
        if self.state is not BankState.ACTIVE or now < self.next_write:
            raise RuntimeError(f"bank {self.index}: illegal WRITE at {now}")
        next_col = now + self.t_ccd
        if next_col > self.next_read:
            self.next_read = next_col
        if next_col > self.next_write:
            self.next_write = next_col
        recovery = now + self._write_recovery
        if recovery > self.next_precharge:
            self.next_precharge = recovery
        self.write_count += 1
        self.last_use = now
        return now + self.t_wl

    def can_precharge(self, now: int) -> bool:
        return self.state is BankState.ACTIVE and now >= self.next_precharge

    def precharge(self, now: int) -> None:
        if not self.can_precharge(now):
            raise RuntimeError(f"bank {self.index}: illegal PRE at {now}")
        self.state = BankState.IDLE
        owner = self.owner
        if owner is not None:
            owner.open_banks -= 1
        self.open_row = None
        ready = now + self.t_rp
        if ready > self.next_activate:
            self.next_activate = ready
        self.next_read = FAR_FUTURE
        self.next_write = FAR_FUTURE

    # --- RLDRAM-style unified access ----------------------------------

    def can_access(self, now: int) -> bool:
        """SRAM-style READ/WRITE legality: bank free (tRC elapsed)."""
        return now >= self.next_activate

    def access(self, now: int, is_write: bool) -> int:
        """Unified close-page access with auto-precharge.

        Occupies the bank for tRC; returns time data appears on the bus.
        For RLDRAM (tRCD = 0, SRAM-style addressing) data appears after
        tRL/tWL; a DDR-style part used close-page still pays its row
        activation (tRCD) before the column access.
        """
        if now < self.next_activate:
            raise RuntimeError(f"bank {self.index}: illegal ACCESS at {now}")
        self.next_activate = now + self._access_occupancy
        self.activate_count += 1
        self.last_activate_time = now
        self.last_use = now
        if is_write:
            self.write_count += 1
            return now + self._access_write_latency
        self.read_count += 1
        return now + self._access_read_latency

    # --- Refresh -------------------------------------------------------

    def refresh_block(self, now: int, until: int) -> None:
        """Block the bank until ``until`` for a refresh cycle."""
        if self.state is BankState.ACTIVE:
            # Controller must have precharged first; be forgiving in the
            # model and force-close the row.
            self.state = BankState.IDLE
            owner = self.owner
            if owner is not None:
                owner.open_banks -= 1
            self.open_row = None
            self.next_read = FAR_FUTURE
            self.next_write = FAR_FUTURE
        if until > self.next_activate:
            self.next_activate = until
