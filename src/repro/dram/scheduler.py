"""Scheduling policy for the memory controller.

``FR_FCFS`` (the paper's policy for DDR3/LPDDR2): column-ready row hits
first, then first-come-first-served progress on the oldest request.
``FCFS`` is kept as an ablation point.

Demand requests outrank prefetches unless a prefetch has aged past the
promotion threshold (paper Sec 5), at which point it competes as a demand.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Tuple

from repro.dram.request import MemoryRequest


class SchedulingPolicy(enum.Enum):
    FR_FCFS = "fr_fcfs"
    FCFS = "fcfs"


def priority_key(req: MemoryRequest) -> Tuple[int, int, int]:
    """Lower sorts first: demands/promoted prefetches, then oldest."""
    demand_class = 0 if (not req.is_prefetch or req.promoted) else 1
    return (demand_class, req.arrival_time, req.request_id)


def promote_aged_prefetches(queue: Iterable[MemoryRequest], now: int,
                            age_threshold: int) -> int:
    """Promote prefetches older than ``age_threshold``; returns count."""
    promoted = 0
    for req in queue:
        if req.is_prefetch and not req.promoted:
            if now - req.arrival_time >= age_threshold:
                req.promoted = True
                promoted += 1
    return promoted


def select_row_hit(queue: List[MemoryRequest],
                   is_cas_ready) -> Optional[MemoryRequest]:
    """FR step: the best request whose CAS could issue right now."""
    best: Optional[MemoryRequest] = None
    best_key: Optional[Tuple[int, int, int]] = None
    for req in queue:
        if not is_cas_ready(req):
            continue
        key = priority_key(req)
        if best_key is None or key < best_key:
            best, best_key = req, key
    return best


def select_oldest(queue: List[MemoryRequest]) -> Optional[MemoryRequest]:
    """FCFS step: highest-priority oldest request."""
    best: Optional[MemoryRequest] = None
    best_key: Optional[Tuple[int, int, int]] = None
    for req in queue:
        key = priority_key(req)
        if best_key is None or key < best_key:
            best, best_key = req, key
    return best
