"""Micron power-calculator-style DRAM chip power model.

The paper (Section 5, "Power Modeling") feeds simulator activity factors
into the Micron DRAM power calculators. This module implements the same
methodology:

* **Background** power from IDD currents weighted by the rank's power
  state residency (active standby / precharge standby / power-down /
  self-refresh).
* **Activate/precharge** energy per ACT command,
  ``E_act = VDD * (IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC - tRAS))``.
* **Read/write burst** power proportional to data-bus utilisation,
  ``(IDD4R - IDD3N) * VDD`` while reading.
* **Refresh** power ``(IDD5 - IDD2N) * VDD * tRFC / tREFI``.
* **I/O and termination** — output-driver power while driving reads,
  ODT power while receiving writes, plus static adders for the DLL and
  ODT that the paper adds to make LPDDR2 server-grade (Sec 4.1).

Current values follow the Micron datasheets for the three parts; the
LPDDR2 model implements the paper's conservative adjustment: when
``server_adapted`` the idle-state currents are raised to DDR3 levels to
pay for the added DLL, and static ODT power is charged. The Malladi-style
unterminated variant (Sec 7.2) switches both adders off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.device import DRAMKind
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class IddCurrents:
    """Datasheet currents (mA) and supply voltage (V) for one chip."""

    vdd: float
    idd0: float      # one-bank ACT-PRE cycling
    idd2p: float     # precharge power-down
    idd2n: float     # precharge standby
    idd3p: float     # active power-down
    idd3n: float     # active standby
    idd4r: float     # burst read
    idd4w: float     # burst write
    idd5: float      # burst refresh
    idd6: float      # self refresh

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.idd4r < self.idd3n or self.idd4w < self.idd3n:
            raise ValueError("burst currents must exceed active standby")


@dataclass(frozen=True)
class IOPower:
    """I/O & termination power (mW per chip at 100 % bus utilisation)."""

    read_drive_mw: float        # output drivers while driving read data
    write_termination_mw: float  # ODT sink while receiving write data
    static_odt_mw: float = 0.0  # standing termination power
    static_dll_mw: float = 0.0  # DLL idle power


# --- Datasheet presets ------------------------------------------------------

DDR3_CURRENTS = IddCurrents(
    vdd=1.5,
    idd0=90.0, idd2p=12.0, idd2n=42.0, idd3p=35.0, idd3n=52.0,
    idd4r=160.0, idd4w=165.0, idd5=200.0, idd6=12.0,
)

# Native LPDDR2 currents (1.2 V core, low-swing unterminated I/O,
# much lower standby and array energy than DDR3).
LPDDR2_NATIVE_CURRENTS = IddCurrents(
    vdd=1.2,
    idd0=35.0, idd2p=1.8, idd2n=18.0, idd3p=5.0, idd3n=22.0,
    idd4r=95.0, idd4w=100.0, idd5=110.0, idd6=1.5,
)

# RLDRAM3: small fast arrays, no power-down modes, heavy background
# consumption (Fig 2's high flat floor — ~4x the DDR3 idle power).
RLDRAM3_CURRENTS = IddCurrents(
    vdd=1.35,
    idd0=375.0, idd2p=125.0, idd2n=125.0, idd3p=125.0, idd3n=140.0,
    idd4r=400.0, idd4w=400.0, idd5=320.0, idd6=125.0,
)

DDR3_IO = IOPower(read_drive_mw=78.0, write_termination_mw=92.0,
                  static_odt_mw=10.0, static_dll_mw=12.0)
LPDDR2_NATIVE_IO = IOPower(read_drive_mw=30.0, write_termination_mw=24.0)
RLDRAM3_IO = IOPower(read_drive_mw=95.0, write_termination_mw=105.0,
                     static_odt_mw=6.0, static_dll_mw=6.0)


_DLL_IDLE_MA = 6.0  # standby adder for the always-on DLL


def lpddr2_server_currents() -> IddCurrents:
    """LPDDR2 with the paper's server adaptation.

    The DLL consumes power whenever the chip is idle, so idle-state
    (power-down) currents rise to the DDR3 values (the paper: "we assume
    that an LPDDR2 chip consumes the same amount of current that a DDR3
    chip does in idle state") and standby currents gain a DLL adder.
    Dynamic currents stay native; ``idd0`` rises with ``idd3n`` so the
    per-ACT energy is unchanged by the adaptation.
    """
    n = LPDDR2_NATIVE_CURRENTS
    return replace(n,
                   idd2p=DDR3_CURRENTS.idd2p,
                   idd3p=DDR3_CURRENTS.idd3p,
                   idd2n=n.idd2n + _DLL_IDLE_MA,
                   idd3n=n.idd3n + _DLL_IDLE_MA,
                   idd0=n.idd0 + _DLL_IDLE_MA,
                   idd6=n.idd6 + _DLL_IDLE_MA * 0.5)


LPDDR2_SERVER_IO = IOPower(read_drive_mw=34.0, write_termination_mw=40.0,
                           static_odt_mw=8.0, static_dll_mw=8.0)


@dataclass
class ChipActivity:
    """Per-chip activity factors collected from the simulator."""

    elapsed_ns: float
    activates: int = 0
    reads: int = 0
    writes: int = 0
    read_bus_ns: float = 0.0       # time this chip drove read data
    write_bus_ns: float = 0.0      # time this chip received write data
    active_standby_ns: float = 0.0
    precharge_standby_ns: float = 0.0
    power_down_ns: float = 0.0
    self_refresh_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.elapsed_ns <= 0:
            raise ValueError("elapsed_ns must be positive")

    @property
    def bus_utilization(self) -> float:
        return min(1.0, (self.read_bus_ns + self.write_bus_ns) / self.elapsed_ns)


@dataclass
class ChipPowerBreakdown:
    """Average power (mW) of one chip over the measured interval."""

    background_mw: float = 0.0
    activate_mw: float = 0.0
    read_mw: float = 0.0
    write_mw: float = 0.0
    refresh_mw: float = 0.0
    io_term_mw: float = 0.0
    static_mw: float = 0.0

    @property
    def total_mw(self) -> float:
        return (self.background_mw + self.activate_mw + self.read_mw
                + self.write_mw + self.refresh_mw + self.io_term_mw
                + self.static_mw)

    def energy_nj(self, elapsed_ns: float) -> float:
        """Energy over the interval in nanojoules (mW * ns = pJ / 1000)."""
        return self.total_mw * elapsed_ns / 1000.0


class PowerModel:
    """Computes chip power from activity factors for one device family."""

    def __init__(self, kind: DRAMKind, timing: TimingParameters,
                 currents: IddCurrents, io: IOPower,
                 refresh_enabled: bool = True) -> None:
        self.kind = kind
        self.timing = timing
        self.currents = currents
        self.io = io
        self.refresh_enabled = refresh_enabled

    # -- per-event energies ------------------------------------------------

    @property
    def activate_energy_nj(self) -> float:
        """Energy of one ACT-PRE pair beyond background, in nJ."""
        c = self.currents
        t = self.timing
        t_ras = t.t_ras if t.t_ras > 0 else t.t_rc
        # mA * V * ns = pJ; /1000 -> nJ.
        pj = c.vdd * (c.idd0 * t.t_rc - c.idd3n * t_ras
                      - c.idd2n * (t.t_rc - t_ras))
        return max(0.0, pj / 1000.0)

    def compute(self, activity: ChipActivity) -> ChipPowerBreakdown:
        """Average chip power over ``activity.elapsed_ns``."""
        c = self.currents
        elapsed = activity.elapsed_ns
        out = ChipPowerBreakdown()

        # Background: residency-weighted IDD. Un-tallied time counts as
        # precharge standby.
        tallied = (activity.active_standby_ns + activity.precharge_standby_ns
                   + activity.power_down_ns + activity.self_refresh_ns)
        slack = max(0.0, elapsed - tallied)
        bg_pj = c.vdd * (
            c.idd3n * activity.active_standby_ns
            + c.idd2n * (activity.precharge_standby_ns + slack)
            + c.idd2p * activity.power_down_ns
            + c.idd6 * activity.self_refresh_ns)
        out.background_mw = bg_pj / elapsed

        out.activate_mw = activity.activates * self.activate_energy_nj * 1000.0 / elapsed

        read_util = min(1.0, activity.read_bus_ns / elapsed)
        write_util = min(1.0, activity.write_bus_ns / elapsed)
        out.read_mw = (c.idd4r - c.idd3n) * c.vdd * read_util
        out.write_mw = (c.idd4w - c.idd3n) * c.vdd * write_util

        if self.refresh_enabled:
            out.refresh_mw = ((c.idd5 - c.idd2n) * c.vdd
                              * self.timing.t_rfc / self.timing.t_refi)

        out.io_term_mw = (self.io.read_drive_mw * read_util
                          + self.io.write_termination_mw * write_util)
        out.static_mw = self.io.static_odt_mw + self.io.static_dll_mw
        return out

    def power_at_utilization(self, bus_util: float, row_hit_rate: float = 0.5,
                             read_fraction: float = 0.66,
                             power_down_fraction: float = 0.0) -> ChipPowerBreakdown:
        """Analytic chip power at a given bus utilisation (paper Fig 2).

        Derives activity factors from the utilisation: each burst occupies
        ``t_burst`` ns and a miss fraction of accesses costs one ACT.
        """
        if not 0.0 <= bus_util <= 1.0:
            raise ValueError("bus_util must be in [0, 1]")
        elapsed = 1_000_000.0  # 1 ms window
        t = self.timing
        bursts = bus_util * elapsed / t.t_burst
        reads = bursts * read_fraction
        writes = bursts - reads
        acts = bursts * (1.0 - row_hit_rate)
        idle = max(0.0, elapsed * (1.0 - bus_util))
        pd = idle * power_down_fraction
        activity = ChipActivity(
            elapsed_ns=elapsed,
            activates=int(acts),
            reads=int(reads),
            writes=int(writes),
            read_bus_ns=reads * t.t_burst,
            write_bus_ns=writes * t.t_burst,
            active_standby_ns=(elapsed - idle) if bus_util > 0 else 0.0,
            precharge_standby_ns=idle - pd,
            power_down_ns=pd,
        )
        return self.compute(activity)


def default_power_model(kind: DRAMKind, server_adapted: bool = True,
                        refresh_enabled: bool = True) -> PowerModel:
    """The paper's power model for each chip family.

    ``server_adapted`` applies the DLL/ODT adders to LPDDR2 (Sec 4.1);
    pass False for the Malladi-style unterminated design (Sec 7.2).
    """
    from repro.dram.timing import DDR3_TIMING, LPDDR2_TIMING, RLDRAM3_TIMING
    if kind is DRAMKind.DDR3:
        return PowerModel(kind, DDR3_TIMING, DDR3_CURRENTS, DDR3_IO,
                          refresh_enabled)
    if kind is DRAMKind.RLDRAM3:
        return PowerModel(kind, RLDRAM3_TIMING, RLDRAM3_CURRENTS, RLDRAM3_IO,
                          refresh_enabled)
    if server_adapted:
        return PowerModel(kind, LPDDR2_TIMING, lpddr2_server_currents(),
                          LPDDR2_SERVER_IO, refresh_enabled)
    return PowerModel(kind, LPDDR2_TIMING, LPDDR2_NATIVE_CURRENTS,
                      LPDDR2_NATIVE_IO, refresh_enabled)
