"""Per-channel memory controller.

Implements the paper's controller model (Section 5):

* separate read and write queues (48 entries each) with high/low
  watermark write draining (32/16),
* FR-FCFS scheduling for open-page devices, close-page single-command
  scheduling for RLDRAM3,
* demand-over-prefetch priority with age-based promotion,
* per-rank refresh every tREFI, and
* an aggressive idle power-down policy for low-power ranks.

The controller is event-driven: it ticks on bus-cycle boundaries only
while work is pending, and otherwise sleeps until the next request or
refresh.

The issue loops are the simulator's inner kernel, so the controller
follows the same discipline as the bank/rank/bus models: ``__slots__``,
per-command timing constraints flattened to integer attributes at
construction (bus-cycle alignment, CAS data latencies, the burst beat),
a per-rank data-bus table replacing the ``rank_to_bus`` dict lookup,
and a live count of unpromoted prefetches so the common no-prefetch
case skips the demand/prefetch partition and the promotion scan
entirely. All of it is bit-identical to the straightforward form: the
same commands issue at the same cycles in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.bank import BankState
from repro.dram.channel import Channel
from repro.dram.device import DeviceConfig, PagePolicy
from repro.dram.request import MemoryRequest, WORDS_PER_LINE
from repro.dram.rank import PowerState, Rank
from repro.dram.scheduler import (
    SchedulingPolicy,
    promote_aged_prefetches,
    select_oldest,
)
from repro.dram.timing import TimingSet
from repro.telemetry.registry import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
)
from repro.telemetry.trace import NULL_TRACER
from repro.util.events import EventQueue

FAR_FUTURE = 1 << 62


class _DeliverCritical:
    """Scheduled critical-word delivery (picklable, not a closure)."""

    __slots__ = ("req",)

    def __init__(self, req: MemoryRequest) -> None:
        self.req = req

    def __call__(self) -> None:
        req = self.req
        req.on_critical_word(req.critical_word_time)


class _DeliverComplete:
    """Scheduled line-completion delivery (picklable, not a closure)."""

    __slots__ = ("req",)

    def __init__(self, req: MemoryRequest) -> None:
        self.req = req

    def __call__(self) -> None:
        req = self.req
        req.on_complete(req.completion_time)


@dataclass
class ControllerConfig:
    """Knobs from paper Table 1 plus policy switches."""

    read_queue_size: int = 48
    write_queue_size: int = 48
    high_watermark: int = 32
    low_watermark: int = 16
    scheduling: SchedulingPolicy = SchedulingPolicy.FR_FCFS
    prefetch_age_threshold: int = 2000   # CPU cycles before promotion
    powerdown_idle_threshold: int = 640  # CPU cycles (200 ns at 3.2 GHz)
    aggressive_powerdown: bool = False   # LPDRAM channels sleep eagerly
    refresh_enabled: bool = True


class ControllerStats:
    """Aggregated latency and throughput accounting.

    Slotted plain class: the counters are bumped on every completed
    command, and ``__slots__`` keeps those attribute writes off a dict.
    """

    __slots__ = (
        "reads_done", "writes_done", "sum_queue_latency",
        "sum_core_latency", "sum_total_latency", "sum_critical_latency",
        "read_queue_occupancy_samples", "sum_read_queue_occupancy",
        "refreshes", "prefetches_done",
    )

    def __init__(self) -> None:
        self.reads_done = 0
        self.writes_done = 0
        self.sum_queue_latency = 0
        self.sum_core_latency = 0
        self.sum_total_latency = 0
        self.sum_critical_latency = 0
        self.read_queue_occupancy_samples = 0
        self.sum_read_queue_occupancy = 0
        self.refreshes = 0
        self.prefetches_done = 0

    @property
    def avg_queue_latency(self) -> float:
        return self.sum_queue_latency / self.reads_done if self.reads_done else 0.0

    @property
    def avg_core_latency(self) -> float:
        return self.sum_core_latency / self.reads_done if self.reads_done else 0.0

    @property
    def avg_total_latency(self) -> float:
        return self.sum_total_latency / self.reads_done if self.reads_done else 0.0


class MemoryController:
    """One controller driving one channel of homogeneous DIMMs.

    ``rank_to_bus`` maps each rank to the data (sub-)bus it answers on;
    the default maps every rank to bus 0 (a conventional channel). The
    aggregated critical-word channel maps rank *i* to bus *i*.
    """

    __slots__ = (
        "device", "timing", "channel", "events", "config", "name",
        "ranks", "rank_to_bus", "read_queue", "write_queue", "stats",
        "_draining_writes", "_tick_event", "_next_refresh",
        "_refresh_pending", "registry", "tracer",
        "_h_queue_lat", "_h_critical_lat", "_h_total_lat", "_h_occupancy",
        "_c_refreshes", "_c_promotions",
        # Precomputed hot-path constants and fast-path state.
        "_bus_cycle", "_t_rl", "_t_wl", "_t_rc", "_t_refi", "_t_rfc",
        "_beat", "_slots_per_cycle", "_cmd_bus", "_cmd_earliest",
        "_cmd_reserve", "_rank_bus",
        "_close_page", "_unpromoted_prefetches", "_refresh_due",
        "_telemetry",
        # Config knobs flattened to instance attributes: the config is
        # never mutated after construction, and these are read every tick.
        "_refresh_enabled", "_aggressive_pd", "_pd_threshold",
        "_age_threshold", "_fr_fcfs", "_rd_size", "_wr_size",
        "_high_wm", "_low_wm",
        "_queue_version", "_partition_version", "_partition",
        # Optional protocol sanitizer (shadow timing/FSM model); None on
        # un-instrumented runs so every hook costs one identity check.
        "_san",
    )

    def __init__(self, device: DeviceConfig, timing: TimingSet,
                 channel: Channel, num_ranks: int,
                 events: EventQueue,
                 config: Optional[ControllerConfig] = None,
                 rank_to_bus: Optional[Dict[int, int]] = None,
                 name: str = "mc") -> None:
        self.device = device
        self.timing = timing
        self.channel = channel
        self.events = events
        self.config = config or ControllerConfig()
        self.name = name
        self.ranks: List[Rank] = [Rank(device, timing, i) for i in range(num_ranks)]
        self.rank_to_bus = rank_to_bus or {i: 0 for i in range(num_ranks)}
        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.stats = ControllerStats()
        self._draining_writes = False
        self._tick_event = None
        self._next_refresh = [
            (i + 1) * max(1, timing.t_refi // max(1, num_ranks))
            for i in range(num_ranks)
        ]
        self._refresh_pending = [False] * num_ranks
        # Telemetry handles default to the shared null sink; an
        # un-instrumented run pays only a single identity check.
        self.registry: Optional[MetricsRegistry] = None
        self.tracer = NULL_TRACER
        self._h_queue_lat = NULL_HISTOGRAM
        self._h_critical_lat = NULL_HISTOGRAM
        self._h_total_lat = NULL_HISTOGRAM
        self._h_occupancy = NULL_HISTOGRAM
        self._c_refreshes = NULL_COUNTER
        self._c_promotions = NULL_COUNTER
        self._telemetry = False
        # Flat per-command timing constants (CPU cycles).
        self._bus_cycle = timing.bus_cycle
        self._t_rl = timing.t_rl
        self._t_wl = timing.t_wl
        self._t_rc = timing.t_rc
        self._t_refi = timing.t_refi
        self._t_rfc = timing.t_rfc
        self._beat = max(1, timing.t_burst // WORDS_PER_LINE)
        self._slots_per_cycle = channel.cmd_bus.slots_per_cycle
        self._cmd_bus = channel.cmd_bus
        # Bound methods of the command bus, looked up once: every issue
        # attempt probes/reserves a command slot.
        self._cmd_earliest = channel.cmd_bus.earliest_slot
        self._cmd_reserve = channel.cmd_bus.reserve
        # Per-rank data bus, resolved once (replaces dict lookup per CAS).
        self._rank_bus = [channel.data_buses[self.rank_to_bus[i]]
                          for i in range(num_ranks)]
        self._close_page = device.page_policy is PagePolicy.CLOSE
        # Live count of queued unpromoted prefetches: while it is zero the
        # scheduler skips promotion scans and demand/prefetch partitions.
        self._unpromoted_prefetches = 0
        # Read-queue demand/prefetch partition, rebuilt only when the
        # queue (or a promotion) changes. ``_queue_version`` is bumped by
        # every mutation; the cached partition carries the version it was
        # built against.
        self._queue_version = 0
        self._partition_version = -1
        self._partition = None
        self._refresh_due = min(self._next_refresh) if num_ranks else FAR_FUTURE
        cfg = self.config
        self._refresh_enabled = cfg.refresh_enabled
        self._aggressive_pd = cfg.aggressive_powerdown
        self._pd_threshold = cfg.powerdown_idle_threshold
        self._age_threshold = cfg.prefetch_age_threshold
        self._fr_fcfs = cfg.scheduling is SchedulingPolicy.FR_FCFS
        self._rd_size = cfg.read_queue_size
        self._wr_size = cfg.write_queue_size
        self._high_wm = cfg.high_watermark
        self._low_wm = cfg.low_watermark
        self._san = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def attach_telemetry(self, registry: MetricsRegistry,
                         tracer=None) -> None:
        """Bind hot-path metric handles under ``dram.<name>.*``."""
        ns = f"dram.{self.name}"
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._h_queue_lat = registry.histogram(f"{ns}.queue_latency_cycles")
        self._h_critical_lat = registry.histogram(
            f"{ns}.critical_latency_cycles")
        self._h_total_lat = registry.histogram(f"{ns}.total_latency_cycles")
        self._h_occupancy = registry.histogram(f"{ns}.read_queue_occupancy")
        self._c_refreshes = registry.counter(f"{ns}.refreshes")
        self._c_promotions = registry.counter(f"{ns}.prefetch_promotions")
        self._telemetry = True

    def export_telemetry(self, elapsed_cycles: int) -> None:
        """Publish end-of-run structural counters (per rank, per bank).

        These are read off the existing bank/rank statistics rather than
        incremented on the hot path, so the per-bank breakdown costs
        nothing during simulation.
        """
        if self.registry is None:
            return
        registry = self.registry
        ns = f"dram.{self.name}"
        registry.gauge(f"{ns}.reads_done").set(self.stats.reads_done)
        registry.gauge(f"{ns}.writes_done").set(self.stats.writes_done)
        registry.gauge(f"{ns}.prefetches_done").set(self.stats.prefetches_done)
        registry.gauge(f"{ns}.avg_queue_latency").set(
            self.stats.avg_queue_latency)
        self.channel.export_telemetry(registry, ns, elapsed_cycles)
        for rank in self.ranks:
            rns = f"{ns}.rank{rank.index}"
            for key, value in rank.telemetry_items(self.events.now).items():
                registry.gauge(f"{rns}.{key}").set(value)
            for bank in rank.banks:
                bns = f"{rns}.bank{bank.index}"
                for key, value in bank.telemetry_items().items():
                    registry.gauge(f"{bns}.{key}").set(value)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def enqueue(self, request: MemoryRequest) -> bool:
        """Accept a request; returns False if the target queue is full.

        Queue-order invariant: requests are appended with a monotone
        ``arrival_time`` and monotone ``request_id`` (ids are allocated
        at construction and requests are enqueued as they are created),
        and removal never reorders, so each queue is always sorted by
        ``(arrival_time, request_id)``. The issue scans rely on this:
        within one demand class the first ready request in queue order
        *is* the FR-FCFS winner, with no per-candidate key comparisons.
        """
        if request.is_read:
            queue = self.read_queue
            limit = self._rd_size
        else:
            queue = self.write_queue
            limit = self._wr_size
        if len(queue) >= limit:
            return False
        now = self.events.now
        request.arrival_time = now
        queue.append(request)
        if request.is_read:
            self._queue_version += 1
        if request.is_prefetch and not request.promoted:
            self._unpromoted_prefetches += 1
        rank = self.ranks[request.decoded.rank]
        if rank.power_state in (PowerState.POWER_DOWN, PowerState.SELF_REFRESH):
            rank.wake(now)
            if self._san is not None:
                self._san.note_wake(now, request.decoded.rank,
                                    rank.wake_time)
        self._schedule_tick(now)
        return True

    @property
    def read_queue_free(self) -> int:
        return self.config.read_queue_size - len(self.read_queue)

    @property
    def write_queue_free(self) -> int:
        return self.config.write_queue_size - len(self.write_queue)

    def busy(self) -> bool:
        return bool(self.read_queue or self.write_queue)

    def finalize(self) -> None:
        """Fold power-state residency tallies up to the current time."""
        for rank in self.ranks:
            rank.finalize_tally(self.events.now)

    # ------------------------------------------------------------------
    # Tick machinery
    # ------------------------------------------------------------------

    def _schedule_tick(self, when: int) -> None:
        now = self.events.now
        if when < now:
            when = now
        # Align to the next bus-cycle boundary.
        bus = self._bus_cycle
        when = ((when + bus - 1) // bus) * bus
        tick = self._tick_event
        if tick is not None and not tick.cancelled:
            if tick.time <= when:
                return
            tick.cancel()
        self._tick_event = self.events.schedule(when, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        now = self.events.now
        if self._refresh_enabled and now >= self._refresh_due:
            self._service_refresh(now)
        if self._unpromoted_prefetches:
            promoted = promote_aged_prefetches(
                self.read_queue, now, self._age_threshold)
            if promoted:
                self._unpromoted_prefetches -= promoted
                self._queue_version += 1
                self._c_promotions.inc(promoted)
        write_depth = len(self.write_queue)
        if self._draining_writes:
            if write_depth <= self._low_wm:
                self._draining_writes = False
        elif write_depth >= self._high_wm:
            self._draining_writes = True

        occupancy = len(self.read_queue)
        stats = self.stats
        stats.read_queue_occupancy_samples += 1
        stats.sum_read_queue_occupancy += occupancy
        if self._telemetry:
            self._h_occupancy.observe(occupancy)

        # First slot unrolled: most channels have one command slot per
        # bus cycle, and the loop stops at the first idle slot anyway.
        issued_any = self._issue_one(now)
        if issued_any:
            for _ in range(self._slots_per_cycle - 1):
                if not self._issue_one(now):
                    break

        if self._aggressive_pd:
            self._try_powerdown(now)

        if self.read_queue or self.write_queue:
            next_time = (now + self._bus_cycle if issued_any
                         else self._next_wake_time(now))
            floor = now + 1
            self._schedule_tick(next_time if next_time > floor else floor)
        else:
            # Idle: wake for the next refresh, and — when the sleep
            # policy is on — once the idle threshold elapses so ranks
            # can actually enter power-down.
            target = FAR_FUTURE
            if self._refresh_enabled:
                target = min(self._next_refresh)
            if self._aggressive_pd and any(
                    r.power_state is PowerState.STANDBY for r in self.ranks):
                target = min(target, now + self._pd_threshold)
            if target < FAR_FUTURE:
                # Never reschedule at the current instant: an overdue
                # refresh blocked on bank timing must wait for time to
                # advance.
                self._schedule_tick(max(target, now + self._bus_cycle))

    def _next_wake_time(self, now: int) -> int:
        """Conservative earliest time any queued command could issue.

        The body of :meth:`_earliest_progress_time` is inlined into the
        queue scan — this runs for every queued request on every idle
        tick, and the method-call plus ``max()`` overhead dominates the
        arithmetic.
        """
        best = FAR_FUTURE
        ranks = self.ranks
        close = self._close_page
        active = BankState.ACTIVE
        for queue in (self.read_queue, self.write_queue):
            for req in queue:
                d = req.decoded
                rank = ranks[d.rank]
                bank = rank.banks[d.bank]
                if close:
                    t = bank.next_activate
                    w = rank.wake_time
                    if w > t:
                        t = w
                    w = rank.next_act_allowed
                    if w > t:
                        t = w
                elif bank.state is active:
                    if bank.open_row == d.row:
                        t = bank.next_read if req.is_read else bank.next_write
                    else:
                        t = bank.next_precharge
                    w = rank.wake_time
                    if w > t:
                        t = w
                else:
                    t = bank.next_activate
                    w = rank.earliest_activate(now)
                    if w > t:
                        t = w
                if t < best:
                    best = t
        if best <= now:
            best = now + self._bus_cycle
        cap = now + self._t_rc
        return best if best < cap else cap

    # ------------------------------------------------------------------
    # Issue logic
    # ------------------------------------------------------------------

    def _active_queue(self) -> List[MemoryRequest]:
        if self._draining_writes:
            return self.write_queue
        if self.read_queue:
            return self.read_queue
        return self.write_queue

    def _update_drain_mode(self) -> None:
        # Kept as a method for tests; _tick inlines the same logic.
        if self._draining_writes:
            if len(self.write_queue) <= self._low_wm:
                self._draining_writes = False
        elif len(self.write_queue) >= self._high_wm:
            self._draining_writes = True

    def _issue_one(self, now: int) -> bool:
        # _active_queue, inlined (this runs once or twice per tick).
        if self._draining_writes:
            queue = self.write_queue
        elif self.read_queue:
            queue = self.read_queue
        else:
            queue = self.write_queue
        if not queue:
            return False
        # Every command class needs a command-bus slot at ``now``; when
        # none is free nothing can issue this tick.
        if self._cmd_earliest(now) != now:
            return False
        if self._close_page:
            if self._issue_close_page(now, queue):
                return True
        elif self._issue_open_page(now, queue):
            return True
        # Drain gaps: while a write drain waits on bank timing, let a
        # ready read slip in rather than stalling the channel (and vice
        # versa when serving reads leaves the cycle idle).
        other = self.write_queue if queue is self.read_queue else self.read_queue
        if not other:
            return False
        if self._close_page:
            return self._issue_close_page(now, other)
        return self._issue_open_page(now, other)

    # --- open-page (DDR3 / LPDDR2) -------------------------------------

    def _issue_open_page(self, now: int, queue: List[MemoryRequest]) -> bool:
        # Demand requests strictly outrank prefetches (paper Sec 5):
        # prefetches only consume bandwidth no demand can use this cycle.
        # Prefetches live only in the read queue, and its partition is
        # cached across the (many) scans between queue mutations.
        if self._unpromoted_prefetches and queue is self.read_queue:
            if self._partition_version != self._queue_version:
                self._partition = (
                    [r for r in queue if not r.is_prefetch or r.promoted],
                    [r for r in queue if r.is_prefetch and not r.promoted],
                )
                self._partition_version = self._queue_version
            classes = self._partition
        else:
            classes = (queue,)
        fr_fcfs = self._fr_fcfs
        ranks = self.ranks
        rank_bus = self._rank_bus
        t_rl = self._t_rl
        t_wl = self._t_wl
        active = BankState.ACTIVE
        for cls in classes:
            if not cls:
                continue
            if fr_fcfs:
                # FR step, inlined: the first column-ready row hit in
                # queue order. The queue-order invariant (see
                # :meth:`enqueue`) makes it the best (arrival_time,
                # request_id) candidate in its demand class, so the scan
                # stops at the first match.
                for r in cls:
                    d = r.decoded
                    rank = ranks[d.rank]
                    if now < rank.wake_time:
                        continue
                    bank = rank.banks[d.bank]
                    if bank.state is not active or bank.open_row != d.row:
                        continue
                    if r.is_read:
                        if now < bank.next_read:
                            continue
                        t_data = now + t_rl
                    else:
                        if now < bank.next_write:
                            continue
                        t_data = now + t_wl
                    # The data bus must be free exactly when this burst
                    # would start.
                    bus = rank_bus[d.rank]
                    if bus.earliest_start(t_data, r.kind, d.rank) != t_data:
                        continue
                    self._issue_cas(now, r, queue)
                    return True
            else:
                # Strict FCFS considers only the oldest request for CAS.
                oldest = select_oldest(cls)
                if oldest is not None and self._cas_ready(now, oldest):
                    self._issue_cas(now, oldest, queue)
                    return True
                if oldest is not None and self._progress_act_pre(now, oldest):
                    return True
                continue
            # Progress PRE/ACT oldest-first *per bank*: younger requests
            # to ready banks must not stall behind one blocked oldest
            # (bank-level parallelism), but within a bank strict age
            # order prevents precharge ping-pong. Queue order is already
            # (arrival_time, request_id) order, so no sort is needed.
            # Body of _progress_act_pre inlined: this loop visits every
            # queued request on every non-issuing tick.
            claimed = set()
            for req in cls:
                d = req.decoded
                key = (d.rank, d.bank)
                if key in claimed:
                    continue
                claimed.add(key)
                rank = ranks[d.rank]
                if now < rank.wake_time:
                    continue
                bank = rank.banks[d.bank]
                if bank.state is active:
                    if (bank.open_row != d.row
                            and now >= bank.next_precharge
                            and self._cmd_earliest(now) == now):
                        self._cmd_reserve(now)
                        bank.precharge(now)
                        rank.touch(now)
                        if self._san is not None:
                            self._san.note_pre(now, d.rank, d.bank)
                        if req.first_command_time is None:
                            req.first_command_time = now
                        return True
                elif (now >= bank.next_activate
                        and rank.earliest_activate(now) <= now
                        and self._cmd_earliest(now) == now):
                    self._cmd_reserve(now)
                    bank.activate(now, d.row)
                    rank.note_activate(now)
                    if self._san is not None:
                        self._san.note_act(now, d.rank, d.bank, d.row)
                    if req.first_command_time is None:
                        req.first_command_time = now
                    return True
        return False

    def _cas_ready(self, now: int, req: MemoryRequest) -> bool:
        d = req.decoded
        rank = self.ranks[d.rank]
        if now < rank.wake_time:
            return False
        bank = rank.banks[d.bank]
        if not bank.is_row_hit(d.row):
            return False
        next_col = bank.next_read if req.is_read else bank.next_write
        if now < next_col:
            return False
        # The data bus must be free exactly when this burst would start.
        t_data = now + (self._t_rl if req.is_read else self._t_wl)
        bus = self._rank_bus[d.rank]
        if bus.earliest_start(t_data, req.kind, d.rank) != t_data:
            return False
        return self._cmd_earliest(now) == now

    def _issue_cas(self, now: int, req: MemoryRequest,
                   queue: List[MemoryRequest]) -> None:
        d = req.decoded
        rank = self.ranks[d.rank]
        bank = rank.banks[d.bank]
        rank.touch(now)
        self._cmd_reserve(now)
        if req.first_command_time is None:
            # CAS with no prior PRE/ACT for this request: a row-buffer hit.
            bank.row_hit_count += 1
        if req.is_read:
            data_start = bank.column_read(now)
        else:
            data_start = bank.column_write(now)
        bus = self._rank_bus[d.rank]
        end = bus.reserve(data_start, req.kind, d.rank)
        if self._san is not None:
            self._san.note_cas(now, d.rank, d.bank, d.row, req.is_read,
                               data_start, end)
        if req.first_command_time is None:
            req.first_command_time = now
        self._complete(req, data_start, end)
        if req.is_prefetch and not req.promoted:
            self._unpromoted_prefetches -= 1
        queue.remove(req)
        if req.is_read:
            self._queue_version += 1

    def _progress_act_pre(self, now: int, req: MemoryRequest) -> bool:
        """Issue the PRE or ACT the oldest request needs, if legal."""
        d = req.decoded
        rank = self.ranks[d.rank]
        if now < rank.wake_time:
            return False
        bank = rank.banks[d.bank]
        if bank.state is BankState.ACTIVE and bank.open_row != d.row:
            if bank.can_precharge(now) and \
                    self._cmd_earliest(now) == now:
                self._cmd_reserve(now)
                bank.precharge(now)
                rank.touch(now)
                if self._san is not None:
                    self._san.note_pre(now, d.rank, d.bank)
                if req.first_command_time is None:
                    req.first_command_time = now
                return True
            return False
        if bank.state is BankState.IDLE:
            if (bank.can_activate(now) and rank.can_activate(now)
                    and self._cmd_earliest(now) == now):
                self._cmd_reserve(now)
                bank.activate(now, d.row)
                rank.note_activate(now)
                if self._san is not None:
                    self._san.note_act(now, d.rank, d.bank, d.row)
                if req.first_command_time is None:
                    req.first_command_time = now
                return True
        return False

    # --- close-page (RLDRAM3) ------------------------------------------

    def _issue_close_page(self, now: int, queue: List[MemoryRequest]) -> bool:
        """Single-command SRAM-style access with auto-precharge."""
        # Best = lowest (demand-class, arrival_time, request_id). By the
        # queue-order invariant (see :meth:`enqueue`) the first legal
        # demand in queue order wins outright; the first legal
        # unpromoted prefetch is remembered as the fallback.
        best = None
        ranks = self.ranks
        rank_bus = self._rank_bus
        t_rl = self._t_rl
        t_wl = self._t_wl
        for req in queue:
            d = req.decoded
            rank = ranks[d.rank]
            if now < rank.wake_time or now < rank.next_act_allowed:
                continue
            bank = rank.banks[d.bank]
            if now < bank.next_activate:
                continue
            t_data = now + (t_rl if req.is_read else t_wl)
            bus = rank_bus[d.rank]
            if bus.earliest_start(t_data, req.kind, d.rank) != t_data:
                continue
            if req.is_prefetch and not req.promoted:
                if best is None:
                    best = req
                continue
            best = req
            break
        if best is None:
            return False
        d = best.decoded
        rank = ranks[d.rank]
        bank = rank.banks[d.bank]
        rank.touch(now)
        self._cmd_reserve(now)
        data_start = bank.access(now, is_write=not best.is_read)
        rank.note_activate(now)
        bus = rank_bus[d.rank]
        end = bus.reserve(data_start, best.kind, d.rank)
        if self._san is not None:
            self._san.note_access(now, d.rank, d.bank,
                                  not best.is_read, data_start, end)
        if best.first_command_time is None:
            best.first_command_time = now
        self._complete(best, data_start, end)
        if best.is_prefetch and not best.promoted:
            self._unpromoted_prefetches -= 1
        queue.remove(best)
        if best.is_read:
            self._queue_version += 1
        return True

    def _access_ready(self, now: int, req: MemoryRequest) -> bool:
        d = req.decoded
        rank = self.ranks[d.rank]
        if now < rank.wake_time or now < rank.next_act_allowed:
            return False
        bank = rank.banks[d.bank]
        if not bank.can_access(now):
            return False
        t_data = now + (self._t_rl if req.is_read else self._t_wl)
        bus = self._rank_bus[d.rank]
        if bus.earliest_start(t_data, req.kind, d.rank) != t_data:
            return False
        return self._cmd_earliest(now) == now

    # --- completion ------------------------------------------------------

    def _complete(self, req: MemoryRequest, data_start: int, end: int) -> None:
        req.data_start_time = data_start
        req.completion_time = end
        # Conventional critical-word-first on the bus: the requested word
        # is transferred in the first beat of the (reordered) burst.
        critical_time = data_start + self._beat
        req.critical_word_time = critical_time
        stats = self.stats
        if req.is_read:
            stats.reads_done += 1
            if req.is_prefetch:
                stats.prefetches_done += 1
            queue_latency = req.first_command_time - req.arrival_time
            total_latency = critical_time - req.arrival_time
            stats.sum_queue_latency += queue_latency
            stats.sum_core_latency += critical_time - req.first_command_time
            stats.sum_total_latency += total_latency
            stats.sum_critical_latency += total_latency
            if self._telemetry:
                self._h_queue_lat.observe(queue_latency)
                self._h_critical_lat.observe(total_latency)
                self._h_total_lat.observe(total_latency)
            if req.on_critical_word is not None:
                self.events.schedule(critical_time, _DeliverCritical(req))
        else:
            stats.writes_done += 1
        if self.tracer is not NULL_TRACER:
            self.tracer.record_request(req, self.name)
        if req.on_complete is not None:
            self.events.schedule(end, _DeliverComplete(req))

    # ------------------------------------------------------------------
    # Refresh and power-down
    # ------------------------------------------------------------------

    def _service_refresh(self, now: int) -> None:
        if not self._refresh_enabled:
            return
        next_refresh = self._next_refresh
        for i, rank in enumerate(self.ranks):
            if now < next_refresh[i]:
                continue
            self._refresh_pending[i] = True
            # Close any open banks as they become precharge-legal.
            if rank.open_banks:
                for bank in rank.banks:
                    if (bank.state is BankState.ACTIVE
                            and bank.can_precharge(now)):
                        bank.precharge(now)
                        if self._san is not None:
                            self._san.note_pre(now, i, bank.index,
                                               scheduled=False)
                if rank.open_banks:
                    continue
            if now < rank.wake_time:
                continue
            until = now + self._t_rfc
            for bank in rank.banks:
                bank.refresh_block(now, until)
            rank.touch(now)
            if self._san is not None:
                self._san.note_refresh(now, i, until)
            next_refresh[i] = max(next_refresh[i] + self._t_refi,
                                  now + self._t_refi // 2)
            self._refresh_pending[i] = False
            self.stats.refreshes += 1
            self._c_refreshes.inc()
        self._refresh_due = min(next_refresh)

    def _try_powerdown(self, now: int) -> None:
        if not self._aggressive_pd:
            return
        threshold = self._pd_threshold
        ranks = self.ranks
        if len(ranks) == 1:
            # Single-rank channel (every bulk channel): any queued work
            # targets this rank, so the busy-set scan reduces to a
            # queue-emptiness check.
            rank = ranks[0]
            state = rank.power_state
            if (state is PowerState.POWER_DOWN
                    or state is PowerState.SELF_REFRESH
                    or self.read_queue or self.write_queue):
                return
            if rank.open_banks:
                for bank in rank.banks:
                    if (bank.state is BankState.ACTIVE
                            and now - bank.last_use >= threshold
                            and bank.can_precharge(now)):
                        bank.precharge(now)
                        if self._san is not None:
                            self._san.note_pre(now, 0, bank.index,
                                               scheduled=False)
            if rank.try_power_down(now, threshold) and self._san is not None:
                self._san.note_power_down(now, 0)
            return
        busy_ranks = None
        for i, rank in enumerate(ranks):
            # Already asleep: banks are closed and there is nothing to do.
            state = rank.power_state
            if state is PowerState.POWER_DOWN or state is PowerState.SELF_REFRESH:
                continue
            # Only sleep ranks with no queued work targeting them; the
            # busy set is built lazily so a fully sleeping channel pays
            # nothing per tick.
            if busy_ranks is None:
                busy_ranks = {r.decoded.rank for r in self.read_queue}
                busy_ranks.update(r.decoded.rank for r in self.write_queue)
            if i in busy_ranks:
                continue
            # Close rows that have idled past the threshold so the rank
            # can reach precharge power-down (open-page otherwise pins
            # banks active forever). The open-bank count skips the scan
            # for ranks whose rows are already all closed.
            if rank.open_banks:
                for bank in rank.banks:
                    if (bank.state is BankState.ACTIVE
                            and now - bank.last_use >= threshold
                            and bank.can_precharge(now)):
                        bank.precharge(now)
                        if self._san is not None:
                            self._san.note_pre(now, i, bank.index,
                                               scheduled=False)
            if rank.try_power_down(now, threshold) and self._san is not None:
                self._san.note_power_down(now, i)

    def _earliest_progress_time(self, now: int, req: MemoryRequest) -> int:
        """Lower bound on when ``req``'s next command could become legal."""
        d = req.decoded
        rank = self.ranks[d.rank]
        bank = rank.banks[d.bank]
        if self._close_page:
            return max(bank.next_activate, rank.wake_time,
                       rank.next_act_allowed)
        if bank.is_row_hit(d.row):
            col = bank.next_read if req.is_read else bank.next_write
            return max(col, rank.wake_time)
        if bank.state is BankState.ACTIVE:
            return max(bank.next_precharge, rank.wake_time)
        return max(bank.next_activate, rank.earliest_activate(now))
