"""Per-channel memory controller.

Implements the paper's controller model (Section 5):

* separate read and write queues (48 entries each) with high/low
  watermark write draining (32/16),
* FR-FCFS scheduling for open-page devices, close-page single-command
  scheduling for RLDRAM3,
* demand-over-prefetch priority with age-based promotion,
* per-rank refresh every tREFI, and
* an aggressive idle power-down policy for low-power ranks.

The controller is event-driven: it ticks on bus-cycle boundaries only
while work is pending, and otherwise sleeps until the next request or
refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.bank import BankState
from repro.dram.channel import Channel
from repro.dram.device import DeviceConfig, PagePolicy
from repro.dram.request import MemoryRequest, WORDS_PER_LINE
from repro.dram.rank import PowerState, Rank
from repro.dram.scheduler import (
    SchedulingPolicy,
    priority_key,
    promote_aged_prefetches,
    select_oldest,
    select_row_hit,
)
from repro.dram.timing import TimingSet
from repro.telemetry.registry import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
)
from repro.telemetry.trace import NULL_TRACER
from repro.util.events import EventQueue

FAR_FUTURE = 1 << 62


@dataclass
class ControllerConfig:
    """Knobs from paper Table 1 plus policy switches."""

    read_queue_size: int = 48
    write_queue_size: int = 48
    high_watermark: int = 32
    low_watermark: int = 16
    scheduling: SchedulingPolicy = SchedulingPolicy.FR_FCFS
    prefetch_age_threshold: int = 2000   # CPU cycles before promotion
    powerdown_idle_threshold: int = 640  # CPU cycles (200 ns at 3.2 GHz)
    aggressive_powerdown: bool = False   # LPDRAM channels sleep eagerly
    refresh_enabled: bool = True


@dataclass
class ControllerStats:
    """Aggregated latency and throughput accounting."""

    reads_done: int = 0
    writes_done: int = 0
    sum_queue_latency: int = 0
    sum_core_latency: int = 0
    sum_total_latency: int = 0
    sum_critical_latency: int = 0
    read_queue_occupancy_samples: int = 0
    sum_read_queue_occupancy: int = 0
    refreshes: int = 0
    prefetches_done: int = 0

    @property
    def avg_queue_latency(self) -> float:
        return self.sum_queue_latency / self.reads_done if self.reads_done else 0.0

    @property
    def avg_core_latency(self) -> float:
        return self.sum_core_latency / self.reads_done if self.reads_done else 0.0

    @property
    def avg_total_latency(self) -> float:
        return self.sum_total_latency / self.reads_done if self.reads_done else 0.0


class MemoryController:
    """One controller driving one channel of homogeneous DIMMs.

    ``rank_to_bus`` maps each rank to the data (sub-)bus it answers on;
    the default maps every rank to bus 0 (a conventional channel). The
    aggregated critical-word channel maps rank *i* to bus *i*.
    """

    def __init__(self, device: DeviceConfig, timing: TimingSet,
                 channel: Channel, num_ranks: int,
                 events: EventQueue,
                 config: Optional[ControllerConfig] = None,
                 rank_to_bus: Optional[Dict[int, int]] = None,
                 name: str = "mc") -> None:
        self.device = device
        self.timing = timing
        self.channel = channel
        self.events = events
        self.config = config or ControllerConfig()
        self.name = name
        self.ranks: List[Rank] = [Rank(device, timing, i) for i in range(num_ranks)]
        self.rank_to_bus = rank_to_bus or {i: 0 for i in range(num_ranks)}
        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.stats = ControllerStats()
        self._draining_writes = False
        self._tick_event = None
        self._next_refresh = [
            (i + 1) * max(1, timing.t_refi // max(1, num_ranks))
            for i in range(num_ranks)
        ]
        self._refresh_pending = [False] * num_ranks
        # Telemetry handles default to the shared null sink; an
        # un-instrumented run pays only the no-op calls.
        self.registry: Optional[MetricsRegistry] = None
        self.tracer = NULL_TRACER
        self._h_queue_lat = NULL_HISTOGRAM
        self._h_critical_lat = NULL_HISTOGRAM
        self._h_total_lat = NULL_HISTOGRAM
        self._h_occupancy = NULL_HISTOGRAM
        self._c_refreshes = NULL_COUNTER
        self._c_promotions = NULL_COUNTER

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def attach_telemetry(self, registry: MetricsRegistry,
                         tracer=None) -> None:
        """Bind hot-path metric handles under ``dram.<name>.*``."""
        ns = f"dram.{self.name}"
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._h_queue_lat = registry.histogram(f"{ns}.queue_latency_cycles")
        self._h_critical_lat = registry.histogram(
            f"{ns}.critical_latency_cycles")
        self._h_total_lat = registry.histogram(f"{ns}.total_latency_cycles")
        self._h_occupancy = registry.histogram(f"{ns}.read_queue_occupancy")
        self._c_refreshes = registry.counter(f"{ns}.refreshes")
        self._c_promotions = registry.counter(f"{ns}.prefetch_promotions")

    def export_telemetry(self, elapsed_cycles: int) -> None:
        """Publish end-of-run structural counters (per rank, per bank).

        These are read off the existing bank/rank statistics rather than
        incremented on the hot path, so the per-bank breakdown costs
        nothing during simulation.
        """
        if self.registry is None:
            return
        registry = self.registry
        ns = f"dram.{self.name}"
        registry.gauge(f"{ns}.reads_done").set(self.stats.reads_done)
        registry.gauge(f"{ns}.writes_done").set(self.stats.writes_done)
        registry.gauge(f"{ns}.prefetches_done").set(self.stats.prefetches_done)
        registry.gauge(f"{ns}.avg_queue_latency").set(
            self.stats.avg_queue_latency)
        self.channel.export_telemetry(registry, ns, elapsed_cycles)
        for rank in self.ranks:
            rns = f"{ns}.rank{rank.index}"
            for key, value in rank.telemetry_items(self.events.now).items():
                registry.gauge(f"{rns}.{key}").set(value)
            for bank in rank.banks:
                bns = f"{rns}.bank{bank.index}"
                for key, value in bank.telemetry_items().items():
                    registry.gauge(f"{bns}.{key}").set(value)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def enqueue(self, request: MemoryRequest) -> bool:
        """Accept a request; returns False if the target queue is full."""
        queue = self.read_queue if request.is_read else self.write_queue
        limit = (self.config.read_queue_size if request.is_read
                 else self.config.write_queue_size)
        if len(queue) >= limit:
            return False
        request.arrival_time = self.events.now
        queue.append(request)
        rank = self.ranks[request.decoded.rank]
        if rank.power_state in (PowerState.POWER_DOWN, PowerState.SELF_REFRESH):
            rank.wake(self.events.now)
        self._schedule_tick(self.events.now)
        return True

    @property
    def read_queue_free(self) -> int:
        return self.config.read_queue_size - len(self.read_queue)

    @property
    def write_queue_free(self) -> int:
        return self.config.write_queue_size - len(self.write_queue)

    def busy(self) -> bool:
        return bool(self.read_queue or self.write_queue)

    def finalize(self) -> None:
        """Fold power-state residency tallies up to the current time."""
        for rank in self.ranks:
            rank.finalize_tally(self.events.now)

    # ------------------------------------------------------------------
    # Tick machinery
    # ------------------------------------------------------------------

    def _schedule_tick(self, when: int) -> None:
        when = max(when, self.events.now)
        # Align to the next bus-cycle boundary.
        bus = self.timing.bus_cycle
        when = ((when + bus - 1) // bus) * bus
        if self._tick_event is not None and not self._tick_event.cancelled:
            if self._tick_event.time <= when:
                return
            self._tick_event.cancel()
        self._tick_event = self.events.schedule(when, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        now = self.events.now
        self._service_refresh(now)
        promoted = promote_aged_prefetches(self.read_queue, now,
                                           self.config.prefetch_age_threshold)
        if promoted:
            self._c_promotions.inc(promoted)
        self._update_drain_mode()

        self.stats.read_queue_occupancy_samples += 1
        self.stats.sum_read_queue_occupancy += len(self.read_queue)
        self._h_occupancy.observe(len(self.read_queue))

        issued_any = False
        for _ in range(self.channel.cmd_bus.slots_per_cycle):
            if self._issue_one(now):
                issued_any = True
            else:
                break

        self._try_powerdown(now)

        if self.busy():
            next_time = (now + self.timing.bus_cycle if issued_any
                         else self._next_wake_time(now))
            self._schedule_tick(max(next_time, now + 1))
        else:
            # Idle: wake for the next refresh, and — when the sleep
            # policy is on — once the idle threshold elapses so ranks
            # can actually enter power-down.
            target = FAR_FUTURE
            if self.config.refresh_enabled:
                target = min(self._next_refresh)
            if self.config.aggressive_powerdown and any(
                    r.power_state is PowerState.STANDBY for r in self.ranks):
                target = min(target,
                             now + self.config.powerdown_idle_threshold)
            if target < FAR_FUTURE:
                # Never reschedule at the current instant: an overdue
                # refresh blocked on bank timing must wait for time to
                # advance.
                self._schedule_tick(max(target, now + self.timing.bus_cycle))

    def _next_wake_time(self, now: int) -> int:
        """Conservative earliest time any queued command could issue."""
        best = FAR_FUTURE
        for req in self.read_queue + self.write_queue:
            t = self._earliest_progress_time(now, req)
            if t < best:
                best = t
        if best <= now:
            best = now + self.timing.bus_cycle
        return min(best, now + self.timing.t_rc)

    # ------------------------------------------------------------------
    # Issue logic
    # ------------------------------------------------------------------

    def _active_queue(self) -> List[MemoryRequest]:
        if self._draining_writes:
            return self.write_queue
        if self.read_queue:
            return self.read_queue
        return self.write_queue

    def _update_drain_mode(self) -> None:
        cfg = self.config
        if self._draining_writes:
            if len(self.write_queue) <= cfg.low_watermark:
                self._draining_writes = False
        elif len(self.write_queue) >= cfg.high_watermark:
            self._draining_writes = True

    def _issue_one(self, now: int) -> bool:
        queue = self._active_queue()
        if not queue:
            return False
        if self.device.page_policy is PagePolicy.CLOSE:
            if self._issue_close_page(now, queue):
                return True
        elif self._issue_open_page(now, queue):
            return True
        # Drain gaps: while a write drain waits on bank timing, let a
        # ready read slip in rather than stalling the channel (and vice
        # versa when serving reads leaves the cycle idle).
        other = self.write_queue if queue is self.read_queue else self.read_queue
        if not other:
            return False
        if self.device.page_policy is PagePolicy.CLOSE:
            return self._issue_close_page(now, other)
        return self._issue_open_page(now, other)

    # --- open-page (DDR3 / LPDDR2) -------------------------------------

    def _issue_open_page(self, now: int, queue: List[MemoryRequest]) -> bool:
        # Demand requests strictly outrank prefetches (paper Sec 5):
        # prefetches only consume bandwidth no demand can use this cycle.
        demands = [r for r in queue
                   if not r.is_prefetch or r.promoted]
        prefetches = [r for r in queue
                      if r.is_prefetch and not r.promoted]
        for cls in (demands, prefetches):
            if not cls:
                continue
            if self.config.scheduling is SchedulingPolicy.FR_FCFS:
                hit = select_row_hit(cls, lambda r: self._cas_ready(now, r))
                if hit is not None:
                    self._issue_cas(now, hit, queue)
                    return True
            else:
                # Strict FCFS considers only the oldest request for CAS.
                oldest = select_oldest(cls)
                if oldest is not None and self._cas_ready(now, oldest):
                    self._issue_cas(now, oldest, queue)
                    return True
                if oldest is not None and self._progress_act_pre(now, oldest):
                    return True
                continue
            # Progress PRE/ACT oldest-first *per bank*: younger requests
            # to ready banks must not stall behind one blocked oldest
            # (bank-level parallelism), but within a bank strict age
            # order prevents precharge ping-pong.
            claimed = set()
            for req in sorted(cls, key=priority_key):
                key = (req.decoded.rank, req.decoded.bank)
                if key in claimed:
                    continue
                claimed.add(key)
                if self._progress_act_pre(now, req):
                    return True
        return False

    def _cas_ready(self, now: int, req: MemoryRequest) -> bool:
        d = req.decoded
        rank = self.ranks[d.rank]
        if now < rank.wake_time:
            return False
        bank = rank.banks[d.bank]
        if not bank.is_row_hit(d.row):
            return False
        next_col = bank.next_read if req.is_read else bank.next_write
        if now < next_col:
            return False
        # The data bus must be free exactly when this burst would start.
        t_data = now + (self.timing.t_rl if req.is_read else self.timing.t_wl)
        bus = self.channel.data_bus(self.rank_to_bus[d.rank])
        if bus.earliest_start(t_data, req.kind, d.rank) != t_data:
            return False
        return self.channel.cmd_bus.earliest_slot(now) == now

    def _issue_cas(self, now: int, req: MemoryRequest,
                   queue: List[MemoryRequest]) -> None:
        d = req.decoded
        rank = self.ranks[d.rank]
        bank = rank.banks[d.bank]
        rank.touch(now)
        self.channel.cmd_bus.reserve(now)
        if req.first_command_time is None:
            # CAS with no prior PRE/ACT for this request: a row-buffer hit.
            bank.row_hit_count += 1
        if req.is_read:
            data_start = bank.column_read(now)
        else:
            data_start = bank.column_write(now)
        bus = self.channel.data_bus(self.rank_to_bus[d.rank])
        end = bus.reserve(data_start, req.kind, d.rank)
        if req.first_command_time is None:
            req.first_command_time = now
        self._complete(req, data_start, end)
        queue.remove(req)

    def _progress_act_pre(self, now: int, req: MemoryRequest) -> bool:
        """Issue the PRE or ACT the oldest request needs, if legal."""
        d = req.decoded
        rank = self.ranks[d.rank]
        if now < rank.wake_time:
            return False
        bank = rank.banks[d.bank]
        if bank.state is BankState.ACTIVE and bank.open_row != d.row:
            if bank.can_precharge(now) and \
                    self.channel.cmd_bus.earliest_slot(now) == now:
                self.channel.cmd_bus.reserve(now)
                bank.precharge(now)
                rank.touch(now)
                if req.first_command_time is None:
                    req.first_command_time = now
                return True
            return False
        if bank.state is BankState.IDLE:
            if (bank.can_activate(now) and rank.can_activate(now)
                    and self.channel.cmd_bus.earliest_slot(now) == now):
                self.channel.cmd_bus.reserve(now)
                bank.activate(now, d.row)
                rank.note_activate(now)
                if req.first_command_time is None:
                    req.first_command_time = now
                return True
        return False

    # --- close-page (RLDRAM3) ------------------------------------------

    def _issue_close_page(self, now: int, queue: List[MemoryRequest]) -> bool:
        """Single-command SRAM-style access with auto-precharge."""
        best = None
        best_key = None
        for req in queue:
            if not self._access_ready(now, req):
                continue
            key = priority_key(req)
            if best_key is None or key < best_key:
                best, best_key = req, key
        if best is None:
            return False
        d = best.decoded
        rank = self.ranks[d.rank]
        bank = rank.banks[d.bank]
        rank.touch(now)
        self.channel.cmd_bus.reserve(now)
        data_start = bank.access(now, is_write=not best.is_read)
        rank.note_activate(now)
        bus = self.channel.data_bus(self.rank_to_bus[d.rank])
        end = bus.reserve(data_start, best.kind, d.rank)
        if best.first_command_time is None:
            best.first_command_time = now
        self._complete(best, data_start, end)
        queue.remove(best)
        return True

    def _access_ready(self, now: int, req: MemoryRequest) -> bool:
        d = req.decoded
        rank = self.ranks[d.rank]
        if now < rank.wake_time or now < rank.next_act_allowed:
            return False
        bank = rank.banks[d.bank]
        if not bank.can_access(now):
            return False
        t_data = now + (self.timing.t_rl if req.is_read else self.timing.t_wl)
        bus = self.channel.data_bus(self.rank_to_bus[d.rank])
        if bus.earliest_start(t_data, req.kind, d.rank) != t_data:
            return False
        return self.channel.cmd_bus.earliest_slot(now) == now

    # --- completion ------------------------------------------------------

    def _complete(self, req: MemoryRequest, data_start: int, end: int) -> None:
        req.data_start_time = data_start
        req.completion_time = end
        # Conventional critical-word-first on the bus: the requested word
        # is transferred in the first beat of the (reordered) burst.
        beat = max(1, self.timing.t_burst // WORDS_PER_LINE)
        req.critical_word_time = data_start + beat
        if req.is_read:
            self.stats.reads_done += 1
            if req.is_prefetch:
                self.stats.prefetches_done += 1
            self.stats.sum_queue_latency += req.queue_latency
            self.stats.sum_core_latency += req.core_latency
            self.stats.sum_total_latency += req.total_latency
            self.stats.sum_critical_latency += req.critical_word_time - req.arrival_time
            self._h_queue_lat.observe(req.queue_latency)
            self._h_critical_lat.observe(
                req.critical_word_time - req.arrival_time)
            self._h_total_lat.observe(req.total_latency)
            if req.on_critical_word is not None:
                self.events.schedule(req.critical_word_time,
                                     lambda r=req: r.on_critical_word(r.critical_word_time))
        else:
            self.stats.writes_done += 1
        self.tracer.record_request(req, self.name)
        if req.on_complete is not None:
            self.events.schedule(end, lambda r=req: r.on_complete(r.completion_time))

    # ------------------------------------------------------------------
    # Refresh and power-down
    # ------------------------------------------------------------------

    def _service_refresh(self, now: int) -> None:
        if not self.config.refresh_enabled:
            return
        for i, rank in enumerate(self.ranks):
            if now < self._next_refresh[i]:
                continue
            self._refresh_pending[i] = True
            # Close any open banks as they become precharge-legal.
            all_idle = True
            for bank in rank.banks:
                if bank.state is BankState.ACTIVE:
                    if bank.can_precharge(now):
                        bank.precharge(now)
                    else:
                        all_idle = False
            if not all_idle:
                continue
            if now < rank.wake_time:
                continue
            until = now + self.timing.t_rfc
            for bank in rank.banks:
                bank.refresh_block(now, until)
            rank.touch(now)
            self._next_refresh[i] = max(self._next_refresh[i] + self.timing.t_refi,
                                        now + self.timing.t_refi // 2)
            self._refresh_pending[i] = False
            self.stats.refreshes += 1
            self._c_refreshes.inc()

    def _try_powerdown(self, now: int) -> None:
        if not self.config.aggressive_powerdown:
            return
        # Only sleep ranks with no queued work targeting them.
        busy_ranks = {r.decoded.rank for r in self.read_queue}
        busy_ranks.update(r.decoded.rank for r in self.write_queue)
        threshold = self.config.powerdown_idle_threshold
        for i, rank in enumerate(self.ranks):
            if i in busy_ranks:
                continue
            # Close rows that have idled past the threshold so the rank
            # can reach precharge power-down (open-page otherwise pins
            # banks active forever).
            for bank in rank.banks:
                if (bank.state is BankState.ACTIVE
                        and now - bank.last_use >= threshold
                        and bank.can_precharge(now)):
                    bank.precharge(now)
            rank.try_power_down(now, threshold)

    def _earliest_progress_time(self, now: int, req: MemoryRequest) -> int:
        """Lower bound on when ``req``'s next command could become legal."""
        d = req.decoded
        rank = self.ranks[d.rank]
        bank = rank.banks[d.bank]
        if self.device.page_policy is PagePolicy.CLOSE:
            return max(bank.next_activate, rank.wake_time,
                       rank.next_act_allowed)
        if bank.is_row_hit(d.row):
            col = bank.next_read if req.is_read else bank.next_write
            return max(col, rank.wake_time)
        if bank.state is BankState.ACTIVE:
            return max(bank.next_precharge, rank.wake_time)
        return max(bank.next_activate, rank.earliest_activate(now))
