"""Analytic latency validation (DRAMSim-style sanity checks).

A cycle-level model earns trust by matching hand-computable cases. This
module derives the *expected* unloaded latencies for each device family
straight from the timing parameters and compares them against what the
simulator actually produces for a single isolated request — the same
methodology DRAM simulators use to validate against datasheets.

Run it directly::

    python -m repro.validate

or programmatically via :func:`validate_all`, which returns a list of
:class:`ValidationCheck` rows (used by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import (
    DDR3_DEVICE,
    DeviceConfig,
    LPDDR2_DEVICE,
    PagePolicy,
    RLDRAM3_DEVICE,
)
from repro.dram.request import DecodedAddress, MemoryRequest, RequestKind
from repro.dram.timing import TimingSet
from repro.util.events import EventQueue


@dataclass
class ValidationCheck:
    """One analytic-vs-simulated comparison."""

    name: str
    expected_cycles: int
    measured_cycles: int

    @property
    def ok(self) -> bool:
        return self.expected_cycles == self.measured_cycles

    def __str__(self) -> str:
        flag = "OK " if self.ok else "FAIL"
        return (f"[{flag}] {self.name}: expected {self.expected_cycles}, "
                f"measured {self.measured_cycles}")


def _single_read(device: DeviceConfig, row: int = 0,
                 warm_row: int = None) -> MemoryRequest:
    """Run one isolated read (optionally with a row pre-opened)."""
    events = EventQueue()
    timing = TimingSet(device.timing)
    channel = Channel(timing)
    mc = MemoryController(device=device, timing=timing, channel=channel,
                          num_ranks=1, events=events,
                          config=ControllerConfig(refresh_enabled=False))
    if warm_row is not None:
        warm = MemoryRequest(kind=RequestKind.READ, address=0,
                             decoded=DecodedAddress(0, 0, 0, warm_row, 0))
        mc.enqueue(warm)
        done = []
        warm.on_complete = lambda t: done.append(t)
        while not done:
            events.step()
    request = MemoryRequest(kind=RequestKind.READ, address=0,
                            decoded=DecodedAddress(0, 0, 0, row, 1))
    start = events.now
    mc.enqueue(request)
    done = []
    request.on_complete = lambda t: done.append(t)
    while not done:
        events.step()
    request.arrival_time = start
    return request


def validate_device(device: DeviceConfig) -> List[ValidationCheck]:
    """Unloaded-latency checks for one device family.

    The analytic model includes two real controller effects: commands
    issue on bus-clock boundaries (issue quantization), and a precharge
    must respect the residual tRAS of the row opened by the warm-up
    access.
    """
    timing = TimingSet(device.timing)
    checks: List[ValidationCheck] = []

    def align(t: int) -> int:
        """Next bus-clock edge at or after ``t`` (command issue)."""
        bus = timing.bus_cycle
        return ((t + bus - 1) // bus) * bus

    # Row-miss (empty bank) read at t=0: ACT at 0, CAS at align(tRCD).
    req = _single_read(device, row=5)
    expected = align(timing.t_rcd) + timing.t_rl + timing.t_burst
    checks.append(ValidationCheck(
        name=f"{device.part_number} empty-bank read",
        expected_cycles=expected,
        measured_cycles=req.completion_time - req.arrival_time))

    # Row-hit read (open-page devices only): CAS on the next bus edge.
    if device.page_policy is PagePolicy.OPEN:
        req = _single_read(device, row=5, warm_row=5)
        arrival = req.arrival_time
        expected = (align(arrival) - arrival) + timing.t_rl + timing.t_burst
        checks.append(ValidationCheck(
            name=f"{device.part_number} row-hit read",
            expected_cycles=expected,
            measured_cycles=req.completion_time - req.arrival_time))

        # Row-conflict read: PRE (waiting out the warm row's tRAS) +
        # tRP + tRCD + tRL + burst, each command on a bus edge.
        req = _single_read(device, row=6, warm_row=5)
        arrival = req.arrival_time
        warm_act_time = 0  # the warm-up ACT issued at t=0
        t_pre = align(max(arrival, warm_act_time + timing.t_ras))
        t_act = align(t_pre + timing.t_rp)
        t_cas = align(t_act + timing.t_rcd)
        expected = t_cas + timing.t_rl + timing.t_burst - arrival
        checks.append(ValidationCheck(
            name=f"{device.part_number} row-conflict read",
            expected_cycles=expected,
            measured_cycles=req.completion_time - req.arrival_time))

    # Critical word rides the first beat of the burst.
    req = _single_read(device, row=7)
    beat = max(1, timing.t_burst // 8)
    checks.append(ValidationCheck(
        name=f"{device.part_number} critical-word beat",
        expected_cycles=beat,
        measured_cycles=req.critical_word_time - req.data_start_time))
    return checks


def validate_all() -> List[ValidationCheck]:
    checks: List[ValidationCheck] = []
    for device in (DDR3_DEVICE, LPDDR2_DEVICE, RLDRAM3_DEVICE):
        checks.extend(validate_device(device))
    return checks


def main() -> int:
    checks = validate_all()
    for check in checks:
        print(check)
    failures = [c for c in checks if not c.ok]
    print(f"\n{len(checks) - len(failures)}/{len(checks)} checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
