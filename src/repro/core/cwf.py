"""Critical-word-first heterogeneous memory (paper Section 4.2).

Organisation (the optimised design of Fig 5c):

* **Bulk side** — four 64-bit channels of low-power (or DDR3) DIMMs,
  each a single rank of 8 chips holding words 1-7 plus the line's SECDED
  ECC; open-page policy; aggressive power-down on LPDRAM.
* **Fast side** — one aggregated critical-word channel: four 9-bit data
  sub-channels, each a single-chip x9 RLDRAM3 rank holding word-0 (or
  the adaptively chosen word) plus byte parity, all sharing one
  double-data-rate address/command bus (rank subsetting; the 4:1
  data:command ratio makes the sharing safe, Sec 4.2.4). Close-page.

An LLC miss creates one MSHR entry and **two** DRAM requests. The fast
part usually returns tens of CPU cycles earlier because the RLDRAM
channel has its own controller with shallow queues and a 12 ns tRC; if
it carries the requested word (and passes byte parity), the stalled
instruction wakes immediately, long before the bulk part lands. If the
requested word lives in the bulk part, the bulk burst is reordered to
deliver it first (conventional CWF). The fill — caches populated, MSHR
freed — completes when both parts have arrived.

Placement policies (Sec 4.2.2 / 4.2.5 / Sec 6.1.1 controls):

* ``STATIC`` — word 0 always lives on the fast DIMM.
* ``ADAPTIVE`` — each line's last observed critical word is placed on
  the fast DIMM when a dirty line is written back (3-bit tag per line).
* ``ORACLE`` — every critical word is served at fast-DIMM latency
  (upper bound, "RL OR").
* ``RANDOM`` — a hash-stable random word per line (sanity control: the
  critical word is 7x more likely to be in the slow DIMM).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import (
    DDR3_DEVICE,
    DeviceConfig,
    DRAMKind,
    LPDDR2_DEVICE,
    PagePolicy,
    RLDRAM3_DEVICE,
)
from repro.dram.request import (
    DecodedAddress,
    LINE_BYTES,
    MemoryRequest,
    RequestKind,
    WORDS_PER_LINE,
)
from repro.dram.timing import TimingSet
from repro.core.ecc import FaultInjector
from repro.memsys.base import MemorySystem, MemorySystemStats
from repro.dram.power import ChipActivity
from repro.util.events import EventQueue

# A DDR3 part used as the critical-word store in the DL configuration:
# x9 (8 data bits + parity), close-page, auto-precharge style operation.
DDR3_FAST_DEVICE = DeviceConfig(
    kind=DRAMKind.DDR3,
    part_number="MT41J256M8-x9-critical",
    timing=DDR3_DEVICE.timing,
    capacity_mbit=2304,
    data_width_bits=9,
    num_banks=8,
    num_rows=32768,
    num_cols=1024,
    page_policy=PagePolicy.CLOSE,
    single_command_addressing=False,
)


class CWFPolicy(enum.Enum):
    STATIC = "static"
    ADAPTIVE = "adaptive"
    ORACLE = "oracle"
    RANDOM = "random"


class HeteroPair(enum.Enum):
    """The paper's three evaluated configurations (Sec 6.1.1)."""

    RD = "rd"   # RLDRAM3 critical + DDR3 bulk
    RL = "rl"   # RLDRAM3 critical + LPDDR2 bulk
    DL = "dl"   # DDR3 critical + LPDDR2 bulk


_PAIR_DEVICES = {
    HeteroPair.RD: (RLDRAM3_DEVICE, DDR3_DEVICE),
    HeteroPair.RL: (RLDRAM3_DEVICE, LPDDR2_DEVICE),
    HeteroPair.DL: (DDR3_FAST_DEVICE, LPDDR2_DEVICE),
}


@dataclass(frozen=True)
class CWFConfig:
    """Geometry of the optimised CWF system (paper Fig 5c)."""

    pair: HeteroPair = HeteroPair.RL
    policy: CWFPolicy = CWFPolicy.STATIC
    num_bulk_channels: int = 4
    bulk_devices_per_rank: int = 8    # words 1-7 + ECC
    # Four single-chip x9 ranks per sub-channel (paper Sec 4.2.4: one
    # RLDRAM chip has 1/4 the capacity of a DDR3/LPDRAM chip).
    fast_ranks_per_subchannel: int = 4
    cpu_freq_ghz: float = 3.2
    parity_error_rate: float = 0.0    # fast-part parity failures (Sec 4.2.3)
    # Aggregate the four fast sub-channels behind one shared cmd bus
    # (Fig 5c). False models the unoptimised per-channel design (Fig 5b).
    shared_command_bus: bool = True

    @property
    def fast_device(self) -> DeviceConfig:
        return _PAIR_DEVICES[self.pair][0]

    @property
    def bulk_device(self) -> DeviceConfig:
        return _PAIR_DEVICES[self.pair][1]


_RANDOM_HASH_MULT = 0x9E3779B97F4A7C15


class _CWFReadTxn:
    """Per-read transaction joining the fast and bulk halves of a line.

    Slotted class with bound-method callbacks instead of closures so an
    in-flight split read survives pickling when the simulator is
    checkpointed mid-run. Semantics are unchanged: the CPU wakes once
    (fast part if it covers the word and passes parity, else the bulk
    critical burst, else with the full line on a parity deferral), and
    the fill completes when both parts have arrived.
    """

    __slots__ = ("memory", "start", "covers", "parity_ok", "is_prefetch",
                 "on_critical", "on_complete", "fast_end", "bulk_end",
                 "woken")

    def __init__(self, memory: "CriticalWordMemory", start: int,
                 covers: bool, parity_ok: bool, is_prefetch: bool,
                 on_critical: Callable[[int], None],
                 on_complete: Callable[[int], None]) -> None:
        self.memory = memory
        self.start = start
        self.covers = covers
        self.parity_ok = parity_ok
        self.is_prefetch = is_prefetch
        self.on_critical = on_critical
        self.on_complete = on_complete
        self.fast_end: Optional[int] = None
        self.bulk_end: Optional[int] = None
        self.woken = False

    def _wake(self, t: int, from_fast: bool) -> None:
        if self.woken:
            return
        self.woken = True
        memory = self.memory
        if not self.is_prefetch:
            memory.stats.sum_critical_latency += t - self.start
            if from_fast:
                memory.stats.critical_served_fast += 1
            else:
                memory.stats.critical_served_slow += 1
            if memory._telemetry_attached:
                memory._h_critical.observe(t - self.start)
                (memory._c_fast if from_fast else memory._c_slow).inc()
        self.on_critical(t)

    def _check_complete(self) -> None:
        fast_end = self.fast_end
        bulk_end = self.bulk_end
        if fast_end is None or bulk_end is None:
            return
        t = fast_end if fast_end >= bulk_end else bulk_end
        if not self.woken:
            # Parity deferral: data released only with the full line.
            self._wake(t, from_fast=False)
        memory = self.memory
        memory.stats.sum_fill_latency += t - self.start
        if memory._telemetry_attached:
            memory._h_fill.observe(t - self.start)
        self.on_complete(t)

    def fast_done(self, t: int) -> None:
        self.fast_end = t
        if self.covers and self.parity_ok:
            self._wake(t, from_fast=True)
        self._check_complete()

    def bulk_critical(self, t: int) -> None:
        if not self.covers:
            self._wake(t, from_fast=False)

    def bulk_done(self, t: int) -> None:
        self.bulk_end = t
        self._check_complete()


class CriticalWordMemory(MemorySystem):
    """The heterogeneous CWF main memory."""

    def __init__(self, events: EventQueue, config: CWFConfig = CWFConfig(),
                 bulk_controller_config: Optional[ControllerConfig] = None,
                 fast_controller_config: Optional[ControllerConfig] = None,
                 tag_seeder: Optional[Callable[[int], int]] = None) -> None:
        self.events = events
        self.config = config
        bulk_dev = config.bulk_device
        fast_dev = config.fast_device
        self.bulk_timing = TimingSet(bulk_dev.timing, config.cpu_freq_ghz)
        self.fast_timing = TimingSet(fast_dev.timing, config.cpu_freq_ghz)
        self.bulk_mapper = AddressMapper(
            device=bulk_dev, num_channels=config.num_bulk_channels,
            ranks_per_channel=1, devices_per_rank=config.bulk_devices_per_rank,
            scheme=MappingScheme.OPEN_PAGE)

        bulk_cc = bulk_controller_config or ControllerConfig(
            aggressive_powerdown=(bulk_dev.kind is DRAMKind.LPDDR2))
        self.bulk_channels: List[Channel] = []
        self.bulk_controllers: List[MemoryController] = []
        for i in range(config.num_bulk_channels):
            channel = Channel(self.bulk_timing, num_data_buses=1, index=i)
            self.bulk_channels.append(channel)
            self.bulk_controllers.append(MemoryController(
                device=bulk_dev, timing=self.bulk_timing, channel=channel,
                num_ranks=1, events=events, config=bulk_cc,
                name=f"bulk-{bulk_dev.kind.value}-ch{i}"))

        fast_cc = fast_controller_config or ControllerConfig()
        n_sub = config.num_bulk_channels
        ranks_per_sub = config.fast_ranks_per_subchannel
        if config.shared_command_bus:
            # One aggregated channel (Fig 5c): 4 x 9-bit data sub-buses,
            # each carrying 4 single-chip ranks, all behind one dual-
            # pumped command bus — 16 x9 chips total.
            channel = Channel(self.fast_timing, num_data_buses=n_sub,
                              cmd_slots_per_cycle=2, index=0)
            self.fast_channels = [channel]
            self.fast_controllers = [MemoryController(
                device=fast_dev, timing=self.fast_timing, channel=channel,
                num_ranks=n_sub * ranks_per_sub, events=events,
                config=fast_cc,
                rank_to_bus={i: i // ranks_per_sub
                             for i in range(n_sub * ranks_per_sub)},
                name=f"fast-{fast_dev.kind.value}")]
        else:
            # Unoptimised design (Fig 5b): one controller per sub-channel.
            self.fast_channels = []
            self.fast_controllers = []
            for i in range(n_sub):
                channel = Channel(self.fast_timing, num_data_buses=1, index=i)
                self.fast_channels.append(channel)
                self.fast_controllers.append(MemoryController(
                    device=fast_dev, timing=self.fast_timing, channel=channel,
                    num_ranks=ranks_per_sub, events=events, config=fast_cc,
                    name=f"fast-{fast_dev.kind.value}-ch{i}"))

        self.stats = MemorySystemStats()
        self._tags: Dict[int, int] = {}   # adaptive per-line critical word
        # Fallback for lines not yet written during the measured window
        # (models the warm state after the paper's fast-forward).
        self._tag_seeder = tag_seeder
        self.fault_injector = FaultInjector(config.parity_error_rate)
        self.parity_deferrals = 0
        # Hot-path flattening: issue_read/issue_write run once per LLC
        # miss, and every geometry constant below is frozen after
        # construction (CWFConfig and DeviceConfig are frozen dataclasses).
        self._policy = config.policy
        self._rps = config.fast_ranks_per_subchannel
        self._nch = config.num_bulk_channels
        self._lpr = self.bulk_mapper.lines_per_row
        self._fd_banks = fast_dev.num_banks
        self._fd_rows = fast_dev.num_rows
        self._fd_cols = fast_dev.num_cols
        self._shared_cmd = config.shared_command_bus

    # ------------------------------------------------------------------
    # Placement policy
    # ------------------------------------------------------------------

    def fast_word(self, line_address: int) -> int:
        """Which word of the line currently lives on the fast DIMM."""
        policy = self._policy
        if policy is CWFPolicy.STATIC or policy is CWFPolicy.ORACLE:
            return 0
        if policy is CWFPolicy.ADAPTIVE:
            tag = self._tags.get(line_address)
            if tag is not None:
                return tag
            if self._tag_seeder is not None:
                return self._tag_seeder(line_address)
            return 0
        # RANDOM: stable per line, uniform over the 8 words.
        h = (line_address * _RANDOM_HASH_MULT) & ((1 << 64) - 1)
        return (h >> 40) % WORDS_PER_LINE

    def _covers(self, line_address: int, critical_word: int) -> bool:
        if self._policy is CWFPolicy.ORACLE:
            return True
        return self.fast_word(line_address) == critical_word

    # ------------------------------------------------------------------
    # Address mapping for the fast side
    # ------------------------------------------------------------------

    def _fast_decode(self, line_address: int,
                     d_bulk: Optional[DecodedAddress] = None) -> DecodedAddress:
        """Locate a line's critical word on the fast side.

        Sub-channel = the line's bulk channel, so both parts of a line
        always travel through their own dedicated resources. Within the
        sub-channel, lines interleave across the four single-chip ranks,
        then across the chip's banks (close-page mapping). Callers that
        already decoded the bulk side pass ``d_bulk`` to avoid a second
        mapper decode per request.
        """
        if d_bulk is None:
            d_bulk = self.bulk_mapper.decode(line_address * LINE_BYTES)
        rps = self._rps
        # Index of this line within its bulk channel (the open-page map
        # interleaves channels at row granularity, not line granularity).
        lpr = self._lpr
        within = ((line_address // (lpr * self._nch)) * lpr
                  + line_address % lpr)
        sub_rank = within % rps
        rest = within // rps
        bank = rest % self._fd_banks
        rest //= self._fd_banks
        row = rest % self._fd_rows
        column = (rest // self._fd_rows) % self._fd_cols
        if self._shared_cmd:
            return DecodedAddress(channel=0,
                                  rank=d_bulk.channel * rps + sub_rank,
                                  bank=bank, row=row, column=column)
        return DecodedAddress(channel=d_bulk.channel, rank=sub_rank,
                              bank=bank, row=row, column=column)

    def _fast_controller(self, decoded: DecodedAddress) -> MemoryController:
        return self.fast_controllers[decoded.channel]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def issue_read(self, line_address: int, critical_word: int, core_id: int,
                   is_prefetch: bool,
                   on_critical: Callable[[int], None],
                   on_complete: Callable[[int], None]) -> bool:
        address = line_address * LINE_BYTES
        bulk_decoded = self.bulk_mapper.decode(address)
        fast_decoded = self._fast_decode(line_address, bulk_decoded)
        bulk_mc = self.bulk_controllers[bulk_decoded.channel]
        fast_mc = self._fast_controller(fast_decoded)
        if bulk_mc.read_queue_free <= 0 or fast_mc.read_queue_free <= 0:
            return False

        start = self.events.now
        covers = self._covers(line_address, critical_word)
        parity_ok = (not covers) or self.fault_injector.fast_part_ok()
        if covers and not parity_ok:
            self.parity_deferrals += 1
        txn = _CWFReadTxn(self, start, covers, parity_ok, is_prefetch,
                          on_critical, on_complete)

        fast_req = MemoryRequest(
            kind=RequestKind.READ, address=address, critical_word=0,
            is_prefetch=is_prefetch, core_id=core_id, decoded=fast_decoded,
            on_complete=txn.fast_done)
        bulk_req = MemoryRequest(
            kind=RequestKind.READ, address=address,
            critical_word=critical_word, is_prefetch=is_prefetch,
            core_id=core_id, decoded=bulk_decoded,
            on_critical_word=txn.bulk_critical, on_complete=txn.bulk_done)
        # Both queues were checked above; enqueue cannot fail here.
        if not fast_mc.enqueue(fast_req) or not bulk_mc.enqueue(bulk_req):
            raise RuntimeError("CWF enqueue failed after capacity check")
        self.stats.reads += 1
        if not is_prefetch:
            self.stats.demand_reads += 1
        if self._telemetry_attached:
            self._c_reads.inc()
            if not is_prefetch:
                self._c_demand_reads.inc()
        return True

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def issue_write(self, line_address: int, critical_word_tag: int,
                    core_id: int) -> bool:
        address = line_address * LINE_BYTES
        bulk_decoded = self.bulk_mapper.decode(address)
        fast_decoded = self._fast_decode(line_address, bulk_decoded)
        bulk_mc = self.bulk_controllers[bulk_decoded.channel]
        fast_mc = self._fast_controller(fast_decoded)
        if bulk_mc.write_queue_free <= 0 or fast_mc.write_queue_free <= 0:
            return False
        if self._policy is CWFPolicy.ADAPTIVE:
            # Dirty writeback re-organises the line (Sec 4.2.5).
            self._tags[line_address] = critical_word_tag
        bulk_req = MemoryRequest(kind=RequestKind.WRITE, address=address,
                                 core_id=core_id, decoded=bulk_decoded)
        fast_req = MemoryRequest(kind=RequestKind.WRITE, address=address,
                                 core_id=core_id, decoded=fast_decoded)
        if not bulk_mc.enqueue(bulk_req) or not fast_mc.enqueue(fast_req):
            raise RuntimeError("CWF write enqueue failed after capacity check")
        self.stats.writes += 1
        if self._telemetry_attached:
            self._c_writes.inc()
        return True

    # ------------------------------------------------------------------
    # Roll-ups
    # ------------------------------------------------------------------

    def telemetry_controllers(self) -> List[MemoryController]:
        return self.bulk_controllers + self.fast_controllers

    def finalize(self) -> None:
        for mc in self.bulk_controllers + self.fast_controllers:
            mc.finalize()

    def bus_utilization(self, elapsed_cycles: int) -> float:
        chans = self.bulk_channels
        return sum(c.utilization(elapsed_cycles) for c in chans) / len(chans)

    def chip_activities(self, elapsed_cycles: int) -> Dict[str, List[ChipActivity]]:
        self.finalize()
        ghz = self.config.cpu_freq_ghz
        to_ns = lambda c: c / ghz  # noqa: E731
        elapsed_ns = max(1.0, to_ns(elapsed_cycles))
        out: Dict[str, List[ChipActivity]] = {}

        def collect(controllers, t_burst_ns, chips_per_rank, key):
            acts = out.setdefault(key, [])
            for mc in controllers:
                for rank in mc.ranks:
                    tally = rank.finalize_tally(self.events.now)
                    reads, writes = rank.read_count, rank.write_count
                    activity = ChipActivity(
                        elapsed_ns=elapsed_ns,
                        activates=rank.activate_count,
                        reads=reads, writes=writes,
                        read_bus_ns=reads * t_burst_ns,
                        write_bus_ns=writes * t_burst_ns,
                        active_standby_ns=to_ns(tally.active),
                        precharge_standby_ns=to_ns(tally.standby),
                        power_down_ns=to_ns(tally.power_down),
                        self_refresh_ns=to_ns(tally.self_refresh))
                    acts.extend([activity] * chips_per_rank)

        bulk_key = f"bulk:{self.config.bulk_device.kind.value}"
        fast_key = f"fast:{self.config.fast_device.kind.value}"
        collect(self.bulk_controllers, self.config.bulk_device.timing.t_burst,
                self.config.bulk_devices_per_rank, bulk_key)
        collect(self.fast_controllers, self.config.fast_device.timing.t_burst,
                1, fast_key)
        return out

    # --- latency views ---------------------------------------------------
    # Protocol overrides: the bulk side carries the line fill, so the
    # queue/core views report bulk controllers only (the fast channel's
    # shallow queues would dilute the Fig 1b comparison).

    def avg_queue_latency(self) -> float:
        done = sum(c.stats.reads_done for c in self.bulk_controllers)
        if not done:
            return 0.0
        return sum(c.stats.sum_queue_latency
                   for c in self.bulk_controllers) / done

    def avg_core_latency(self) -> float:
        done = sum(c.stats.reads_done for c in self.bulk_controllers)
        if not done:
            return 0.0
        return sum(c.stats.sum_core_latency
                   for c in self.bulk_controllers) / done

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update({
            "organisation": "critical-word-first",
            "pair": self.config.pair.value,
            "policy": self.config.policy.value,
            "fast_device": self.config.fast_device.part_number,
            "bulk_device": self.config.bulk_device.part_number,
            "num_bulk_channels": self.config.num_bulk_channels,
            "shared_command_bus": self.config.shared_command_bus,
        })
        return info
