"""The paper's contribution: critical-word-first heterogeneous memory.

* :mod:`repro.core.cwf` — the Static/Adaptive/Oracle/Random CWF
  organisations (RD, RL, DL configurations, Sec 4.2).
* :mod:`repro.core.criticality` — the critical-word profiler behind
  Figures 3 and 4.
* :mod:`repro.core.placement` — the page-placement alternative of
  Section 7.1 (Phadke-style offline profiling).
* :mod:`repro.core.ecc` — SECDED + byte-parity codes and the
  wake-before-check protocol of Section 4.2.3.
"""

from repro.core.cwf import (
    CriticalWordMemory,
    CWFConfig,
    CWFPolicy,
    HeteroPair,
)
from repro.core.criticality import CriticalityProfiler
from repro.core.placement import PagePlacementMemory, PagePlacementConfig
from repro.core.ecc import SECDED, byte_parity, FaultInjector
from repro.core.hmc import build_hmc_memory
from repro.core.chipkill import ChipkillCode

__all__ = [
    "CriticalWordMemory", "CWFConfig", "CWFPolicy", "HeteroPair",
    "CriticalityProfiler",
    "PagePlacementMemory", "PagePlacementConfig",
    "SECDED", "byte_parity", "FaultInjector", "ChipkillCode",
    "build_hmc_memory",
]
