"""Critical-word profiling (paper Figures 3 and 4, and the Appendix).

The profiler observes every demand LLC miss — the events whose requested
word is, by definition, the cache line's *critical word* at the DRAM
level — and accumulates:

* a global histogram of critical words (Fig 4: fraction of fetches whose
  critical word is word 0, word 1, ...),
* per-line histograms (Fig 3: for the most-accessed lines, the
  distribution of which word was critical), and
* the adaptive-predictor hit rate: how often the critical word of a
  fetch equals the critical word of the line's *previous* fetch
  (the 79 % the paper reports for adaptive placement, vs. 67 % static).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.dram.request import WORDS_PER_LINE


@dataclass
class LineHistogram:
    """Access counts per word for one cache line."""

    line_address: int
    counts: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> List[float]:
        total = self.total
        return [self.counts.get(w, 0) / total if total else 0.0
                for w in range(WORDS_PER_LINE)]

    def dominant_word(self) -> int:
        if not self.counts:
            return 0
        return self.counts.most_common(1)[0][0]


class CriticalityProfiler:
    """Attach via ``uncore.demand_miss_observer = profiler.observe``."""

    def __init__(self) -> None:
        self.global_counts: Counter = Counter()
        self.per_line: Dict[int, Counter] = defaultdict(Counter)
        self._last_word: Dict[int, int] = {}
        self.total = 0
        self.static_hits = 0     # critical word == 0
        self.repeat_hits = 0     # critical word == previous fetch's word
        self.repeat_total = 0

    def observe(self, core_id: int, line_address: int,
                critical_word: int) -> None:
        self.total += 1
        self.global_counts[critical_word] += 1
        self.per_line[line_address][critical_word] += 1
        if critical_word == 0:
            self.static_hits += 1
        previous = self._last_word.get(line_address)
        if previous is not None:
            self.repeat_total += 1
            if previous == critical_word:
                self.repeat_hits += 1
        self._last_word[line_address] = critical_word

    # ------------------------------------------------------------------

    def distribution(self) -> List[float]:
        """Fraction of fetches per critical word (Fig 4, one bar group)."""
        if not self.total:
            return [0.0] * WORDS_PER_LINE
        return [self.global_counts.get(w, 0) / self.total
                for w in range(WORDS_PER_LINE)]

    @property
    def word0_fraction(self) -> float:
        return self.static_hits / self.total if self.total else 0.0

    @property
    def repeat_fraction(self) -> float:
        """Adaptive-predictor upper bound (last word predicts next)."""
        if not self.repeat_total:
            return self.word0_fraction
        return self.repeat_hits / self.repeat_total

    def top_lines(self, n: int = 10) -> List[LineHistogram]:
        """Most-fetched lines with their word histograms (Fig 3)."""
        ranked = sorted(self.per_line.items(),
                        key=lambda kv: sum(kv[1].values()), reverse=True)
        return [LineHistogram(line_address=line, counts=Counter(counts))
                for line, counts in ranked[:n]]

    def per_line_dominance(self) -> float:
        """Mean fraction of each line's fetches going to its dominant
        word — the "well-defined bias" of Fig 3."""
        if not self.per_line:
            return 0.0
        fractions = []
        for counts in self.per_line.values():
            total = sum(counts.values())
            if total >= 2:
                fractions.append(counts.most_common(1)[0][1] / total)
        if not fractions:
            return 1.0
        return sum(fractions) / len(fractions)
