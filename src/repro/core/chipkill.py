"""Chipkill-class symbol error correction (paper Sec 4.2.3 extension).

The paper notes that its lightweight-detection / full-correction split
"can also be extended to handle other fault tolerance solutions such as
chipkill". Chipkill treats each DRAM chip's contribution to a beat as
one *symbol* and corrects the loss of an entire chip. This module
implements the standard construction: a distance-3 Reed-Solomon code
over GF(2^8) with two check symbols — RS(n, n-2) — which corrects any
single symbol (= single chip) error per codeword.

For the paper's 8-chip LPDRAM rank, a beat contributes 8 data symbols;
two additional check symbols would ride on two extra chips (the
baseline's ECC chip plus one more — the standard chipkill capacity
cost). The CWF protocol is unchanged: the RLDRAM fast word still uses
byte parity for the early wake, and the trailing chipkill check
corrects/panics exactly like SECDED, with chip-granularity coverage.

Implementation notes: GF(2^8) with the primitive polynomial 0x11D
(x^8+x^4+x^3+x^2+1, the usual Reed-Solomon choice — alpha = 2 generates
the multiplicative group, unlike the AES polynomial); syndromes
``S0 = Σ c_i`` and ``S1 = Σ c_i·α^i``; a single error of magnitude
``e`` at position ``j`` gives ``S0 = e`` and ``S1 = e·α^j``, so
``j = log(S1) − log(S0)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1; alpha = 0x02 is primitive

_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256


def _build_tables() -> None:
    value = 1
    for i in range(255):
        _EXP[i] = value
        _LOG[value] = i
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide in GF(2^8); b must be non-zero."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % 255]


def gf_pow_alpha(i: int) -> int:
    """alpha^i for the generator alpha = 0x02."""
    return _EXP[i % 255]


class ChipkillCode:
    """RS(n, n-2) over GF(2^8): corrects one symbol (chip) per codeword.

    ``data_symbols`` is the number of data chips contributing to a beat
    (8 for the paper's 64-bit rank). The codeword appends two check
    symbols; total length must stay <= 255.
    """

    def __init__(self, data_symbols: int = 8) -> None:
        if not 1 <= data_symbols <= 253:
            raise ValueError("data_symbols must be in 1..253")
        self.data_symbols = data_symbols
        self.codeword_symbols = data_symbols + 2

    # ------------------------------------------------------------------

    def encode(self, data: List[int]) -> List[int]:
        """Append two check symbols so that S0 = S1 = 0."""
        if len(data) != self.data_symbols:
            raise ValueError(f"need {self.data_symbols} symbols")
        if any(not 0 <= s <= 0xFF for s in data):
            raise ValueError("symbols must be bytes")
        n = self.codeword_symbols
        p_pos, q_pos = n - 2, n - 1
        s0 = 0
        s1 = 0
        for i, symbol in enumerate(data):
            s0 ^= symbol
            s1 ^= gf_mul(symbol, gf_pow_alpha(i))
        # Solve p + q = s0 ; p*a^p_pos + q*a^q_pos = s1.
        ap, aq = gf_pow_alpha(p_pos), gf_pow_alpha(q_pos)
        denom = ap ^ aq
        p = gf_div(s1 ^ gf_mul(s0, aq), denom)
        q = s0 ^ p
        return list(data) + [p, q]

    # ------------------------------------------------------------------

    def syndromes(self, codeword: List[int]) -> Tuple[int, int]:
        s0 = 0
        s1 = 0
        for i, symbol in enumerate(codeword):
            s0 ^= symbol
            s1 ^= gf_mul(symbol, gf_pow_alpha(i))
        return s0, s1

    def decode(self, codeword: List[int]
               ) -> Tuple[Optional[List[int]], str]:
        """Correct up to one symbol error.

        Returns ``(data, status)``; status is ``"ok"``, ``"corrected"``
        (with the failing symbol index recoverable from the syndromes),
        or ``"detected"`` for uncorrectable (multi-symbol) corruption.
        """
        if len(codeword) != self.codeword_symbols:
            raise ValueError(f"need {self.codeword_symbols} symbols")
        s0, s1 = self.syndromes(codeword)
        if s0 == 0 and s1 == 0:
            return list(codeword[:self.data_symbols]), "ok"
        if s0 == 0 or s1 == 0:
            # A single error always produces two non-zero syndromes.
            return None, "detected"
        position = (_LOG[s1] - _LOG[s0]) % 255
        if position >= self.codeword_symbols:
            return None, "detected"
        corrected = list(codeword)
        corrected[position] ^= s0
        # Verify: residual syndromes must vanish.
        if self.syndromes(corrected) != (0, 0):
            return None, "detected"
        return corrected[:self.data_symbols], "corrected"

    # ------------------------------------------------------------------

    def kill_chip(self, codeword: List[int], chip: int,
                  garbage: int = 0xFF) -> List[int]:
        """Simulate a whole-chip failure (symbol replaced by garbage)."""
        if not 0 <= chip < self.codeword_symbols:
            raise ValueError("chip index out of range")
        out = list(codeword)
        out[chip] ^= garbage or 0xA5
        return out

    @property
    def storage_overhead(self) -> float:
        """Extra capacity vs data (2 chips over ``data_symbols``)."""
        return 2.0 / self.data_symbols
