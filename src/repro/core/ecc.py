"""Error protection for the CWF memory (paper Section 4.2.3).

The baseline protects each 64-bit word with SECDED (a (72, 64) Hamming
code with an overall parity bit): single-bit errors are corrected,
double-bit errors detected. In the CWF design the fast DIMM returns the
critical word before its ECC (which lives with the bulk part) can be
checked, so the fast part carries **byte parity** (one parity bit per
byte — the x9 chip's ninth bit). The word is forwarded to the waiting
instruction only if parity passes; on a parity error the wake is
deferred until the full line plus ECC arrives and correction runs.
Multi-bit errors that alias under parity commit an erroneous result that
the trailing SECDED check then flags (precise fail-stop), exactly the
baseline's coverage.

This module implements the real codes (used and property-tested at the
bit level) plus a probabilistic :class:`FaultInjector` the simulator
uses, since simulating data values for every access would be pointless.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

WORD_BITS = 64
_PARITY_POSITIONS = [1, 2, 4, 8, 16, 32, 64]  # within the 1-based codeword
_CODEWORD_BITS = 72  # 64 data + 7 Hamming + 1 overall parity


def _data_positions() -> list:
    """1-based codeword positions that hold data bits (non powers of 2)."""
    positions = []
    pos = 1
    while len(positions) < WORD_BITS:
        if pos & (pos - 1):  # not a power of two
            positions.append(pos)
        pos += 1
    return positions


_DATA_POSITIONS = _data_positions()


class SECDED:
    """(72, 64) Hamming SECDED code over one 64-bit word."""

    @staticmethod
    def encode(word: int) -> int:
        """Return the 72-bit codeword for ``word`` (0 <= word < 2**64)."""
        if not 0 <= word < (1 << WORD_BITS):
            raise ValueError("word out of range")
        code = 0
        for i, pos in enumerate(_DATA_POSITIONS):
            if (word >> i) & 1:
                code |= 1 << (pos - 1)
        for p in _PARITY_POSITIONS:
            parity = 0
            for pos in range(1, _CODEWORD_BITS):
                if pos & p and (code >> (pos - 1)) & 1:
                    parity ^= 1
            if parity:
                code |= 1 << (p - 1)
        overall = bin(code).count("1") & 1
        if overall:
            code |= 1 << (_CODEWORD_BITS - 1)
        return code

    @staticmethod
    def decode(code: int) -> Tuple[Optional[int], str]:
        """Decode a 72-bit codeword.

        Returns ``(word, status)`` where status is one of ``"ok"``,
        ``"corrected"``, or ``"detected"`` (uncorrectable double error,
        word is None).
        """
        syndrome = 0
        for p in _PARITY_POSITIONS:
            parity = 0
            for pos in range(1, _CODEWORD_BITS):
                if pos & p and (code >> (pos - 1)) & 1:
                    parity ^= 1
            if parity:
                syndrome |= p
        overall = bin(code).count("1") & 1

        status = "ok"
        if syndrome and overall:
            # Single-bit error at the syndrome position: correct it.
            code ^= 1 << (syndrome - 1)
            status = "corrected"
        elif syndrome and not overall:
            return None, "detected"
        elif not syndrome and overall:
            # The overall parity bit itself flipped.
            code ^= 1 << (_CODEWORD_BITS - 1)
            status = "corrected"

        word = 0
        for i, pos in enumerate(_DATA_POSITIONS):
            if (code >> (pos - 1)) & 1:
                word |= 1 << i
        return word, status


def byte_parity(word: int) -> int:
    """Even parity bit per byte of a 64-bit word (8 bits, LSB = byte 0)."""
    if not 0 <= word < (1 << WORD_BITS):
        raise ValueError("word out of range")
    out = 0
    for byte in range(8):
        b = (word >> (8 * byte)) & 0xFF
        if bin(b).count("1") & 1:
            out |= 1 << byte
    return out


def parity_check(word: int, parity: int) -> bool:
    """True if ``parity`` matches ``word`` (no detected error)."""
    return byte_parity(word) == parity


@dataclass
class FaultInjectorStats:
    checks: int = 0
    parity_errors: int = 0


class FaultInjector:
    """Probabilistic fault model for the fast-part parity check.

    The simulator does not carry data values, so parity failures are
    injected at a configurable rate (0 by default — DRAM bit-error rates
    are ~1e-17/bit; the knob exists to exercise the deferral path).
    """

    def __init__(self, parity_error_rate: float = 0.0, seed: int = 7) -> None:
        if not 0.0 <= parity_error_rate <= 1.0:
            raise ValueError("parity_error_rate must be in [0, 1]")
        self.parity_error_rate = parity_error_rate
        self._rng = random.Random(seed)
        self.stats = FaultInjectorStats()

    def fast_part_ok(self) -> bool:
        """Sample one fast-part parity check; False = error detected."""
        self.stats.checks += 1
        if self.parity_error_rate and self._rng.random() < self.parity_error_rate:
            self.stats.parity_errors += 1
            return False
        return True
