"""Page-placement heterogeneous memory (paper Section 7.1).

The comparison point for CWF: a Phadke-style design that keeps whole
pages in one DRAM flavour. The system has four 72-bit channels — three
carry 2 GB LPDDR2 DIMMs, the fourth carries 0.5 GB of RLDRAM3 — so it is
iso-pin-count and (approximately) iso-chip-count with the baseline. An
offline profile ranks pages by access count and the hottest 7.6 %
(0.5 GB / 6.5 GB) are placed in RLDRAM3; everything else lives in
LPDDR2. Whole cache lines come from a single channel — there is no
critical-word split.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.cpu.core import TraceRecord
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import LPDDR2_DEVICE, RLDRAM3_DEVICE
from repro.dram.power import ChipActivity
from repro.dram.request import (
    DecodedAddress,
    LINE_BYTES,
    MemoryRequest,
    RequestKind,
)
from repro.dram.timing import TimingSet
from repro.memsys.base import MemorySystem, MemorySystemStats
from repro.util.events import EventQueue

PAGE_LINES = 64  # 4 KB pages


def profile_page_heat(traces: Sequence[Sequence[TraceRecord]]) -> List[int]:
    """Offline profiling pass: pages ranked by access count, hot first."""
    counts: Counter = Counter()
    for trace in traces:
        for record in trace:
            counts[record.address // (PAGE_LINES * LINE_BYTES)] += 1
    return [page for page, _ in counts.most_common()]


@dataclass(frozen=True)
class PagePlacementConfig:
    """Sec 7.1 parameters."""

    hot_page_fraction: float = 0.076   # 0.5 GB of 6.5 GB
    num_lpddr_channels: int = 3
    lpddr_devices_per_rank: int = 9
    rldram_devices_per_rank: int = 8   # 8 x9 chips = 72-bit channel
    cpu_freq_ghz: float = 3.2


class PagePlacementMemory(MemorySystem):
    """Three LPDDR2 channels plus one RLDRAM3 channel, page-granular."""

    def __init__(self, events: EventQueue, page_ranking: Sequence[int],
                 config: PagePlacementConfig = PagePlacementConfig(),
                 controller_config: ControllerConfig = None) -> None:
        self.events = events
        self.config = config
        n_hot = int(len(page_ranking) * config.hot_page_fraction)
        # Slot index gives each hot page a home inside the RLDRAM space.
        self._hot_slots: Dict[int, int] = {
            page: slot for slot, page in enumerate(page_ranking[:n_hot])
        }
        self.lpddr_timing = TimingSet(LPDDR2_DEVICE.timing, config.cpu_freq_ghz)
        self.rldram_timing = TimingSet(RLDRAM3_DEVICE.timing, config.cpu_freq_ghz)
        self.lpddr_mapper = AddressMapper(
            device=LPDDR2_DEVICE, num_channels=config.num_lpddr_channels,
            ranks_per_channel=1, devices_per_rank=8,
            scheme=MappingScheme.OPEN_PAGE)

        lp_cc = controller_config or ControllerConfig(aggressive_powerdown=True)
        self.lpddr_channels: List[Channel] = []
        self.lpddr_controllers: List[MemoryController] = []
        for i in range(config.num_lpddr_channels):
            channel = Channel(self.lpddr_timing, num_data_buses=1, index=i)
            self.lpddr_channels.append(channel)
            self.lpddr_controllers.append(MemoryController(
                device=LPDDR2_DEVICE, timing=self.lpddr_timing,
                channel=channel, num_ranks=1, events=events, config=lp_cc,
                name=f"pp-lpddr2-ch{i}"))
        self.rldram_channel = Channel(self.rldram_timing, num_data_buses=1)
        self.rldram_controller = MemoryController(
            device=RLDRAM3_DEVICE, timing=self.rldram_timing,
            channel=self.rldram_channel, num_ranks=1, events=events,
            config=controller_config or ControllerConfig(),
            name="pp-rldram3")
        self.stats = MemorySystemStats()
        self.hot_accesses = 0
        self.cold_accesses = 0

    # ------------------------------------------------------------------

    def _route(self, line_address: int):
        """Returns (controller, decoded) for a line."""
        page = line_address // PAGE_LINES
        slot = self._hot_slots.get(page)
        if slot is not None:
            self.hot_accesses += 1
            line_slot = slot * PAGE_LINES + line_address % PAGE_LINES
            dev = RLDRAM3_DEVICE
            bank = line_slot % dev.num_banks
            rest = line_slot // dev.num_banks
            row = rest % dev.num_rows
            column = (rest // dev.num_rows) % dev.num_cols
            decoded = DecodedAddress(channel=0, rank=0, bank=bank, row=row,
                                     column=column)
            return self.rldram_controller, decoded
        self.cold_accesses += 1
        decoded = self.lpddr_mapper.decode(line_address * LINE_BYTES)
        return self.lpddr_controllers[decoded.channel], decoded

    def issue_read(self, line_address: int, critical_word: int, core_id: int,
                   is_prefetch: bool,
                   on_critical: Callable[[int], None],
                   on_complete: Callable[[int], None]) -> bool:
        controller, decoded = self._route(line_address)
        if controller.read_queue_free <= 0:
            return False
        start = self.events.now
        fast = controller is self.rldram_controller

        def critical_cb(t: int) -> None:
            if not is_prefetch:
                self.stats.sum_critical_latency += t - start
                if fast:
                    self.stats.critical_served_fast += 1
                else:
                    self.stats.critical_served_slow += 1
                if self._telemetry_attached:
                    self._h_critical.observe(t - start)
                    (self._c_fast if fast else self._c_slow).inc()
            on_critical(t)

        def complete_cb(t: int) -> None:
            self.stats.sum_fill_latency += t - start
            if self._telemetry_attached:
                self._h_fill.observe(t - start)
            on_complete(t)

        request = MemoryRequest(
            kind=RequestKind.READ, address=line_address * LINE_BYTES,
            critical_word=critical_word, is_prefetch=is_prefetch,
            core_id=core_id, decoded=decoded,
            on_critical_word=critical_cb, on_complete=complete_cb)
        if not controller.enqueue(request):
            return False
        self.stats.reads += 1
        if not is_prefetch:
            self.stats.demand_reads += 1
        if self._telemetry_attached:
            self._c_reads.inc()
            if not is_prefetch:
                self._c_demand_reads.inc()
        return True

    def issue_write(self, line_address: int, critical_word_tag: int,
                    core_id: int) -> bool:
        controller, decoded = self._route(line_address)
        request = MemoryRequest(kind=RequestKind.WRITE,
                                address=line_address * LINE_BYTES,
                                core_id=core_id, decoded=decoded)
        if not controller.enqueue(request):
            return False
        self.stats.writes += 1
        if self._telemetry_attached:
            self._c_writes.inc()
        return True

    # ------------------------------------------------------------------

    @property
    def _all_controllers(self) -> List[MemoryController]:
        return self.lpddr_controllers + [self.rldram_controller]

    def telemetry_controllers(self) -> List[MemoryController]:
        return self._all_controllers

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update({
            "organisation": "page-placement",
            "hot_page_fraction": self.config.hot_page_fraction,
            "hot_pages": len(self._hot_slots),
            "num_lpddr_channels": self.config.num_lpddr_channels,
        })
        return info

    def finalize(self) -> None:
        for mc in self._all_controllers:
            mc.finalize()

    def bus_utilization(self, elapsed_cycles: int) -> float:
        chans = self.lpddr_channels + [self.rldram_channel]
        return sum(c.utilization(elapsed_cycles) for c in chans) / len(chans)

    def chip_activities(self, elapsed_cycles: int) -> Dict[str, List[ChipActivity]]:
        self.finalize()
        ghz = self.config.cpu_freq_ghz
        elapsed_ns = max(1.0, elapsed_cycles / ghz)
        out: Dict[str, List[ChipActivity]] = {"lpddr2": [], "rldram3": []}

        def make(rank, t_burst_ns):
            tally = rank.finalize_tally(self.events.now)
            return ChipActivity(
                elapsed_ns=elapsed_ns, activates=rank.activate_count,
                reads=rank.read_count, writes=rank.write_count,
                read_bus_ns=rank.read_count * t_burst_ns,
                write_bus_ns=rank.write_count * t_burst_ns,
                active_standby_ns=tally.active / ghz,
                precharge_standby_ns=tally.standby / ghz,
                power_down_ns=tally.power_down / ghz,
                self_refresh_ns=tally.self_refresh / ghz)

        for mc in self.lpddr_controllers:
            for rank in mc.ranks:
                out["lpddr2"].extend(
                    [make(rank, LPDDR2_DEVICE.timing.t_burst)]
                    * self.config.lpddr_devices_per_rank)
        for rank in self.rldram_controller.ranks:
            out["rldram3"].extend(
                [make(rank, RLDRAM3_DEVICE.timing.t_burst)]
                * self.config.rldram_devices_per_rank)
        return out
