"""Future-work extension: critical-data-first with Hybrid Memory Cubes.

The paper's conclusion (Sec 10) sketches two HMC-era embodiments of the
idea; this module implements the second: *"one could imagine having a
mix of high-power, high-performance and low-power, low-frequency HMCs.
... a critical data bit could be obtained from a high-frequency HMC and
the rest of the data from a low-power HMC."*

We model the two HMC classes as DRAM device presets — stacked DRAM with
TSV-connected banks behind a fast serialised link:

* **HMC-HF** — high-frequency cube: aggressive timing (short tRC from
  small stacked arrays), very high link frequency, power-hungry SerDes
  (high static I/O power).
* **HMC-LP** — low-power cube: slower link and arrays, deep power-down.

Both use close-page policy (HMC's packetised interface abstracts row
management) and plug straight into :class:`CriticalWordMemory` — the
paper's CWF architecture is organisation-agnostic once a device has
timing and a channel.
"""

from __future__ import annotations

from repro.core.cwf import CriticalWordMemory, CWFConfig, CWFPolicy
from repro.dram.device import DeviceConfig, DRAMKind, PagePolicy
from repro.dram.timing import TimingParameters
from repro.util.events import EventQueue

# High-frequency cube: 2.5 GHz-class link (we model the vault access;
# the link adds fixed latency via the uncore path constant).
HMC_HF_TIMING = TimingParameters(
    name="HMC-HF",
    t_rc=18.0, t_rcd=0.0, t_rl=8.0, t_rp=0.0, t_ras=0.0,
    t_rtrs_bus_cycles=1, t_faw=0.0, t_wtr=0.0, t_wl=9.0,
    t_rrd=1.0,
    bus_freq_mhz=1250.0,
    t_pd_entry=200.0, t_pd_exit=400.0,  # SerDes links hate sleeping
)

# Low-power cube: slower vaults and link, fast power-state transitions.
HMC_LP_TIMING = TimingParameters(
    name="HMC-LP",
    t_rc=40.0, t_rcd=0.0, t_rl=16.0, t_rp=0.0, t_ras=0.0,
    t_rtrs_bus_cycles=1, t_faw=0.0, t_wtr=0.0, t_wl=16.0,
    t_rrd=2.0,
    bus_freq_mhz=625.0,
    t_pd_entry=10.0, t_pd_exit=20.0,
)

HMC_HF_DEVICE = DeviceConfig(
    kind=DRAMKind.RLDRAM3,   # reuses the "fast, power-hungry" power class
    part_number="HMC-HF-vault",
    timing=HMC_HF_TIMING,
    capacity_mbit=576,
    data_width_bits=9,
    num_banks=16,            # vaults x banks, abstracted
    num_rows=8192,
    num_cols=512,
    page_policy=PagePolicy.CLOSE,
    supports_power_down=False,
    single_command_addressing=True,
)

HMC_LP_DEVICE = DeviceConfig(
    kind=DRAMKind.LPDDR2,    # reuses the low-power power class
    part_number="HMC-LP-vault",
    timing=HMC_LP_TIMING,
    capacity_mbit=2048,
    data_width_bits=8,
    num_banks=8,
    num_rows=32768,
    num_cols=1024,
    page_policy=PagePolicy.CLOSE,
    single_command_addressing=True,
)

# The registry backends "hmc_hf" / "hmc_lp" / "hmc_cwf" (see
# repro.memsys.backends) expose these presets to the CLI, sweeps, and
# RunSpecs; this factory remains the programmatic entry point.


def build_hmc_memory(events: EventQueue,
                     policy: CWFPolicy = CWFPolicy.STATIC,
                     num_channels: int = 4,
                     cpu_freq_ghz: float = 3.2,
                     tag_seeder=None) -> CriticalWordMemory:
    """A critical-data-first memory built from two HMC classes.

    The critical word lives in high-frequency cubes, the bulk in
    low-power cubes — structurally identical to the RL organisation, so
    the whole CWF machinery (split fills, parity, adaptive tags) applies
    unchanged.
    """
    # CWFConfig resolves devices through properties, so a subclass can
    # swap in the HMC presets without touching the CWF machinery.

    class HMCConfig(CWFConfig):
        @property
        def fast_device(self) -> DeviceConfig:   # type: ignore[override]
            return HMC_HF_DEVICE

        @property
        def bulk_device(self) -> DeviceConfig:   # type: ignore[override]
            return HMC_LP_DEVICE

    hmc_config = HMCConfig(policy=policy, num_bulk_channels=num_channels,
                           cpu_freq_ghz=cpu_freq_ghz)
    return CriticalWordMemory(events, hmc_config, tag_seeder=tag_seeder)
