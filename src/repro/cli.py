"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiment list
    repro-experiment fig6                 # regenerate Figure 6
    repro-experiment all                  # everything (slow)
    repro-experiment fig6 --reads 20000 --benchmarks leslie3d,mcf

Results print as text tables; ``--output`` appends them to a file.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import ExperimentConfig, default_config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables and figures from the paper.")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), or 'all'/'list'")
    parser.add_argument("--reads", type=int, default=None,
                        help="target demand DRAM fetches per run")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--cache", default=None,
                        help="cache directory, or 'off'")
    parser.add_argument("--output", default=None,
                        help="append formatted tables to this file")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = default_config()
    kwargs = {}
    if args.reads is not None:
        kwargs["target_dram_reads"] = args.reads
    if args.benchmarks is not None:
        kwargs["benchmarks"] = tuple(b for b in args.benchmarks.split(",") if b)
    if args.cache is not None:
        kwargs["cache_dir"] = None if args.cache == "off" else args.cache
    if kwargs:
        from dataclasses import replace
        config = replace(config, **kwargs)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for key in ALL_EXPERIMENTS:
            print(key)
        return 0
    keys = (list(ALL_EXPERIMENTS) if args.experiment == "all"
            else [args.experiment])
    unknown = [k for k in keys if k not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    config = make_config(args)
    for key in keys:
        start = time.time()
        table = ALL_EXPERIMENTS[key](config)
        text = table.format()
        print(text)
        print(f"[{key} took {time.time() - start:.1f}s]\n")
        if args.output:
            with open(args.output, "a") as handle:
                handle.write(text + "\n\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
