"""Command-line entry point: regenerate any table or figure, run ad-hoc
benchmark/memory combinations, and inspect the backend registry.

Usage::

    repro --version                       # print the package version
    repro list-backends                   # registered memory organisations
    repro list-workloads                  # registered workload sources
    repro run --memory hmc_cwf            # one backend, whole suite
    repro run --memory ddr3,rl,hmc_cwf --benchmarks leslie3d,mcf --jobs 2
    repro run --memory rl --check         # protocol sanitizer on, fail on
                                          # any DRAM-timing/FSM violation
    repro resume .ckpts/ck-0123abcd.ckpt  # finish an interrupted run
    repro trace record mcf --out mcf.trace --reads 2000
    repro trace info mcf.trace            # metadata + per-core stats
    repro run --workload trace:mcf.trace --memory rl
    repro bench --quick                   # kernel-throughput smoke run
    repro bench --baseline benchmarks/perf/BENCH_baseline.json
    repro profile mcf ddr3 --top 15       # cProfile one simulation cell
    repro serve --port 8787 --jobs 4      # long-lived job server
    repro submit --experiment fig6 --wait # run a figure via the server
    repro status j-0123abcd4567           # poll a submitted job
    repro status                          # server health + metrics
    repro-experiment list
    repro-experiment fig6                 # regenerate Figure 6
    repro-experiment fig6,fig7,fig8       # several (shared runs dedupe)
    repro-experiment all                  # everything (slow)
    repro-experiment all --jobs 4         # fan runs out over 4 processes
    repro-experiment fig6 --reads 20000 --benchmarks leslie3d,mcf
    repro-experiment fig6 --json          # tables as structured JSON
    repro-experiment fig6 --reads 500 --stats-json out.json \
        --trace-out trace.json            # telemetry artefacts

(Both console scripts share this module: ``repro`` and
``repro-experiment`` accept the same arguments; the experiment id is
the legacy positional form.)

Results print as text tables; ``--output`` appends them to a file.
Before any table is built, the requested experiments' declarative
``RunSpec`` lists are merged and deduped, so runs shared across figures
(every figure needs the DDR3 baseline) simulate exactly once.
``--jobs N`` (or ``REPRO_JOBS``) schedules those runs over N worker
processes — ``--jobs 0`` means one per CPU, ``--jobs 1`` (default) is
fully deterministic in-process execution; both modes emit byte-identical
tables for the same seed. Per-spec progress and timing go to stderr;
``--timings-json`` writes them as JSON.
``--retries N`` re-runs crashed/hung/corrupt specs (exponential backoff,
deterministic jitter), ``--timeout SEC`` bounds each spec's wall clock
(parallel mode), and ``--keep-going`` turns exhausted failures into
``—`` table cells plus a failure appendix instead of aborting — see
``repro.experiments.resilience`` (and ``REPRO_FAULT_PLAN`` for
deterministic fault injection to test all of it).
``--stats-json``/``--stats-csv`` dump the full metrics registry of every
simulated run (per-channel latency histograms, per-bank counters, run
manifest); ``--trace-out`` writes a Chrome ``trace_event`` JSON viewable
in chrome://tracing or https://ui.perfetto.dev. Telemetry options force
real simulations (the result cache is bypassed for reads).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import (
    ALL_EXPERIMENTS,
    ParallelExecutor,
    SuiteError,
    failure_appendix,
    suite_specs,
)
from repro.experiments.runner import ExperimentConfig, default_config
from repro.telemetry import (
    TelemetrySession,
    activate,
    deactivate,
    table_to_dict,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables and figures from the paper.")
    from repro import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("experiment",
                        help="experiment id(s), comma-separated "
                             "(see 'list'), or 'all'/'list'")
    parser.add_argument("--reads", type=int, default=None,
                        help="target demand DRAM fetches per run")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--cache", default=None,
                        help="cache directory, or 'off'")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker processes (default REPRO_JOBS "
                             "or 1; 0 = one per CPU)")
    add_resilience_args(parser)
    parser.add_argument("--output", default=None,
                        help="append formatted tables to this file")
    parser.add_argument("--json", action="store_true",
                        help="emit tables as structured JSON instead of text")
    parser.add_argument("--timings-json", default=None, metavar="PATH",
                        help="write per-spec wall-clock timings as JSON")
    parser.add_argument("--stats-json", default=None, metavar="PATH",
                        help="write per-run metrics registry + manifest JSON")
    parser.add_argument("--stats-csv", default=None, metavar="PATH",
                        help="write per-run metrics as flat CSV")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace_event JSON of all requests")
    return parser


def add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Failure-handling flags shared by the experiment and run commands."""
    group = parser.add_argument_group("failure handling")
    group.add_argument("--retries", type=int, default=None, metavar="N",
                       help="re-run a crashed/hung/corrupt spec up to N "
                            "times (default REPRO_RETRIES or 0)")
    group.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-spec wall-clock deadline in seconds, "
                            "enforced with --jobs >= 2 "
                            "(default REPRO_TIMEOUT or none)")
    group.add_argument("--keep-going", action="store_true", default=None,
                       help="record failed specs as '—' cells plus a "
                            "failure appendix instead of aborting the suite")
    group.add_argument("--fail-fast", action="store_true",
                       help="abort on the first spec that exhausts its "
                            "retries (the default; overrides "
                            "REPRO_KEEP_GOING)")
    group.add_argument("--degrade-serial", action="store_true", default=None,
                       help="as a last resort, re-run an exhausted spec "
                            "once in-process (never for timeouts)")


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = default_config()
    kwargs = {}
    if args.reads is not None:
        kwargs["target_dram_reads"] = args.reads
    if args.benchmarks is not None:
        kwargs["benchmarks"] = tuple(b for b in args.benchmarks.split(",") if b)
    if args.cache is not None:
        kwargs["cache_dir"] = None if args.cache == "off" else args.cache
    if getattr(args, "jobs", None) is not None:
        kwargs["jobs"] = args.jobs
    if getattr(args, "retries", None) is not None:
        kwargs["retries"] = args.retries
    if getattr(args, "timeout", None) is not None:
        kwargs["timeout_s"] = args.timeout
    if getattr(args, "keep_going", None):
        kwargs["keep_going"] = True
    if getattr(args, "fail_fast", False):
        kwargs["keep_going"] = False
    if getattr(args, "degrade_serial", None):
        kwargs["degrade_serial"] = True
    if getattr(args, "checkpoint_dir", None):
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "checkpoint_every", None) is not None:
        kwargs["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "cache_budget", None):
        from repro.store import parse_size
        kwargs["cache_budget_bytes"] = parse_size(args.cache_budget)
    if kwargs:
        from dataclasses import replace
        config = replace(config, **kwargs)
    return config


def add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    """Crash-safe checkpointing flags shared by run and serve."""
    group = parser.add_argument_group("checkpointing")
    group.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="snapshot each in-flight simulation here so a "
                            "crashed/killed run's retry resumes instead of "
                            "starting over (default REPRO_CHECKPOINT_DIR "
                            "or off)")
    group.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="READS",
                       help="snapshot cadence in simulated DRAM reads "
                            "(default REPRO_CHECKPOINT_EVERY or 1000)")


def _report_failures(executor: ParallelExecutor,
                     output: Optional[str] = None) -> None:
    """Print (and optionally append to a file) the failure appendix."""
    if not executor.failures:
        return
    appendix = failure_appendix(executor.failures)
    print(appendix)
    if output:
        with open(output, "a") as handle:
            handle.write(appendix + "\n\n")


def _telemetry_wanted(args: argparse.Namespace) -> bool:
    return bool(args.stats_json or args.stats_csv or args.trace_out)


# ---------------------------------------------------------------------------
# Subcommands: list-backends, list-workloads, run, trace
# ---------------------------------------------------------------------------


def _format_backends() -> str:
    """The backend registry as a fixed-width listing."""
    from repro.memsys.registry import list_backends

    lines = ["registered memory backends:"]
    rows = []
    for d in list_backends():
        flags = []
        if d.is_heterogeneous:
            flags.append("hetero")
        if d.needs_profile:
            flags.append("needs-profile")
        rows.append((d.name, ",".join(d.aliases) or "-",
                     "+".join(d.dram_families), ",".join(flags) or "-",
                     d.description))
    widths = [max(len(r[i]) for r in rows + [("name", "aliases",
                                              "families", "flags", "")])
              for i in range(4)]
    header = ("name", "aliases", "families", "flags", "description")
    for row in [header] + rows:
        lines.append("  ".join(col.ljust(widths[i]) if i < 4 else col
                               for i, col in enumerate(row)).rstrip())
    return "\n".join(lines)


def _resolve_memories(names: List[str]) -> List[str]:
    """Canonicalise CLI memory names; exits with did-you-mean on error."""
    from repro.memsys.registry import UnknownBackendError, resolve_name

    resolved = []
    for name in names:
        try:
            resolved.append(resolve_name(name))
        except UnknownBackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(_format_backends(), file=sys.stderr)
            raise SystemExit(2) from None
    return list(dict.fromkeys(resolved))


def _format_workloads(suite: Optional[str] = None) -> str:
    """The workload registry as a fixed-width listing."""
    from repro.workloads.registry import list_workloads

    lines = ["registered workloads:"]
    rows = [(d.name, d.suite or "-", d.kind, d.description)
            for d in list_workloads()
            if suite is None or d.suite == suite]
    header = ("name", "suite", "kind", "description")
    widths = [max(len(r[i]) for r in rows + [header]) for i in range(3)]
    for row in [header] + rows:
        lines.append("  ".join(col.ljust(widths[i]) if i < 3 else col
                               for i, col in enumerate(row)).rstrip())
    return "\n".join(lines)


def _resolve_workloads(names: List[str]) -> List[str]:
    """Canonicalise CLI workload names; exits with did-you-mean on error."""
    from repro.workloads.registry import WorkloadError, resolve_workload

    resolved = []
    for name in names:
        try:
            resolved.append(resolve_workload(name))
        except WorkloadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(_format_workloads(), file=sys.stderr)
            raise SystemExit(2) from None
    return list(dict.fromkeys(resolved))


def cmd_list_workloads(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro list-workloads",
        description="List registered workload sources (synthetic profiles "
                    "plus the trace:<path> replay family).")
    parser.add_argument("--json", action="store_true",
                        help="emit the registry as structured JSON")
    parser.add_argument("--suite", default=None,
                        help="only workloads of this suite (spec/npb/stream)")
    args = parser.parse_args(argv)
    if args.json:
        import json as _json
        from repro.workloads.registry import list_workloads
        print(_json.dumps([{
            "name": d.name,
            "aliases": list(d.aliases),
            "description": d.description,
            **d.capabilities(),
        } for d in list_workloads()
            if args.suite is None or d.suite == args.suite], indent=1))
    else:
        print(_format_workloads(args.suite))
    return 0


def cmd_trace(argv: List[str]) -> int:
    """Trace tooling: record a workload to a file, inspect a file."""
    if not argv or argv[0] not in ("record", "info"):
        print("usage: repro trace record <workload> --out FILE "
              "[--reads N] [--cores N] [--seed N]\n"
              "       repro trace info FILE", file=sys.stderr)
        return 2
    if argv[0] == "record":
        return _cmd_trace_record(argv[1:])
    return _cmd_trace_info(argv[1:])


def _cmd_trace_record(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace record",
        description="Materialize a workload's per-core record streams "
                    "into a repro-trace v1 file for editing and replay "
                    "(run it back with --workload trace:FILE).")
    parser.add_argument("workload", help="workload name (see "
                                         "'repro list-workloads')")
    parser.add_argument("--out", required=True, metavar="FILE",
                        help="destination trace file")
    parser.add_argument("--reads", type=int, default=None,
                        help="target demand DRAM fetches (default 2000)")
    parser.add_argument("--cores", type=int, default=None,
                        help="number of core sections (default 8)")
    parser.add_argument("--seed", type=int, default=None,
                        help="generator seed (default 42)")
    args = parser.parse_args(argv)
    workload = _resolve_workloads([args.workload])[0]

    from repro.sim.config import SimConfig
    from repro.workloads.registry import create_workload
    from repro.workloads.trace import save_multi_trace

    config = SimConfig(
        target_dram_reads=args.reads if args.reads is not None else 2000,
        num_cores=args.cores if args.cores is not None else 8,
        seed=args.seed if args.seed is not None else 42)
    source = create_workload(workload)
    traces = [list(stream) for stream in source.streams(config)]
    metadata = {"benchmark": source.display_benchmark(),
                "seed": str(config.seed),
                "target_dram_reads": str(config.target_dram_reads)}
    save_multi_trace(traces, args.out, metadata=metadata)
    total = sum(len(t) for t in traces)
    print(f"wrote {args.out}: {len(traces)} core(s), {total} records "
          f"(replay with 'repro run --workload trace:{args.out}')",
          file=sys.stderr)
    return 0


def _cmd_trace_info(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace info",
        description="Metadata, cache token, and per-core stats of a "
                    "repro-trace v1 file.")
    parser.add_argument("path", help="trace file")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    from repro.workloads.registry import TraceFileSource, WorkloadError
    from repro.workloads.trace import trace_stats

    try:
        source = TraceFileSource(args.path)
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    info = source.describe()
    info["per_core"] = [trace_stats(section)
                        for section in source._traces]
    if args.json:
        import json as _json
        print(_json.dumps(info, indent=1, default=str))
        return 0
    print(f"{args.path}: repro-trace v1, {info['cores']} core(s), "
          f"{info['records']} records, cache token {info['cache_token']}")
    for key, value in sorted(source.metadata.items()):
        print(f"  {key} = {value}")
    for core_id, stats in enumerate(info["per_core"]):
        print(f"  core {core_id}: {stats['records']} records, "
              f"{stats['instructions']} instrs, "
              f"write fraction {stats['write_fraction']:.2f}, "
              f"mean gap {stats['mean_gap']:.1f}")
    return 0


def cmd_list_backends(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro list-backends",
        description="List registered memory backends "
                    "(names, aliases, capabilities).")
    parser.add_argument("--json", action="store_true",
                        help="emit the registry as structured JSON")
    args = parser.parse_args(argv)
    if args.json:
        import json as _json
        from repro.memsys.registry import list_backends
        print(_json.dumps([{
            "name": d.name,
            "aliases": list(d.aliases),
            "description": d.description,
            "paper_section": d.paper_section,
            **d.capabilities(),
        } for d in list_backends()], indent=1))
    else:
        print(_format_backends())
    return 0


def cmd_run(argv: List[str]) -> int:
    """Ad-hoc runs: benchmarks x memory backends, one result row each."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run benchmarks on one or more memory backends.")
    parser.add_argument("--memory", default="ddr3",
                        help="comma-separated backend names "
                             "(see 'repro list-backends')")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset "
                             "(default: whole suite)")
    parser.add_argument("--workload", default=None,
                        help="comma-separated workload names — any "
                             "registry form, including trace:<path> "
                             "replays (overrides --benchmarks; see "
                             "'repro list-workloads')")
    parser.add_argument("--reads", type=int, default=None,
                        help="target demand DRAM fetches per run")
    parser.add_argument("--cache", default=None,
                        help="cache directory, or 'off'")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker processes (default REPRO_JOBS "
                             "or 1; 0 = one per CPU)")
    add_resilience_args(parser)
    add_checkpoint_args(parser)
    parser.add_argument("--check", action="store_true",
                        help="run under the DRAM protocol sanitizer "
                             "(REPRO_SANITIZE=1): every command stream is "
                             "replayed against a shadow timing/FSM model; "
                             "exit 1 on any violation")
    parser.add_argument("--json", action="store_true",
                        help="emit the table as structured JSON")
    args = parser.parse_args(argv)
    memories = _resolve_memories(
        [m for m in args.memory.split(",") if m.strip()])

    from repro.experiments.runner import ExperimentTable
    from repro.experiments.specs import RunSpec

    config = make_config(args)
    if args.workload:
        workloads = _resolve_workloads(
            [w for w in args.workload.split(",") if w.strip()])
    else:
        workloads = list(config.suite())
    specs = [RunSpec(bench, memory)
             for bench in workloads for memory in memories]
    check_session: Optional[TelemetrySession] = None
    if args.check:
        import os as _os

        from repro.sanitizer import (
            MODE_OFF,
            reset_global_report,
            sanitize_mode,
        )
        if sanitize_mode() == MODE_OFF:
            # The environment variable is the transport that reaches
            # pool workers too; an explicit strict/collect setting wins.
            _os.environ["REPRO_SANITIZE"] = "1"
        reset_global_report()
        # An active telemetry session forces real (uncached) runs — a
        # recalled result was never checked — and is how worker-process
        # sanitizer counters flow back to this process.
        check_session = activate(TelemetrySession())
    executor = ParallelExecutor(config, progress=True)
    try:
        results = executor.run(specs)
    except SuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: --retries N retries failed specs, --keep-going "
              "renders them as '—' cells instead of aborting",
              file=sys.stderr)
        return 1
    finally:
        if check_session is not None:
            deactivate()
    table = ExperimentTable(
        experiment_id="run",
        title="ad-hoc runs: " + ", ".join(memories),
        columns=["benchmark", "memory", "throughput", "critical_latency",
                 "fill_latency", "fast_fraction", "bus_utilization"])
    for spec in specs:
        result = results[spec]
        table.add(benchmark=spec.benchmark, memory=spec.memory,
                  throughput=result.throughput,
                  critical_latency=result.avg_critical_latency,
                  fill_latency=result.avg_fill_latency,
                  fast_fraction=result.fast_service_fraction,
                  bus_utilization=result.bus_utilization)
    if args.json:
        import json as _json
        print(_json.dumps(table_to_dict(table), indent=1, default=str))
    else:
        print(table.format())
    _report_failures(executor)
    if check_session is not None:
        return _report_sanitizer(check_session)
    return 0


def _report_sanitizer(session: TelemetrySession) -> int:
    """Summarise ``sanitizer.*`` counters after a --check run."""
    from repro.sanitizer import global_report

    counters = session.counters
    runs = counters.get("sanitizer.runs", 0)
    total = counters.get("sanitizer.violations", 0)
    print(f"sanitizer: {runs} run(s) checked, {total} violation(s)")
    for name in sorted(counters):
        if (name.startswith("sanitizer.")
                and name not in ("sanitizer.runs", "sanitizer.violations")):
            print(f"  {name[len('sanitizer.'):]} x{counters[name]}")
    # Serial runs keep full violation records in-process; show a few.
    for violation in global_report().violations[:8]:
        print(f"  {violation.describe()}")
    return 1 if total else 0


def cmd_resume(argv: List[str]) -> int:
    """Finish an interrupted simulation from its checkpoint file."""
    parser = argparse.ArgumentParser(
        prog="repro resume",
        description="Load a crash-safe checkpoint (see --checkpoint-dir / "
                    "REPRO_CHECKPOINT_DIR) and run the simulation to "
                    "completion; the result is byte-identical to an "
                    "uninterrupted run. The checkpoint file is deleted "
                    "on success.")
    parser.add_argument("checkpoint", help="checkpoint file (ck-*.ckpt)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the checkpoint file after finishing")
    parser.add_argument("--json", action="store_true",
                        help="print the full SimResult as JSON")
    args = parser.parse_args(argv)

    from repro.sim.checkpoint import (
        CheckpointError,
        delete_checkpoint,
        load_checkpoint,
    )

    try:
        system, executed, header = load_checkpoint(args.checkpoint)
    except (CheckpointError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    benchmark = header.get("benchmark", "?")
    print(f"resuming {benchmark} from {args.checkpoint}: "
          f"{header.get('reads', 0)} reads done, {executed} events",
          file=sys.stderr)
    result = system.resume_run(executed=executed)
    result.benchmark = benchmark
    if not args.keep:
        delete_checkpoint(args.checkpoint)
    if args.json:
        import dataclasses as _dataclasses
        import json as _json
        print(_json.dumps(_dataclasses.asdict(result), indent=1))
    else:
        print(f"{result.benchmark}: {result.dram_reads} reads in "
              f"{result.elapsed_cycles} cycles, "
              f"throughput={result.throughput:.3f}, "
              f"critical={result.avg_critical_latency:.1f}, "
              f"fill={result.avg_fill_latency:.1f}")
    return 0


# ---------------------------------------------------------------------------
# Subcommands: bench, profile (kernel performance tooling)
# ---------------------------------------------------------------------------


def cmd_bench(argv: List[str]) -> int:
    """Kernel-throughput benchmark over the pinned matrix (see repro.bench)."""
    from repro import bench as bench_mod

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Measure simulated-DRAM-reads-per-wallclock-second over "
                    "the pinned (ddr3, rl, hmc_cwf) x (mcf, leslie3d) matrix "
                    "and optionally gate against a committed baseline.")
    parser.add_argument("--reads", type=int, default=None,
                        help="target demand DRAM fetches per cell "
                             f"(default {bench_mod.DEFAULT_READS})")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small read target "
                             f"({bench_mod.QUICK_READS} reads) "
                             "and a single repeat")
    parser.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="run the matrix N times, keep each cell's best "
                             "rate (default 3, or 1 with --quick)")
    parser.add_argument("--out", default="BENCH_kernel.json", metavar="PATH",
                        help="write the JSON report here "
                             "(default BENCH_kernel.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="compare against this baseline report and fail "
                             "on regression "
                             "(e.g. benchmarks/perf/BENCH_baseline.json)")
    parser.add_argument("--fail-threshold", type=float,
                        default=bench_mod.DEFAULT_FAIL_THRESHOLD,
                        metavar="FRAC",
                        help="allowed fractional drop in total reads/s vs "
                             "the baseline (default 0.25)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a table")
    args = parser.parse_args(argv)

    reads = args.reads if args.reads is not None else (
        bench_mod.QUICK_READS if args.quick else bench_mod.DEFAULT_READS)
    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 3)
    report = bench_mod.run_bench(target_dram_reads=reads, repeats=repeats)
    if args.json:
        import json as _json
        print(_json.dumps(report, indent=1, sort_keys=True))
    else:
        print(bench_mod.format_report(report))
    if args.out:
        bench_mod.write_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.baseline:
        baseline = bench_mod.load_report(args.baseline)
        if baseline is None:
            print(f"error: cannot read baseline {args.baseline}",
                  file=sys.stderr)
            return 2
        ok, messages = bench_mod.compare_to_baseline(
            report, baseline, fail_threshold=args.fail_threshold)
        for message in messages:
            print(message)
        if not ok:
            return 1
    return 0


def cmd_profile(argv: List[str]) -> int:
    """cProfile one benchmark/memory cell of the simulation kernel."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run one benchmark on one memory backend under cProfile "
                    "and print the hottest functions.")
    parser.add_argument("benchmark", help="benchmark name (e.g. mcf)")
    parser.add_argument("memory", help="memory backend (e.g. ddr3, rl, "
                                       "hmc_cwf; see 'repro list-backends')")
    parser.add_argument("--reads", type=int, default=None,
                        help="target demand DRAM fetches (default 4000)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls",
                                 "ncalls", "pcalls", "time", "name"),
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="print the top N entries (default 25)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also dump raw stats for snakeviz/pstats "
                             "(e.g. prof.pstats)")
    args = parser.parse_args(argv)
    memory = _resolve_memories([args.memory])[0]

    import cProfile
    import pstats

    from repro.bench import DEFAULT_READS
    from repro.sim.config import SimConfig
    from repro.sim.system import run_benchmark

    reads = args.reads if args.reads is not None else DEFAULT_READS
    config = SimConfig(memory=memory, target_dram_reads=reads)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_benchmark(args.benchmark, config)
    profiler.disable()
    print(f"{args.benchmark}/{memory}: {result.dram_reads} reads in "
          f"{result.elapsed_cycles} cycles", file=sys.stderr)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote raw profile to {args.out} "
              "(inspect with python -m pstats or snakeviz)", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Subcommands: serve, submit, status (the simulation service)
# ---------------------------------------------------------------------------


def cmd_serve(argv: List[str]) -> int:
    """Long-lived job server over a persistent worker pool."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve RunSpec batches over HTTP: POST /v1/jobs, "
                    "GET /v1/jobs/<id>, /healthz, /metrics. SIGTERM "
                    "drains in-flight work gracefully.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the persistent pool "
                             "(default REPRO_JOBS or 1; 0 = one per CPU)")
    parser.add_argument("--reads", type=int, default=None,
                        help="default target demand DRAM fetches per run "
                             "(jobs may override)")
    parser.add_argument("--benchmarks", default=None,
                        help="default benchmark subset (jobs may override)")
    parser.add_argument("--cache", default=None,
                        help="result-cache directory, or 'off'")
    parser.add_argument("--cache-budget", default=None, metavar="SIZE",
                        help="byte budget for the result-cache store "
                             "(e.g. 64M); past it the least-recently-"
                             "used entries are evicted and recomputed "
                             "on demand")
    parser.add_argument("--manifest-budget", default=None, metavar="SIZE",
                        help="byte budget for the job-manifest directory; "
                             "terminal jobs are LRU-evicted past it "
                             "(queued/running jobs are never touched)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="job-manifest directory (default .repro_jobs); "
                             "queued/running jobs found here are resumed")
    parser.add_argument("--queue-limit", type=int, default=32, metavar="N",
                        help="bounded queue depth; beyond it POST answers "
                             "429 + Retry-After (default 32)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="per-spec retries for crashed/hung/corrupt "
                             "runs (default REPRO_RETRIES or 0)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-spec wall-clock deadline (needs "
                             "--jobs >= 2)")
    add_checkpoint_args(parser)
    parser.add_argument("--no-recover", action="store_true",
                        help="do not re-enqueue unfinished jobs from the "
                             "state directory at startup")
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per HTTP request")
    args = parser.parse_args(argv)

    from repro.service import JobScheduler, JobStore, make_server, serve_until_signal
    from repro.service.store import DEFAULT_STATE_DIR

    from repro.store import parse_size

    try:
        config = make_config(args)  # parses --cache-budget
        manifest_budget = parse_size(args.manifest_budget)
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    store = JobStore(args.state_dir or DEFAULT_STATE_DIR,
                     budget_bytes=manifest_budget)
    # Paused and without recovery until the port is bound: a server that
    # loses the bind race must exit without having touched job state.
    scheduler = JobScheduler(config, store=store, jobs=args.jobs,
                             max_queue=args.queue_limit,
                             start=False, recover=False)
    try:
        server = make_server(scheduler, args.host, args.port,
                             verbose=args.verbose)
    except OSError as exc:
        print(f"repro serve: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    if not args.no_recover:
        scheduler.recover()
    scheduler.start()
    recovered = scheduler.counters["jobs_recovered"]
    print(f"repro serve: listening on http://{args.host}:{args.port} "
          f"({scheduler.executor.jobs} worker(s), queue limit "
          f"{args.queue_limit}, {recovered} job(s) recovered); "
          "SIGTERM drains gracefully", file=sys.stderr, flush=True)
    code = serve_until_signal(server, scheduler)
    print("repro serve: drained and stopped", file=sys.stderr)
    return code


def _submit_request(args: argparse.Namespace) -> dict:
    """Build the POST /v1/jobs payload from submit's flags."""
    request: dict = {}
    if args.experiment:
        request["experiment"] = args.experiment
    if args.memory:
        memories = _resolve_memories(
            [m for m in args.memory.split(",") if m.strip()])
        from repro.experiments.runner import default_config
        benches = ([b for b in args.benchmarks.split(",") if b]
                   if args.benchmarks else default_config().suite())
        request["specs"] = [{"benchmark": bench, "memory": memory}
                            for bench in benches for memory in memories]
    if args.reads is not None:
        request["reads"] = args.reads
    if args.benchmarks:
        request["benchmarks"] = [b for b in args.benchmarks.split(",") if b]
    if args.tag:
        request["tag"] = args.tag
    return request


def _print_job_outcome(job: dict, as_json: bool) -> int:
    if as_json:
        import json as _json
        print(_json.dumps(job, indent=1, default=str))
    elif job.get("table"):
        print(job["table"])
    else:
        for row in job.get("results", []):
            print(f"{row['label']}: throughput={row['throughput']:.3f} "
                  f"critical={row['avg_critical_latency']:.1f} "
                  f"fill={row['avg_fill_latency']:.1f}")
    for failure in job.get("failures", []):
        print(f"failed: {failure['label']} ({failure['kind']} after "
              f"{failure['attempts']} attempt(s)) — {failure['error']}",
              file=sys.stderr)
    if job.get("error"):
        print(f"error: {job['error']}", file=sys.stderr)
    return 0 if job.get("state") == "done" else 1


def cmd_submit(argv: List[str]) -> int:
    """Submit a job to a running ``repro serve`` instance."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit an experiment or ad-hoc benchmark x memory "
                    "batch to a repro serve instance.")
    from repro.service.client import DEFAULT_URL

    parser.add_argument("--url", default=DEFAULT_URL)
    parser.add_argument("--experiment", default=None,
                        help="experiment id to expand server-side "
                             "(see 'repro-experiment list')")
    parser.add_argument("--memory", default=None,
                        help="comma-separated backends for ad-hoc specs")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--reads", type=int, default=None,
                        help="per-job override of DRAM fetches per run")
    parser.add_argument("--tag", default="",
                        help="free-form label echoed back by status")
    parser.add_argument("--retry-429", type=int, default=0, metavar="N",
                        help="on backpressure (429), honour Retry-After "
                             "and retry up to N times")
    parser.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its "
                             "tables/results")
    parser.add_argument("--poll", type=float, default=0.5, metavar="SEC")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="give up waiting after SEC seconds")
    parser.add_argument("--json", action="store_true",
                        help="print the job record as JSON")
    args = parser.parse_args(argv)
    if not args.experiment and not args.memory:
        parser.error("nothing to submit: use --experiment and/or --memory")

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        job = client.submit(_submit_request(args), retries=args.retry_429)
        if args.wait:
            job = client.wait(job["id"], poll_s=args.poll,
                              timeout_s=args.timeout)
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.wait:
        return _print_job_outcome(job, args.json)
    if args.json:
        import json as _json
        print(_json.dumps(job, indent=1, default=str))
    else:
        print(f"{job['id']} {job['state']} "
              f"({len(job['specs'])} spec(s), "
              f"{job['coalesced_specs']} coalesced, "
              f"{job['cached_specs']} cached)")
    return 0


def cmd_status(argv: List[str]) -> int:
    """Job status by id, or server health + metrics without one."""
    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Poll a job, or show server health and metrics.")
    from repro.service.client import DEFAULT_URL

    parser.add_argument("job_id", nargs="?", default=None)
    parser.add_argument("--url", default=DEFAULT_URL)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    import json as _json

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_id:
            job = client.job(args.job_id)
            if args.json:
                print(_json.dumps(job, indent=1, default=str))
                return 0
            if job.get("state") in ("done", "failed"):
                return _print_job_outcome(job, as_json=False)
            print(f"{job['id']} {job['state']} "
                  f"({len(job['specs'])} spec(s))")
            return 0
        health = client.health()
        metrics = client.metrics()
        if args.json:
            print(_json.dumps({"health": health, "metrics": metrics},
                              indent=1, default=str))
        else:
            print(f"server {health['status']}: uptime "
                  f"{health['uptime_s']:.0f}s, queue "
                  f"{health['queue_depth']}/{health['queue_limit']}, "
                  f"jobs {health.get('jobs', {})}")
            for name in sorted(metrics):
                if name.startswith(("service.", "executor.", "cache.")):
                    print(f"  {name} = {metrics[name]}")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("--version", "-V"):
        from repro import __version__
        print(f"repro {__version__}")
        return 0
    if argv and argv[0] == "list-backends":
        return cmd_list_backends(argv[1:])
    if argv and argv[0] == "list-workloads":
        return cmd_list_workloads(argv[1:])
    if argv and argv[0] == "trace":
        return cmd_trace(argv[1:])
    if argv and argv[0] == "run":
        return cmd_run(argv[1:])
    if argv and argv[0] == "resume":
        return cmd_resume(argv[1:])
    if argv and argv[0] == "bench":
        return cmd_bench(argv[1:])
    if argv and argv[0] == "profile":
        return cmd_profile(argv[1:])
    if argv and argv[0] == "serve":
        return cmd_serve(argv[1:])
    if argv and argv[0] == "submit":
        return cmd_submit(argv[1:])
    if argv and argv[0] == "status":
        return cmd_status(argv[1:])
    if argv and argv[0] == "store":
        from repro.store.cli import cmd_store
        return cmd_store(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for key in ALL_EXPERIMENTS:
            print(key)
        return 0
    keys = (list(ALL_EXPERIMENTS) if args.experiment == "all"
            else [k for k in args.experiment.split(",") if k])
    unknown = [k for k in keys if k not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    config = make_config(args)

    session: Optional[TelemetrySession] = None
    if _telemetry_wanted(args):
        session = activate(TelemetrySession(
            trace_enabled=bool(args.trace_out)))

    tables = []
    try:
        # One scheduler pass over the union of every requested figure's
        # specs: shared baselines run once, in parallel when jobs > 1.
        executor = ParallelExecutor(config, progress=True)
        suite_start = time.perf_counter()
        try:
            results = executor.run(suite_specs(keys, config))
        except SuiteError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print("hint: --retries N retries failed specs, --keep-going "
                  "renders them as '—' cells instead of aborting",
                  file=sys.stderr)
            return 1
        for key in keys:
            start = time.perf_counter()
            table = ALL_EXPERIMENTS[key](config, results=results)
            tables.append(table)
            if args.json:
                import json as _json
                text = _json.dumps(table_to_dict(table), indent=1,
                                   default=str)
            else:
                text = table.format()
            print(text)
            if not args.json:
                print(f"[{key} took {time.perf_counter() - start:.1f}s]\n")
            if args.output:
                with open(args.output, "a") as handle:
                    handle.write(text + "\n\n")
        _report_failures(executor, output=args.output)
    finally:
        if session is not None:
            deactivate()

    if args.timings_json:
        import json as _json
        with open(args.timings_json, "w") as handle:
            _json.dump({
                "jobs": executor.jobs,
                "experiments": keys,
                "total_wall_s": round(time.perf_counter() - suite_start, 3),
                "specs": executor.timings,
            }, handle, indent=1)
        print(f"wrote per-spec timings to {args.timings_json}",
              file=sys.stderr)

    if session is not None:
        manifest_config = {
            "experiments": keys,
            "target_dram_reads": config.target_dram_reads,
            "benchmarks": list(config.suite()),
            "jobs": executor.jobs,
        }
        if args.stats_json:
            session.export_stats(args.stats_json, config=manifest_config,
                                 seed=config.seed, argv=argv)
            print(f"wrote stats to {args.stats_json}", file=sys.stderr)
        if args.stats_csv:
            session.export_csv(args.stats_csv)
            print(f"wrote stats CSV to {args.stats_csv}", file=sys.stderr)
        if args.trace_out:
            session.export_trace(args.trace_out)
            print(f"wrote trace to {args.trace_out} "
                  "(open in chrome://tracing or ui.perfetto.dev)",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
