"""Small shared utilities: event queue, cycle math, deterministic RNG helpers."""

from repro.util.events import Event, EventQueue
from repro.util.cycles import ns_to_cycles, cycles_to_ns, ceil_div
from repro.util.sizes import parse_size, format_size

__all__ = ["Event", "EventQueue", "ns_to_cycles", "cycles_to_ns", "ceil_div",
           "parse_size", "format_size"]
