"""Small shared utilities: event queue, cycle math, deterministic RNG helpers."""

from repro.util.events import Event, EventQueue
from repro.util.cycles import ns_to_cycles, cycles_to_ns, ceil_div

__all__ = ["Event", "EventQueue", "ns_to_cycles", "cycles_to_ns", "ceil_div"]
