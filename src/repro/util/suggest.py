"""Shared did-you-mean support for the string-keyed registries.

Both registries (memory backends in :mod:`repro.memsys.registry`,
workload sources in :mod:`repro.workloads.registry`) and the benchmark
profile table answer unknown-name lookups with close-match suggestions.
The matching policy lives here once so every "unknown X" error reads
the same and tunes the same.
"""

from __future__ import annotations

import difflib
from typing import Iterable, List, Sequence

#: difflib cutoff shared by every registry: generous enough to catch
#: transpositions and missing separators, strict enough not to suggest
#: unrelated names.
CUTOFF = 0.5
MAX_SUGGESTIONS = 3


def close_matches(name: str, known: Iterable[str],
                  n: int = MAX_SUGGESTIONS,
                  cutoff: float = CUTOFF) -> List[str]:
    """Close matches for ``name`` among ``known``, case-insensitively.

    Returned names keep their canonical spelling (``gemsfdtd`` suggests
    ``GemsFDTD``), ordered best match first.
    """
    known = list(known)
    folded = {k.lower(): k for k in reversed(known)}
    hits = difflib.get_close_matches(name.lower(), list(folded),
                                     n=n, cutoff=cutoff)
    return [folded[hit] for hit in hits]


def did_you_mean(suggestions: Sequence[str]) -> str:
    """``"; did you mean 'a' or 'b'?"`` — empty when nothing is close."""
    if not suggestions:
        return ""
    return f"; did you mean {' or '.join(map(repr, suggestions))}?"
