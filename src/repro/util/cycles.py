"""Clock-domain arithmetic.

The simulator's global time unit is the **CPU cycle** (3.2 GHz by default,
matching the paper's Table 1). DRAM timing parameters are specified in
nanoseconds (paper Table 2) or in bus cycles; this module holds the
conversions. All conversions round *up* (a constraint of 13.5 ns is safe
at 44 CPU cycles, unsafe at 43).
"""

from __future__ import annotations

DEFAULT_CPU_FREQ_GHZ = 3.2


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def ns_to_cycles(ns: float, cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ) -> int:
    """Convert a duration in nanoseconds to CPU cycles, rounding up.

    A small epsilon guards against float error turning an exact product
    (e.g. 50 ns * 3.2 = 160.00000000000003) into an extra cycle.
    """
    if ns < 0:
        raise ValueError(f"duration must be non-negative, got {ns}")
    exact = ns * cpu_freq_ghz
    rounded = round(exact)
    if abs(exact - rounded) < 1e-9:
        return int(rounded)
    return int(-(-exact // 1))


def cycles_to_ns(cycles: int, cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ) -> float:
    """Convert CPU cycles back to nanoseconds (exact float)."""
    return cycles / cpu_freq_ghz


def bus_cycles_to_cpu_cycles(bus_cycles: int, bus_freq_mhz: float,
                             cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ) -> int:
    """Convert DRAM bus cycles to CPU cycles, rounding up."""
    if bus_cycles < 0:
        raise ValueError(f"bus_cycles must be non-negative, got {bus_cycles}")
    ns = bus_cycles * 1000.0 / bus_freq_mhz
    return ns_to_cycles(ns, cpu_freq_ghz)
