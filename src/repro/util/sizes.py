"""Human byte-size parsing/formatting shared by store budgets and CLI flags.

``parse_size`` is the single parser behind every budget surface —
``REPRO_CACHE_BUDGET``, ``repro serve --cache-budget/--manifest-budget``,
and ``repro store gc --max-bytes`` — so "64M" means the same number of
bytes everywhere.
"""

from __future__ import annotations

import re
from typing import Optional, Union

_SIZE_UNITS = {"": 1, "b": 1,
               "k": 1 << 10, "kb": 1 << 10, "kib": 1 << 10,
               "m": 1 << 20, "mb": 1 << 20, "mib": 1 << 20,
               "g": 1 << 30, "gb": 1 << 30, "gib": 1 << 30}


def parse_size(text: Union[str, int, None]) -> Optional[int]:
    """``"64M"``/``"1.5GiB"``/``4096`` → bytes; None/"" → None."""
    if text is None:
        return None
    if isinstance(text, int):
        return text
    raw = str(text).strip().lower()
    if not raw:
        return None
    match = re.fullmatch(r"(\d+(?:\.\d+)?)\s*([a-z]*)", raw)
    if not match or match.group(2) not in _SIZE_UNITS:
        raise ValueError(
            f"cannot parse size {text!r}; use bytes or a K/M/G suffix "
            "(e.g. 64M, 1.5GiB)")
    return int(float(match.group(1)) * _SIZE_UNITS[match.group(2)])


def format_size(n: Optional[int]) -> str:
    if n is None:
        return "unbounded"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.1f}{unit}" if unit != "B"
                    else f"{int(value)}B")
        value /= 1024
    return f"{n}B"  # pragma: no cover - unreachable
