"""A minimal deterministic discrete-event queue.

Events fire in (time, sequence) order so that ties are broken by insertion
order, which keeps multi-component simulations reproducible run to run.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: ``seq`` is unique, so heap comparisons are resolved by the
first two integer fields at C level and never reach the event object.
Combined with ``__slots__`` on :class:`Event`, this keeps the simulator's
single hottest data structure free of generated-``__lt__`` dispatch and
per-event ``__dict__`` allocations while preserving the exact firing
order of the original dataclass implementation (ordered by
``(time, seq)``, cancellation skipped at pop).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback. Fires in (time, seq) order for determinism."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time: int, seq: int, callback: Callable[[], Any],
                 _queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Owning queue while the event is pending; cleared on execution so
        # a late cancel() cannot corrupt the queue's live-event count.
        self._queue = _queue

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None

    def __repr__(self) -> str:  # debugging aid; never on the hot path
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live", "now")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0  # pending non-cancelled events (O(1) __len__)
        self.now = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        seq = self._seq
        event = Event(time, seq, callback, self)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_after(self, delay: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        return self.schedule(self.now + delay, callback)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next live event. Returns False if the queue was empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None
            self.now = time
            event.callback()
            return True
        return False

    def run_until(self, deadline: int) -> None:
        """Run events with time <= deadline; advances now to the deadline."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > deadline:
                break
            self.step()
        if self.now < deadline:
            self.now = deadline

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally capped); returns events executed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
