"""A minimal deterministic discrete-event queue.

Events fire in (time, sequence) order so that ties are broken by insertion
order, which keeps multi-component simulations reproducible run to run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, seq) for determinism."""

    time: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Owning queue while the event is pending; cleared on execution so a
    # late cancel() cannot corrupt the queue's live-event count.
    _queue: Optional["EventQueue"] = field(default=None, compare=False,
                                           repr=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0  # pending non-cancelled events (O(1) __len__)
        self.now = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        event = Event(time=time, seq=self._seq, callback=callback,
                      _queue=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        return self.schedule(self.now + delay, callback)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next live event. Returns False if the queue was empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None
            self.now = event.time
            event.callback()
            return True
        return False

    def run_until(self, deadline: int) -> None:
        """Run events with time <= deadline; advances now to the deadline."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > deadline:
                break
            self.step()
        if self.now < deadline:
            self.now = deadline

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally capped); returns events executed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
