"""Runtime sanitizers: the note_* observers wired into the hot path.

``ControllerSanitizer`` receives every DRAM command a
:class:`~repro.dram.controller.MemoryController` issues and replays it
against the shadow protocol model (:mod:`repro.sanitizer.shadow`).
``UncoreSanitizer`` checks read conservation at the MSHR boundary:
every DRAM read issued by the uncore retires exactly once.

Both are attached only when sanitizing is enabled (``REPRO_SANITIZE`` /
``repro run --check``); an un-instrumented run pays one ``is None``
check per hook site and nothing else.

Command notifications come in two flavours:

* *scheduled* commands went through the controller's command-bus
  arbitration (ACT, CAS, fused ACCESS, scheduler-issued PRE) — they
  consume a shadow command-bus slot and require the rank awake;
* *housekeeping* precharges (refresh pre-close, idle row close before
  power-down) are modelled off the command bus by the controller, so
  the shadow checks only bank-level PRE legality for them.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.dram.timing import TimingSet
from repro.sanitizer.shadow import (
    ShadowBank,
    ShadowCmdBus,
    ShadowDataBus,
    ShadowRank,
)
from repro.sanitizer.violations import ProtocolViolation, SanitizerReport

MODE_OFF = 0
MODE_COLLECT = 1
MODE_STRICT = 2

_OFF_VALUES = frozenset(("", "0", "off", "false", "no", "none"))
_STRICT_VALUES = frozenset(("2", "strict", "raise"))


def sanitize_mode(value: Optional[str] = None) -> int:
    """Parse ``REPRO_SANITIZE`` (or an explicit value) into a mode.

    ``""``/``0``/``off`` -> off; ``strict``/``2``/``raise`` -> strict
    (raise on first violation); anything else truthy (``1``, ``on``,
    ``collect``) -> collect.
    """
    if value is None:
        value = os.environ.get("REPRO_SANITIZE", "")
    text = str(value).strip().lower()
    if text in _OFF_VALUES:
        return MODE_OFF
    if text in _STRICT_VALUES:
        return MODE_STRICT
    return MODE_COLLECT


class ControllerSanitizer:
    """Shadow FSM/timing checker for one memory controller."""

    __slots__ = ("report", "name", "ranks", "cmd", "buses", "rank_bus",
                 "close_page", "t_rl", "t_wl", "t_burst",
                 "_access_read_latency", "_access_write_latency")

    def __init__(self, controller, report: SanitizerReport) -> None:
        timing: TimingSet = controller.timing
        device = controller.device
        self.report = report
        self.name = controller.name
        self.ranks: List[ShadowRank] = [
            ShadowRank(timing, device.num_banks, i)
            for i in range(len(controller.ranks))
        ]
        self.cmd = ShadowCmdBus(timing, controller.channel.cmd_bus.slots_per_cycle)
        self.buses: List[ShadowDataBus] = [
            ShadowDataBus(timing) for _ in controller.channel.data_buses
        ]
        self.rank_bus: List[int] = [
            controller.rank_to_bus[i] for i in range(len(controller.ranks))
        ]
        self.close_page = bool(controller._close_page)
        self.t_rl = timing.t_rl
        self.t_wl = timing.t_wl
        self.t_burst = timing.t_burst
        self._access_read_latency = timing.t_rcd + timing.t_rl
        self._access_write_latency = timing.t_rcd + timing.t_wl

    # ------------------------------------------------------------------

    def _flag(self, rule: str, now: int, rank: int, bank: int,
              command: str, conflict: str, detail: str = "") -> None:
        self.report.record(ProtocolViolation(
            rule=rule, time=now, source=self.name, rank=rank, bank=bank,
            command=command, conflict=conflict, detail=detail))

    def _check(self, check, now: int, rank: int, bank: int,
               command: str) -> None:
        if check is not None:
            rule, conflict = check
            self._flag(rule, now, rank, bank, command, conflict)

    def _scheduled(self, now: int, rank: int, bank: int,
                   command: str) -> None:
        """Checks every arbitrated command shares: cmd slot + rank awake."""
        self._check(self.cmd.take_slot(now), now, rank, bank, command)
        self._check(self.ranks[rank].check_available(now), now, rank, bank,
                    command)

    # ------------------------------------------------------------------
    # note_* API, called by the controller under ``_san is not None``
    # ------------------------------------------------------------------

    def note_wake(self, now: int, rank: int, ready_at: int) -> None:
        shadow = self.ranks[rank]
        if not shadow.powered_down:
            self._flag("rank.wake_not_powered_down", now, rank, -1,
                       "WAKE", f"rank awake since wake@{shadow.wake_time}")
        shadow.apply_wake(now, ready_at)

    def note_act(self, now: int, rank: int, bank: int, row: int) -> None:
        command = f"ACT row={row}"
        self._scheduled(now, rank, bank, command)
        shadow_rank = self.ranks[rank]
        self._check(shadow_rank.check_act_spacing(now), now, rank, bank,
                    command)
        shadow_bank = shadow_rank.banks[bank]
        self._check(shadow_bank.check_activate(now), now, rank, bank, command)
        shadow_bank.apply_activate(now, row)
        shadow_rank.apply_act(now)

    def note_pre(self, now: int, rank: int, bank: int,
                 scheduled: bool = True) -> None:
        command = "PRE" if scheduled else "PRE(housekeeping)"
        if scheduled:
            self._scheduled(now, rank, bank, command)
        shadow_bank = self.ranks[rank].banks[bank]
        self._check(shadow_bank.check_precharge(now), now, rank, bank,
                    command)
        shadow_bank.apply_precharge(now)

    def note_cas(self, now: int, rank: int, bank: int, row: int,
                 is_read: bool, data_start: int, end: int) -> None:
        command = (f"READ row={row}" if is_read else f"WRITE row={row}")
        self._scheduled(now, rank, bank, command)
        shadow_bank = self.ranks[rank].banks[bank]
        self._check(shadow_bank.check_cas(now, row, is_read), now, rank,
                    bank, command)
        expected = now + (self.t_rl if is_read else self.t_wl)
        self._data_burst(now, rank, bank, command, is_read,
                         expected, data_start, end)
        shadow_bank.apply_cas(now, is_read)

    def note_access(self, now: int, rank: int, bank: int, is_write: bool,
                    data_start: int, end: int) -> None:
        command = "ACCESS(write)" if is_write else "ACCESS(read)"
        self._scheduled(now, rank, bank, command)
        shadow_rank = self.ranks[rank]
        self._check(shadow_rank.check_act_spacing(now), now, rank, bank,
                    command)
        shadow_bank = shadow_rank.banks[bank]
        self._check(shadow_bank.check_access(now), now, rank, bank, command)
        expected = now + (self._access_write_latency if is_write
                          else self._access_read_latency)
        self._data_burst(now, rank, bank, command, not is_write,
                         expected, data_start, end)
        shadow_bank.apply_access(now)
        shadow_rank.apply_act(now)

    def note_refresh(self, now: int, rank: int, until: int) -> None:
        shadow = self.ranks[rank]
        if now < shadow.wake_time:
            self._flag("rank.cmd_before_wake", now, rank, -1, "REF",
                       f"power-down exit completes at {shadow.wake_time}")
        open_banks = shadow.open_bank_count()
        if open_banks:
            self._flag("rank.refresh_open_banks", now, rank, -1, "REF",
                       f"{open_banks} shadow bank(s) still active")
        # Refresh reaches a sleeping rank directly (the timer must be
        # honoured); it leaves the rank awake, like the real model.
        shadow.powered_down = False
        for bank in shadow.banks:
            bank.apply_refresh(now, until)

    def note_power_down(self, now: int, rank: int) -> None:
        shadow = self.ranks[rank]
        if shadow.powered_down:
            self._flag("rank.power_down_redundant", now, rank, -1,
                       "PDE", f"already asleep since {shadow.last_power_down}")
        open_banks = shadow.open_bank_count()
        if open_banks:
            self._flag("rank.power_down_open_banks", now, rank, -1, "PDE",
                       f"{open_banks} shadow bank(s) still active")
        shadow.powered_down = True
        shadow.last_power_down = now

    # ------------------------------------------------------------------

    def _data_burst(self, now: int, rank: int, bank: int, command: str,
                    is_read: bool, expected_start: int, data_start: int,
                    end: int) -> None:
        """Data-path checks: CAS latency, single-driver bus, burst length."""
        if data_start != expected_start:
            self._flag("bus.data_latency", now, rank, bank, command,
                       f"CAS latency puts data at {expected_start}",
                       detail=f"data_start={data_start}")
        bus = self.buses[self.rank_bus[rank]]
        legal = bus.earliest_start(data_start, is_read, rank)
        if legal != data_start:
            self._flag("bus.data_conflict", now, rank, bank, command,
                       bus.describe_last(),
                       detail=f"burst at {data_start}, legal from {legal}")
        if end != data_start + self.t_burst:
            self._flag("bus.data_burst", now, rank, bank, command,
                       f"tBURST={self.t_burst}",
                       detail=f"burst spans [{data_start}, {end})")
        bus.apply(data_start, end, is_read, rank)


class UncoreSanitizer:
    """Read-conservation checker: each issued DRAM read retires once."""

    __slots__ = ("report", "outstanding")

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        self.outstanding: Dict[int, int] = {}

    def note_read_issued(self, line: int, now: int) -> None:
        prior = self.outstanding.get(line)
        if prior is not None:
            self.report.record(ProtocolViolation(
                rule="uncore.read_double_issue", time=now, source="uncore",
                command=f"read line={line:#x}",
                conflict=f"read of the same line issued at {prior}, "
                         f"still outstanding"))
        self.outstanding[line] = now

    def note_read_retired(self, line: int, time: int) -> None:
        if self.outstanding.pop(line, None) is None:
            self.report.record(ProtocolViolation(
                rule="uncore.read_orphan_retire", time=time, source="uncore",
                command=f"retire line={line:#x}",
                conflict="no outstanding read for this line"))

    def finalize(self, now: int, queue_drained: bool) -> None:
        """End-of-run conservation check.

        Only meaningful when the event queue fully drained: a run that
        stops the moment the last core finishes legitimately abandons
        in-flight fills (e.g. tail prefetches).
        """
        if not queue_drained:
            return
        for line, issued in sorted(self.outstanding.items())[:16]:
            self.report.record(ProtocolViolation(
                rule="uncore.read_unretired", time=now, source="uncore",
                command=f"read line={line:#x}",
                conflict=f"issued at {issued}, never retired"))


def attach_sanitizers(memory, uncore, report: SanitizerReport):
    """Instrument every conventional controller plus the uncore.

    Returns ``(controller_sanitizers, uncore_sanitizer)``. Controllers
    are discovered through the memory system's telemetry protocol, so
    every registered organisation (homogeneous, CWF, page placement,
    HMC) is covered without organisation-specific wiring.
    """
    from repro.dram.controller import MemoryController

    controller_sans: List[ControllerSanitizer] = []
    for mc in memory.telemetry_controllers():
        if isinstance(mc, MemoryController):
            san = ControllerSanitizer(mc, report)
            mc._san = san
            controller_sans.append(san)
    uncore_san = UncoreSanitizer(report)
    uncore._san = uncore_san
    return controller_sans, uncore_san
