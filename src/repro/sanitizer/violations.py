"""Structured protocol-violation records and the run-level report.

A violation is one illegal command observed by the shadow protocol
model: the rule it broke, the cycle it happened, where (controller /
rank / bank), the offending command, and the earlier event it conflicts
with. Violations are *reported*, never acted on — the sanitizer watches
the real simulation and must not perturb it (resumed and sanitized runs
must stay byte-identical to plain ones).

The report is deliberately small: per-rule counts are exact, but only
the first :data:`MAX_STORED` full records are kept so a badly broken
model cannot exhaust memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

# Full records kept per report; counts keep tallying past this.
MAX_STORED = 256


@dataclass(frozen=True)
class ProtocolViolation:
    """One observed protocol violation."""

    rule: str          # catalogue name, e.g. "bank.cas_trcd"
    time: int          # CPU cycle the offending command issued
    source: str        # controller name, "uncore", or "events"
    rank: int = -1     # -1 when the rule has no rank locus
    bank: int = -1     # -1 when the rule has no bank locus
    command: str = ""  # the offending command, e.g. "ACT row=12"
    conflict: str = "" # the earlier event it conflicts with
    detail: str = ""   # free-form extra context

    def describe(self) -> str:
        where = self.source
        if self.rank >= 0:
            where += f"/rank{self.rank}"
        if self.bank >= 0:
            where += f"/bank{self.bank}"
        text = f"[{self.rule}] t={self.time} {where}: {self.command}"
        if self.conflict:
            text += f" conflicts with {self.conflict}"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "time": self.time, "source": self.source,
            "rank": self.rank, "bank": self.bank, "command": self.command,
            "conflict": self.conflict, "detail": self.detail,
        }


class SanitizerError(RuntimeError):
    """Raised in strict mode on the first violation."""

    def __init__(self, violation: ProtocolViolation) -> None:
        super().__init__(violation.describe())
        self.violation = violation


class SanitizerReport:
    """Collects violations for one process (all runs, all controllers)."""

    __slots__ = ("violations", "counts", "total", "strict")

    def __init__(self, strict: bool = False) -> None:
        self.violations: List[ProtocolViolation] = []
        self.counts: Dict[str, int] = {}
        self.total = 0
        self.strict = strict

    def record(self, violation: ProtocolViolation) -> None:
        self.total += 1
        self.counts[violation.rule] = self.counts.get(violation.rule, 0) + 1
        if len(self.violations) < MAX_STORED:
            self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation)

    @property
    def clean(self) -> bool:
        return self.total == 0

    def summary(self) -> dict:
        return {
            "total": self.total,
            "by_rule": dict(sorted(self.counts.items())),
            "stored": len(self.violations),
        }

    def merge(self, counts: Dict[str, int]) -> None:
        """Fold per-rule counts from another report (e.g. a worker)."""
        for rule, n in counts.items():
            self.counts[rule] = self.counts.get(rule, 0) + n
            self.total += n


# Process-wide report. Worker processes each get their own (fresh
# interpreter); their per-rule counts travel back to the parent as
# ``sanitizer.*`` telemetry counters.
_GLOBAL = SanitizerReport()


def global_report() -> SanitizerReport:
    return _GLOBAL


def reset_global_report(strict: bool = False) -> SanitizerReport:
    """Install a fresh process-wide report and return it."""
    global _GLOBAL
    _GLOBAL = SanitizerReport(strict=strict)
    return _GLOBAL
