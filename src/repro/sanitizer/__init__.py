"""DRAM protocol sanitizer: an always-available runtime invariant checker.

Off by default. Enable with ``REPRO_SANITIZE=1`` (collect violations),
``REPRO_SANITIZE=strict`` (raise on the first one), or ``repro run
--check``. When active, every memory controller replays its command
stream against a shadow protocol model re-derived from the timing set
(bank FSM legality, tRC/tRCD/tRP/tRAS windows, tFAW/tRRD rank spacing,
tRTRS/tWTR bus turnaround, single-driver bus occupancy, power-down
legality), and the uncore checks read conservation. Violations are
reported out-of-band — results stay byte-identical to unsanitized runs.
"""

from repro.sanitizer.runtime import (
    MODE_COLLECT,
    MODE_OFF,
    MODE_STRICT,
    ControllerSanitizer,
    UncoreSanitizer,
    attach_sanitizers,
    sanitize_mode,
)
from repro.sanitizer.violations import (
    ProtocolViolation,
    SanitizerError,
    SanitizerReport,
    global_report,
    reset_global_report,
)

__all__ = [
    "MODE_COLLECT",
    "MODE_OFF",
    "MODE_STRICT",
    "ControllerSanitizer",
    "UncoreSanitizer",
    "ProtocolViolation",
    "SanitizerError",
    "SanitizerReport",
    "attach_sanitizers",
    "global_report",
    "reset_global_report",
    "sanitize_mode",
]
