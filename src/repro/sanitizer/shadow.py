"""Shadow protocol model: independent re-derivation of DRAM legality.

The shadow classes mirror the JEDEC-style rules the real bank / rank /
bus models enforce, but from their own state, fed only by the command
stream the controller reports (``note_act`` / ``note_pre`` / ...). They
never read the live ``Bank``/``Rank``/``DataBus`` objects, so a bug that
corrupts the real timing state (a missed constraint, a stale horizon)
shows up as a divergence here instead of silently propagating.

Check methods return a ``(rule, conflict)`` tuple for the *first* rule
the command breaks, or ``None`` when it is legal; apply methods then
advance the shadow state unconditionally (even after a violation) so one
bad command does not cascade into a storm of follow-on reports.

All quantities are integer CPU cycles, exactly like the real models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dram.timing import TimingSet

FAR_FUTURE = 1 << 62

Check = Optional[Tuple[str, str]]


class ShadowBank:
    """Bank FSM legality: ACT/READ/WRITE/PRE windows from first principles."""

    __slots__ = (
        "index", "active", "open_row",
        "next_activate", "next_read", "next_write", "next_precharge",
        "last_act", "last_pre", "last_cas", "last_refresh",
        "t_rcd", "t_ras", "t_rc", "t_rp", "t_ccd",
        "_write_recovery", "_access_occupancy",
    )

    def __init__(self, timing: TimingSet, index: int) -> None:
        self.index = index
        self.active = False
        self.open_row: Optional[int] = None
        self.next_activate = 0
        self.next_read = FAR_FUTURE
        self.next_write = FAR_FUTURE
        self.next_precharge = 0
        # Last observed command of each class, for conflict reporting.
        self.last_act = -1
        self.last_pre = -1
        self.last_cas = -1
        self.last_refresh = -1
        self.t_rcd = timing.t_rcd
        self.t_ras = timing.t_ras
        self.t_rc = timing.t_rc
        self.t_rp = timing.t_rp
        self.t_ccd = timing.t_ccd
        self._write_recovery = timing.t_wl + timing.t_burst + timing.t_wtr
        self._access_occupancy = max(timing.t_rc, timing.t_rcd + timing.t_rp)

    # --- ACT ----------------------------------------------------------

    def check_activate(self, now: int) -> Check:
        if self.active:
            return ("bank.act_on_active",
                    f"ACT@{self.last_act} left row {self.open_row} open")
        if now < self.next_activate:
            if self.last_refresh > self.last_pre:
                return ("bank.act_in_refresh",
                        f"REF@{self.last_refresh} blocks until "
                        f"{self.next_activate}")
            return ("bank.act_timing",
                    f"tRC/tRP window open at {self.next_activate} "
                    f"(ACT@{self.last_act}, PRE@{self.last_pre})")
        return None

    def apply_activate(self, now: int, row: int) -> None:
        self.active = True
        self.open_row = row
        self.next_read = now + self.t_rcd
        self.next_write = now + self.t_rcd
        self.next_precharge = now + self.t_ras
        self.next_activate = now + self.t_rc
        self.last_act = now

    # --- column READ / WRITE ------------------------------------------

    def check_cas(self, now: int, row: int, is_read: bool) -> Check:
        if not self.active:
            return ("bank.cas_on_idle",
                    f"bank precharged since PRE@{self.last_pre}")
        if self.open_row != row:
            return ("bank.cas_row_mismatch",
                    f"ACT@{self.last_act} opened row {self.open_row}")
        horizon = self.next_read if is_read else self.next_write
        if now < horizon:
            return ("bank.cas_timing",
                    f"tRCD/tCCD window open at {horizon} "
                    f"(ACT@{self.last_act}, CAS@{self.last_cas})")
        return None

    def apply_cas(self, now: int, is_read: bool) -> None:
        next_col = now + self.t_ccd
        if next_col > self.next_read:
            self.next_read = next_col
        if next_col > self.next_write:
            self.next_write = next_col
        bound = next_col if is_read else now + self._write_recovery
        if bound > self.next_precharge:
            self.next_precharge = bound
        self.last_cas = now

    # --- PRE ----------------------------------------------------------

    def check_precharge(self, now: int) -> Check:
        if not self.active:
            return ("bank.pre_on_idle",
                    f"bank already precharged (PRE@{self.last_pre})")
        if now < self.next_precharge:
            return ("bank.pre_timing",
                    f"tRAS/write-recovery window open at "
                    f"{self.next_precharge} (ACT@{self.last_act}, "
                    f"CAS@{self.last_cas})")
        return None

    def apply_precharge(self, now: int) -> None:
        self.active = False
        self.open_row = None
        ready = now + self.t_rp
        if ready > self.next_activate:
            self.next_activate = ready
        self.next_read = FAR_FUTURE
        self.next_write = FAR_FUTURE
        self.last_pre = now

    # --- close-page fused ACCESS --------------------------------------

    def check_access(self, now: int) -> Check:
        if now < self.next_activate:
            return ("bank.access_busy",
                    f"tRC occupancy from ACCESS@{self.last_act} ends "
                    f"at {self.next_activate}")
        return None

    def apply_access(self, now: int) -> None:
        self.next_activate = now + self._access_occupancy
        self.last_act = now
        self.last_cas = now

    # --- refresh ------------------------------------------------------

    def apply_refresh(self, now: int, until: int) -> None:
        self.active = False
        self.open_row = None
        self.next_read = FAR_FUTURE
        self.next_write = FAR_FUTURE
        if until > self.next_activate:
            self.next_activate = until
        self.last_refresh = now


class ShadowRank:
    """Rank-wide legality: tRRD, tFAW sliding window, power-down state."""

    __slots__ = ("index", "banks", "recent_acts", "next_act_allowed",
                 "powered_down", "wake_time", "last_power_down",
                 "t_faw", "t_rrd")

    def __init__(self, timing: TimingSet, num_banks: int, index: int) -> None:
        self.index = index
        self.banks: List[ShadowBank] = [
            ShadowBank(timing, b) for b in range(num_banks)
        ]
        # Sliding window of the most recent ACT/ACCESS issue times.
        self.recent_acts: List[int] = []
        self.next_act_allowed = 0
        self.powered_down = False
        self.wake_time = 0
        self.last_power_down = -1
        self.t_faw = timing.t_faw
        self.t_rrd = timing.t_rrd

    def open_bank_count(self) -> int:
        return sum(1 for b in self.banks if b.active)

    def check_available(self, now: int) -> Check:
        """A scheduled command requires the rank awake and wake complete."""
        if self.powered_down:
            return ("rank.cmd_powered_down",
                    f"power-down entered at {self.last_power_down}")
        if now < self.wake_time:
            return ("rank.cmd_before_wake",
                    f"power-down exit completes at {self.wake_time}")
        return None

    def check_act_spacing(self, now: int) -> Check:
        """tRRD and the rolling-four-ACT tFAW window."""
        if now < self.next_act_allowed:
            return ("rank.trrd",
                    f"previous ACT@{self.next_act_allowed - self.t_rrd}")
        if self.t_faw > 0 and len(self.recent_acts) >= 4:
            window = self.recent_acts[-4] + self.t_faw
            if now < window:
                return ("rank.tfaw",
                        f"4th-last ACT@{self.recent_acts[-4]} holds the "
                        f"window until {window}")
        return None

    def apply_act(self, now: int) -> None:
        self.recent_acts.append(now)
        if len(self.recent_acts) > 8:
            del self.recent_acts[:-8]
        self.next_act_allowed = now + self.t_rrd

    def apply_wake(self, now: int, ready_at: int) -> None:
        self.powered_down = False
        self.wake_time = ready_at


class ShadowDataBus:
    """Single-driver data bus: burst occupancy plus turnaround gaps."""

    __slots__ = ("free_at", "last_was_read", "last_rank", "last_start",
                 "t_burst", "t_rtrs", "t_wtr")

    def __init__(self, timing: TimingSet) -> None:
        self.free_at = 0
        self.last_was_read: Optional[bool] = None
        self.last_rank: Optional[int] = None
        self.last_start = -1
        self.t_burst = timing.t_burst
        self.t_rtrs = timing.t_rtrs
        self.t_wtr = timing.t_wtr

    def earliest_start(self, desired: int, is_read: bool, rank: int) -> int:
        free_at = self.free_at
        start = desired if desired > free_at else free_at
        last = self.last_was_read
        if last is None:
            return start
        gap = 0
        if self.last_rank is not None and rank != self.last_rank:
            gap = self.t_rtrs
        if is_read:
            if not last and self.t_wtr > gap:
                gap = self.t_wtr
        elif last and self.t_rtrs > gap:
            gap = self.t_rtrs
        gapped = free_at + gap
        return gapped if gapped > start else start

    def describe_last(self) -> str:
        if self.last_was_read is None:
            return "idle bus"
        kind = "READ" if self.last_was_read else "WRITE"
        return (f"{kind} burst from rank {self.last_rank} "
                f"@{self.last_start} (bus free at {self.free_at})")

    def apply(self, start: int, end: int, is_read: bool, rank: int) -> None:
        # Resync even after a violation so one bad burst does not make
        # every later burst look misplaced.
        if end > self.free_at:
            self.free_at = end
        self.last_was_read = is_read
        self.last_rank = rank
        self.last_start = start


class ShadowCmdBus:
    """Slotted command bus: at most N commands per bus cycle."""

    __slots__ = ("slots_per_cycle", "bus_cycle", "used")

    def __init__(self, timing: TimingSet, slots_per_cycle: int) -> None:
        self.slots_per_cycle = slots_per_cycle
        self.bus_cycle = max(1, timing.bus_cycle)
        self.used: Dict[int, int] = {}

    def take_slot(self, now: int) -> Check:
        """Consume one slot; reports overflow but still counts it."""
        cyc = now // self.bus_cycle
        used = self.used
        count = used.get(cyc, 0) + 1
        used[cyc] = count
        if len(used) > 4096:
            cutoff = cyc - 2048
            for key in [k for k in used if k < cutoff]:
                del used[key]
        if count > self.slots_per_cycle:
            return ("bus.cmd_overflow",
                    f"{count} commands in bus cycle {cyc} "
                    f"({self.slots_per_cycle} slots)")
        return None
