"""Parameter-sweep utility for sensitivity studies.

Architecture papers live and die by sensitivity analyses; this module
makes them one-liners over the simulator::

    from repro.sweep import sweep
    table = sweep("leslie3d", memory=MemoryKind.RL,
                  parameter="mshr_capacity", values=[16, 64, 256])
    print(table.format())

Supported parameters (each maps onto the config object that owns it):

* ``mshr_capacity`` — L2 MSHR file size.
* ``prefetch_degree`` / ``prefetch_distance`` — stride prefetcher reach.
* ``prefetcher_enabled`` — on/off.
* ``rob_size`` — reorder-buffer entries (64 in the paper).
* ``read_queue_size`` / ``write_queue_size`` — controller queues.
* ``target_dram_reads`` — run length (convergence checks).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from repro.cpu.core import CoreConfig
from repro.cpu.prefetch import PrefetcherConfig
from repro.cpu.uncore import UncoreConfig
from repro.dram.controller import ControllerConfig
from repro.experiments.runner import ExperimentTable
from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import SimResult, run_benchmark


def _with_uncore(config: SimConfig, **updates) -> SimConfig:
    return dataclasses.replace(
        config, uncore=dataclasses.replace(config.uncore, **updates))


def _with_prefetcher(config: SimConfig, **updates) -> SimConfig:
    prefetcher = dataclasses.replace(config.uncore.prefetcher, **updates)
    return _with_uncore(config, prefetcher=prefetcher)


_APPLIERS: Dict[str, Callable[[SimConfig, object], SimConfig]] = {
    "mshr_capacity": lambda c, v: _with_uncore(c, mshr_capacity=int(v)),
    "prefetch_degree": lambda c, v: _with_prefetcher(c, degree=int(v)),
    "prefetch_distance": lambda c, v: _with_prefetcher(c, distance=int(v)),
    "prefetcher_enabled": lambda c, v: _with_prefetcher(c, enabled=bool(v)),
    "rob_size": lambda c, v: dataclasses.replace(
        c, core=dataclasses.replace(c.core, rob_size=int(v))),
    "target_dram_reads": lambda c, v: dataclasses.replace(
        c, target_dram_reads=int(v)),
}

# Controller-level parameters need a custom memory build; they are
# handled inside run_point.
_CONTROLLER_PARAMS = {"read_queue_size", "write_queue_size"}


def apply_parameter(config: SimConfig, parameter: str,
                    value: object) -> SimConfig:
    """Return a config with ``parameter`` set to ``value``."""
    if parameter in _CONTROLLER_PARAMS:
        return config  # applied at memory-build time in run_point
    try:
        return _APPLIERS[parameter](config, value)
    except KeyError:
        raise ValueError(
            f"unknown sweep parameter {parameter!r}; "
            f"known: {sorted(_APPLIERS) + sorted(_CONTROLLER_PARAMS)}"
        ) from None


def run_point(benchmark: str, base: SimConfig, parameter: str,
              value: object) -> SimResult:
    """One sweep point."""
    config = apply_parameter(base, parameter, value)
    if parameter not in _CONTROLLER_PARAMS:
        return run_benchmark(benchmark, config)

    # Controller queue sizes: build the memory explicitly.
    from repro.memsys.homogeneous import HomogeneousConfig, HomogeneousMemory
    from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
    from repro.workloads.profiles import profile_for

    if config.memory is not MemoryKind.DDR3:
        raise ValueError("controller-queue sweeps support the DDR3 "
                         "baseline only")
    cc = ControllerConfig(**{parameter: int(value)})
    profile = profile_for(benchmark)
    traces = make_traces(profile, config)
    system = SimulationSystem(config, traces, profile=profile)
    system.memory = HomogeneousMemory(system.events, HomogeneousConfig(),
                                      controller_config=cc)
    system.uncore.memory = system.memory
    prewarm_l2(system, profile)
    result = system.run()
    result.benchmark = benchmark
    return result


def sweep(benchmark: str, parameter: str, values: Sequence[object],
          memory: MemoryKind = MemoryKind.DDR3,
          target_dram_reads: int = 1500,
          base: SimConfig = None) -> ExperimentTable:
    """Sweep one parameter; returns a table of performance metrics."""
    base = base or SimConfig(memory=memory,
                             target_dram_reads=target_dram_reads)
    base = base.with_memory(memory)
    table = ExperimentTable(
        experiment_id=f"sweep:{parameter}",
        title=f"{benchmark} on {memory.value}: sensitivity to {parameter}",
        columns=[parameter, "throughput", "critical_latency",
                 "fill_latency", "bus_utilization", "dram_reads"])
    for value in values:
        result = run_point(benchmark, base, parameter, value)
        table.add(**{parameter: value,
                     "throughput": result.throughput,
                     "critical_latency": result.avg_critical_latency,
                     "fill_latency": result.avg_fill_latency,
                     "bus_utilization": result.bus_utilization,
                     "dram_reads": result.dram_reads})
    return table
