"""Parameter-sweep utility for sensitivity studies.

Architecture papers live and die by sensitivity analyses; this module
makes them one-liners over the simulator::

    from repro.sweep import sweep
    table = sweep("leslie3d", memory="rl",
                  parameter="mshr_capacity", values=[16, 64, 256])
    print(table.format())

``memory`` is a registry backend name, so sensitivity studies run
against any registered organisation — including plugins and the HMC
backends — without touching this module.

Each sweep point is a declarative
:class:`~repro.experiments.specs.RunSpec`, so sweeps fan out over the
same process-pool executor as the figure suite (``jobs=4`` runs four
points at once; results come back in declared order either way).

Supported parameters (each maps onto the config object that owns it):

* ``mshr_capacity`` — L2 MSHR file size.
* ``prefetch_degree`` / ``prefetch_distance`` — stride prefetcher reach.
* ``prefetcher_enabled`` — on/off.
* ``rob_size`` — reorder-buffer entries (64 in the paper).
* ``read_queue_size`` / ``write_queue_size`` — controller queues.
* ``target_dram_reads`` — run length (convergence checks).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dram.controller import ControllerConfig
from repro.experiments.executor import run_specs
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.experiments.specs import (
    _CONTROLLER_PARAMS,
    RunSpec,
    apply_parameter,
    register_runner,
)
from repro.memsys.registry import resolve_name
from repro.sim.config import SimConfig
from repro.sim.system import SimResult


@register_runner("sweep_controller_queue")
def _controller_queue_runner(spec: RunSpec,
                             config: ExperimentConfig) -> SimResult:
    """Controller queue sizes need a custom memory build."""
    from repro.memsys.homogeneous import HomogeneousConfig, HomogeneousMemory
    from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
    from repro.workloads.profiles import profile_for

    sim_config = spec.resolved_sim_config(config)
    if sim_config.memory != "ddr3":
        raise ValueError("controller-queue sweeps support the DDR3 "
                         "baseline only")
    (parameter, value), = spec.params
    cc = ControllerConfig(**{parameter: int(value)})
    profile = profile_for(spec.benchmark)
    traces = make_traces(profile, sim_config)
    system = SimulationSystem(sim_config, traces, profile=profile)
    system.memory = HomogeneousMemory(system.events, HomogeneousConfig(),
                                      controller_config=cc)
    system.uncore.memory = system.memory
    prewarm_l2(system, profile)
    result = system.run()
    result.benchmark = spec.benchmark
    return result


def sweep_spec(benchmark: str, base: SimConfig, parameter: str,
               value: object) -> RunSpec:
    """The declarative spec for one sweep point."""
    variant = f"sweep:{parameter}={value}"
    if parameter in _CONTROLLER_PARAMS:
        return RunSpec(benchmark, base.memory, variant=variant,
                       runner="sweep_controller_queue",
                       params=((parameter, value),), base=base)
    # Validate eagerly so unknown parameters fail before scheduling.
    apply_parameter(base, parameter, value)
    return RunSpec(benchmark, base.memory, variant=variant,
                   overrides=((parameter, value),), base=base)


def run_point(benchmark: str, base: SimConfig, parameter: str,
              value: object) -> SimResult:
    """One sweep point, in-process."""
    spec = sweep_spec(benchmark, base, parameter, value)
    config = ExperimentConfig(target_dram_reads=base.target_dram_reads,
                              seed=base.seed, cache_dir=None)
    from repro.experiments.specs import execute_spec
    return execute_spec(spec, config)


def sweep(benchmark: str, parameter: str, values: Sequence[object],
          memory: str = "ddr3",
          target_dram_reads: int = 1500,
          base: SimConfig = None,
          jobs: Optional[int] = None) -> ExperimentTable:
    """Sweep one parameter; returns a table of performance metrics.

    ``jobs`` fans the points out over worker processes (None defers to
    ``REPRO_JOBS``; 1 = serial in-process). Sweeps are not cached —
    every call simulates.
    """
    memory = resolve_name(memory)
    base = base or SimConfig(memory=memory,
                             target_dram_reads=target_dram_reads)
    base = base.with_memory(memory)
    specs = [sweep_spec(benchmark, base, parameter, value)
             for value in values]
    config = ExperimentConfig(target_dram_reads=base.target_dram_reads,
                              seed=base.seed, cache_dir=None, jobs=jobs)
    results = run_specs(specs, config, jobs=jobs)
    table = ExperimentTable(
        experiment_id=f"sweep:{parameter}",
        title=f"{benchmark} on {memory}: sensitivity to {parameter}",
        columns=[parameter, "throughput", "critical_latency",
                 "fill_latency", "bus_utilization", "dram_reads"])
    for value, spec in zip(values, specs):
        result = results[spec]
        table.add(**{parameter: value,
                     "throughput": result.throughput,
                     "critical_latency": result.avg_critical_latency,
                     "fill_latency": result.avg_fill_latency,
                     "bus_utilization": result.bus_utilization,
                     "dram_reads": result.dram_reads})
    return table
