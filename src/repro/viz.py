"""Terminal visualisation for experiment tables.

Pure-text rendering (no plotting dependencies): horizontal bar charts
for the figure-style tables and a scatter grid for Figure 11. Used by
the examples and handy in a REPL::

    from repro.viz import bar_chart
    from repro.experiments.cwf_eval import figure_6
    print(bar_chart(figure_6(), value="rl", label="benchmark",
                    reference=1.0))
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentTable


def render_bars(items: Sequence[Tuple[str, float]], width: int = 50,
                reference: Optional[float] = None,
                fmt: str = "{:.3f}") -> str:
    """Horizontal bars; an optional reference value draws a marker."""
    if not items:
        return "(no data)"
    peak = max(abs(v) for _, v in items)
    if reference is not None:
        peak = max(peak, abs(reference))
    if peak == 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        n = round(abs(value) / peak * width)
        bar = "#" * n
        if reference is not None:
            ref_pos = round(abs(reference) / peak * width)
            bar = bar.ljust(max(ref_pos + 1, n))
            if 0 <= ref_pos < len(bar):
                marker = "|" if ref_pos >= n else "+"
                bar = bar[:ref_pos] + marker + bar[ref_pos + 1:]
        lines.append(f"{label.rjust(label_width)} {fmt.format(value):>8} "
                     f"{bar.rstrip()}")
    return "\n".join(lines)


def bar_chart(table: ExperimentTable, value: str, label: str = "benchmark",
              width: int = 50, reference: Optional[float] = None,
              skip: Sequence[str] = ("MEAN",)) -> str:
    """Bar chart of one column of an experiment table."""
    items = [(str(row[label]), float(row[value]))
             for row in table.rows
             if row.get(label) not in skip
             and isinstance(row.get(value), (int, float))]
    header = f"{table.experiment_id}: {table.title} [{value}]"
    return header + "\n" + render_bars(items, width=width,
                                       reference=reference)


def scatter(points: Sequence[Tuple[float, float]],
            labels: Optional[Sequence[str]] = None,
            width: int = 60, height: int = 18,
            x_label: str = "x", y_label: str = "y") -> str:
    """Character-grid scatter plot (used for Figure 11)."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, (x, y) in enumerate(points):
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        mark = "*"
        if labels is not None and labels[i]:
            mark = labels[i][0]
        grid[row][col] = mark
    lines = [f"{y_label} [{y_min:.3f} .. {y_max:.3f}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_min:.3f} .. {x_max:.3f}]")
    return "\n".join(lines)


def table_scatter(table: ExperimentTable, x: str, y: str,
                  label: str = "benchmark", **kwargs) -> str:
    rows = [r for r in table.rows
            if isinstance(r.get(x), (int, float))
            and isinstance(r.get(y), (int, float))
            and r.get(label) != "MEAN"]
    points = [(float(r[x]), float(r[y])) for r in rows]
    labels = [str(r.get(label, "")) for r in rows]
    header = f"{table.experiment_id}: {table.title}"
    return header + "\n" + scatter(points, labels, x_label=x, y_label=y,
                                   **kwargs)
