"""EXPERIMENTS.md generator: paper-vs-measured for every artefact.

Runs (or recalls from cache) every experiment and writes a markdown
report comparing the paper's headline numbers with the measured ones.

Usage::

    python -m repro.report              # writes EXPERIMENTS.md
    python -m repro.report --reads 20000 --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import datetime
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.experiments import (
    ALL_EXPERIMENTS,
    MISSING,
    ParallelExecutor,
    failure_appendix,
    suite_specs,
)
from repro.experiments.runner import ExperimentConfig, ExperimentTable, default_config


@dataclass
class PaperClaim:
    """One quantitative claim from the paper, checked against a table."""

    description: str
    paper_value: str
    measure: Callable[[ExperimentTable], float]
    format: str = "{:.3f}"

    def measured(self, table: ExperimentTable) -> str:
        try:
            return self.format.format(self.measure(table))
        except Exception as exc:  # pragma: no cover - report robustness
            return f"error: {exc}"


def _mean_row(table: ExperimentTable, column: str) -> float:
    for row in table.rows:
        if row.get("benchmark") == "MEAN":
            value = row[column]
            # MISSING propagates (and formats as "—") instead of
            # raising: a failed run costs one claim, not the report.
            return value if value is MISSING else float(value)
    raise KeyError("no MEAN row")


def _flavour_mean(table: ExperimentTable, flavour: str) -> float:
    for row in table.rows:
        if row.get("benchmark") == "MEAN" and row.get("flavour") == flavour:
            value = row["total"]
            return value if value is MISSING else float(value)
    raise KeyError(flavour)


CLAIMS = {
    "fig1a": [
        PaperClaim("homogeneous RLDRAM3 throughput vs DDR3", "+31%",
                   lambda t: _mean_row(t, "rldram3")),
        PaperClaim("homogeneous LPDDR2 throughput vs DDR3", "-13%",
                   lambda t: _mean_row(t, "lpddr2")),
    ],
    "fig1b": [
        PaperClaim("RLDRAM3 memory latency vs DDR3", "~43% lower",
                   lambda t: _flavour_mean(t, "rldram3")
                   / _flavour_mean(t, "ddr3")),
        PaperClaim("LPDDR2 memory latency vs DDR3", "~41% higher",
                   lambda t: _flavour_mean(t, "lpddr2")
                   / _flavour_mean(t, "ddr3")),
    ],
    "fig2": [
        PaperClaim("RLDRAM3/DDR3 chip power ratio at idle", "much higher",
                   lambda t: t.rows[0]["rldram3_mw"] / t.rows[0]["ddr3_mw"],
                   "{:.1f}x"),
        PaperClaim("RLDRAM3/DDR3 chip power ratio at 100%", "comparable",
                   lambda t: t.rows[-1]["rldram3_mw"] / t.rows[-1]["ddr3_mw"],
                   "{:.1f}x"),
    ],
    "fig3": [
        PaperClaim("per-line dominant-word bias (leslie3d)",
                   "well-defined bias",
                   lambda t: next(r["dominant_fraction"] for r in t.rows
                                  if r["benchmark"]
                                  == "leslie3d-mean-dominance")),
        PaperClaim("per-line dominant-word bias (mcf)", "well-defined bias",
                   lambda t: next(r["dominant_fraction"] for r in t.rows
                                  if r["benchmark"] == "mcf-mean-dominance")),
    ],
    "fig4": [
        PaperClaim("suite-average word-0 critical fraction", "67%",
                   lambda t: _mean_row(t, "word0_fraction")),
        PaperClaim("adaptive predictor coverage bound", "79%",
                   lambda t: _mean_row(t, "repeat_fraction")),
    ],
    "fig6": [
        PaperClaim("RD throughput vs baseline", "+21%",
                   lambda t: _mean_row(t, "rd")),
        PaperClaim("RL throughput vs baseline", "+12.9%",
                   lambda t: _mean_row(t, "rl")),
        PaperClaim("DL throughput vs baseline", "-9%",
                   lambda t: _mean_row(t, "dl")),
    ],
    "fig7": [
        PaperClaim("RD critical-word latency vs baseline", "-30%",
                   lambda t: _mean_row(t, "rd") / _mean_row(t, "ddr3")),
        PaperClaim("RL critical-word latency vs baseline", "-22%",
                   lambda t: _mean_row(t, "rl") / _mean_row(t, "ddr3")),
    ],
    "fig8": [
        PaperClaim("critical words served by RLDRAM3 (static)", "67%",
                   lambda t: _mean_row(t, "fast_fraction")),
    ],
    "fig9": [
        PaperClaim("RL adaptive vs baseline", "+15.7%",
                   lambda t: _mean_row(t, "rl_ad")),
        PaperClaim("RL oracle vs baseline", "+28%",
                   lambda t: _mean_row(t, "rl_or")),
        PaperClaim("all-RLDRAM3 vs baseline", "+31%",
                   lambda t: _mean_row(t, "rldram3")),
    ],
    "fig10": [
        PaperClaim("RL system energy vs baseline", "-6%",
                   lambda t: _mean_row(t, "rl")),
        PaperClaim("DL system energy vs baseline", "-13%",
                   lambda t: _mean_row(t, "dl")),
        PaperClaim("RL memory energy vs baseline", "-15%",
                   lambda t: _mean_row(t, "rl_memory_energy")),
    ],
    "sec611_random": [
        PaperClaim("random critical-word mapping vs baseline", "+2.1%",
                   lambda t: _mean_row(t, "rl_random")),
    ],
    "sec611_noprefetch": [
        PaperClaim("RL gain without prefetcher", "+17.3%",
                   lambda t: _mean_row(t, "rl_noprefetch")),
    ],
    "sec71": [
        PaperClaim("page placement vs baseline", "~+8% (range -9%..+11%)",
                   lambda t: _mean_row(t, "page_placement")),
    ],
    "sec72": [
        PaperClaim("RL memory-energy savings, unterminated LPDRAM",
                   "26.1%",
                   lambda t: _mean_row(t, "unterminated")),
    ],
}


def _prefetch_results(config: ExperimentConfig, keys: List[str],
                      jobs: Optional[int] = None,
                      progress: bool = False):
    """One scheduler pass over the union of the figures' spec lists.

    Returns ``(results, executor)`` — the executor carries the timings
    and any :class:`FailedRun` records for the failure appendix.
    """
    executor = ParallelExecutor(config, jobs=jobs, progress=progress)
    return executor.run(suite_specs(keys, config)), executor


def collect_tables(config: Optional[ExperimentConfig] = None,
                   experiments: Optional[List[str]] = None,
                   jobs: Optional[int] = None) -> List[ExperimentTable]:
    """Run (or recall) the listed experiments and return their tables."""
    config = config or default_config()
    keys = experiments or list(ALL_EXPERIMENTS)
    results, _ = _prefetch_results(config, keys, jobs=jobs)
    return [ALL_EXPERIMENTS[key](config, results=results) for key in keys]


def render_report(config: Optional[ExperimentConfig] = None,
                  experiments: Optional[List[str]] = None,
                  jobs: Optional[int] = None) -> str:
    config = config or default_config()
    keys = experiments or list(ALL_EXPERIMENTS)
    results, executor = _prefetch_results(config, keys, jobs=jobs,
                                          progress=True)
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Auto-generated by `python -m repro.report`. Absolute numbers are",
        "not expected to match the paper (different substrate, synthetic",
        "workloads, runs of "
        f"{config.target_dram_reads} DRAM fetches vs the paper's 2M); the",
        "reproduction target is the *shape*: who wins, in what order, and",
        "roughly by what factor. Normalised values: 1.000 = DDR3 baseline.",
        "",
        f"Generated {datetime.date.today().isoformat()}, "
        f"{config.target_dram_reads} fetches/run, "
        f"suite of {len(config.suite())} benchmarks.",
        "",
        "## Running the suite in parallel",
        "",
        "Every experiment declares its simulations as `RunSpec`s; the",
        "suite scheduler dedupes the union (shared DDR3 baselines run",
        "once) and fans it out over `--jobs N` worker processes",
        "(`python -m repro.report --jobs 4`, or `REPRO_JOBS=4`; 0 = one",
        "per CPU). `--jobs 1` (the default) runs serially in-process;",
        "both modes share the on-disk result cache and emit",
        "byte-identical tables for the same seed.",
        "",
        "## Failure handling, retries, and resume",
        "",
        "A crashed, hung, or OOM-killed worker costs one cell, not the",
        "suite. Every failed attempt is classified (crash / timeout /",
        "broken-pool / corrupt-result) and retried under `--retries N`",
        "(exponential backoff with deterministic jitter); `--timeout S`",
        "bounds each spec's wall clock when `--jobs >= 2`; under",
        "`--keep-going` a spec that exhausts its retries renders as `—`",
        "cells plus a failure appendix at the end of this report instead",
        "of aborting (`--fail-fast`, the default, stops on the first",
        "exhausted spec). Completed runs always persist in the result",
        "cache, so re-running the same command resumes from what",
        "survived. `REPRO_FAULT_PLAN` (e.g.",
        "`\"mcf/ddr3=crash;mcf/rldram3=hang:*:20\"`) injects",
        "deterministic faults to exercise all of this; see",
        "`repro.experiments.resilience`.",
        "",
    ]
    for key in keys:
        table = ALL_EXPERIMENTS[key](config, results=results)
        lines.append(f"## {key}: {table.title}")
        lines.append("")
        claims = CLAIMS.get(key, [])
        if claims:
            lines.append("| claim | paper | measured |")
            lines.append("|---|---|---|")
            for claim in claims:
                lines.append(f"| {claim.description} | {claim.paper_value} "
                             f"| {claim.measured(table)} |")
            lines.append("")
        lines.append("```")
        lines.append(table.format())
        lines.append("```")
        lines.append("")
    if executor.failures:
        lines.append(failure_appendix(executor.failures, markdown=True))
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="EXPERIMENTS.md")
    parser.add_argument("--reads", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker processes (default REPRO_JOBS "
                             "or 1; 0 = one per CPU)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-run a crashed/hung/corrupt spec up to N "
                             "times (default REPRO_RETRIES or 0)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-spec wall-clock deadline, enforced with "
                             "--jobs >= 2 (default REPRO_TIMEOUT or none)")
    parser.add_argument("--keep-going", action="store_true", default=None,
                        help="render failed specs as '—' cells plus a "
                             "failure appendix instead of aborting")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first exhausted spec (default; "
                             "overrides REPRO_KEEP_GOING)")
    parser.add_argument("--experiments", default=None,
                        help="comma-separated subset of experiment ids")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the tables as structured JSON "
                             "with a run manifest")
    args = parser.parse_args(argv)
    config = default_config()
    updates = {}
    if args.reads is not None:
        updates["target_dram_reads"] = args.reads
    if args.jobs is not None:
        updates["jobs"] = args.jobs
    if args.retries is not None:
        updates["retries"] = args.retries
    if args.timeout is not None:
        updates["timeout_s"] = args.timeout
    if args.keep_going:
        updates["keep_going"] = True
    if args.fail_fast:
        updates["keep_going"] = False
    if updates:
        from dataclasses import replace
        config = replace(config, **updates)
    keys = args.experiments.split(",") if args.experiments else None
    text = render_report(config, keys, jobs=args.jobs)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    if args.json:
        from repro.telemetry import run_manifest, tables_to_json
        json_keys = keys or list(ALL_EXPERIMENTS)
        # A second executor pass recalls everything the report pass just
        # simulated, so its cache stats record hit/miss/quarantine
        # traffic for exactly this artefact's runs.
        executor = ParallelExecutor(config, jobs=args.jobs)
        results = executor.run(suite_specs(json_keys, config))
        tables = [ALL_EXPERIMENTS[k](config, results=results)
                  for k in json_keys]
        from repro.workloads.registry import workload_cache_token
        manifest = run_manifest(
            config={"target_dram_reads": config.target_dram_reads,
                    "benchmarks": list(config.suite()),
                    "jobs": args.jobs},
            seed=config.seed, argv=argv,
            extra={"cache": executor.cache.stats(),
                   # Pin which workload *contents* produced these
                   # tables: the same tokens folded into v8 cache keys.
                   "workloads": {name: workload_cache_token(name)
                                 for name in config.suite()}})
        with open(args.json, "w") as handle:
            handle.write(tables_to_json(tables, manifest))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
