"""Trace file I/O.

Traces are lists of :class:`~repro.cpu.core.TraceRecord`; this module
persists them in a compact line-oriented text format so users can
capture, inspect, edit, and replay workloads independently of the
generators:

    # repro-trace v1
    # benchmark=mcf core=0
    <gap> <R|W> <hex address>

Blank lines and ``#`` comments are ignored. The format is intentionally
diff-friendly and greppable.

Multi-core captures (one section per core) reuse the same format:
``# core=<i>`` comment lines delimit per-core sections, and a
``# records=<n>`` metadata line carries the total record count so a
truncated file is rejected instead of silently replaying short. Legacy
single-core readers see the markers as ordinary metadata comments and
flatten the sections — the format stays v1.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from repro.cpu.core import TraceRecord

MAGIC = "# repro-trace v1"

#: Metadata keys written by :func:`save_multi_trace` itself; callers'
#: metadata must not collide with the structural keys.
RESERVED_KEYS = ("core", "cores", "records")


def save_trace(trace: Iterable[TraceRecord],
               destination: Union[str, Path, TextIO],
               metadata: Optional[Dict[str, str]] = None) -> None:
    """Write one core's trace."""
    own = isinstance(destination, (str, Path))
    handle = open(destination, "w") if own else destination
    try:
        handle.write(MAGIC + "\n")
        for key, value in (metadata or {}).items():
            handle.write(f"# {key}={value}\n")
        for record in trace:
            kind = "W" if record.is_write else "R"
            handle.write(f"{record.gap} {kind} {record.address:#x}\n")
    finally:
        if own:
            handle.close()


def save_multi_trace(traces: Sequence[Sequence[TraceRecord]],
                     destination: Union[str, Path, TextIO],
                     metadata: Optional[Dict[str, str]] = None) -> None:
    """Write a multi-core capture: metadata, then one section per core.

    ``cores`` and ``records`` metadata are derived from ``traces`` (a
    caller-supplied value for a :data:`RESERVED_KEYS` key is an error —
    those keys are structural).
    """
    for key in metadata or {}:
        if key in RESERVED_KEYS:
            raise ValueError(
                f"metadata key {key!r} is reserved (one of {RESERVED_KEYS})")
    own = isinstance(destination, (str, Path))
    handle = open(destination, "w") if own else destination
    try:
        handle.write(MAGIC + "\n")
        for key, value in (metadata or {}).items():
            handle.write(f"# {key}={value}\n")
        handle.write(f"# cores={len(traces)}\n")
        handle.write(f"# records={sum(len(t) for t in traces)}\n")
        for core_id, trace in enumerate(traces):
            handle.write(f"# core={core_id}\n")
            for record in trace:
                kind = "W" if record.is_write else "R"
                handle.write(f"{record.gap} {kind} {record.address:#x}\n")
    finally:
        if own:
            handle.close()


def _parse(handle: TextIO) -> Tuple[List[List[TraceRecord]], Dict[str, str]]:
    """Shared reader: per-core sections + metadata, fully validated.

    Records before any ``# core=`` marker form section 0; every marker
    must name the next sequential core. Raises :class:`ValueError` with
    the offending line number for malformed records (wrong field count,
    bad kind letter, or unparseable integers) and for inconsistent
    ``cores``/``records`` metadata (truncated or padded files).
    """
    first = handle.readline().rstrip("\n")
    if first != MAGIC:
        raise ValueError(f"not a repro trace (header {first!r})")
    sections: List[List[TraceRecord]] = [[]]
    current = sections[0]
    metadata: Dict[str, str] = {}
    for lineno, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                key, value = key.strip(), value.strip()
                if key == "core":
                    try:
                        core_id = int(value)
                    except ValueError:
                        raise ValueError(
                            f"line {lineno}: malformed core marker "
                            f"{line!r}") from None
                    if core_id == 0 and not sections[0]:
                        pass  # leading marker names the implicit section
                    elif core_id != len(sections):
                        raise ValueError(
                            f"line {lineno}: core sections must be "
                            f"sequential; marker names core {core_id}, "
                            f"expected {len(sections)}")
                    else:
                        sections.append([])
                        current = sections[-1]
                metadata[key] = value
            continue
        parts = line.split()
        if len(parts) != 3 or parts[1] not in ("R", "W"):
            raise ValueError(f"line {lineno}: malformed record {line!r}")
        try:
            gap = int(parts[0])
            address = int(parts[2], 16)
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed record {line!r} "
                "(gap must be a decimal integer, address hex)") from None
        current.append(TraceRecord(gap=gap, is_write=parts[1] == "W",
                                   address=address))
    total = sum(len(s) for s in sections)
    declared = metadata.get("records")
    if declared is not None:
        try:
            expected = int(declared)
        except ValueError:
            raise ValueError(
                f"malformed records metadata {declared!r}") from None
        if expected != total:
            raise ValueError(
                f"truncated trace: records={expected} declared, "
                f"{total} found")
    declared_cores = metadata.get("cores")
    if declared_cores is not None:
        try:
            expected_cores = int(declared_cores)
        except ValueError:
            raise ValueError(
                f"malformed cores metadata {declared_cores!r}") from None
        if expected_cores != len(sections):
            raise ValueError(
                f"truncated trace: cores={expected_cores} declared, "
                f"{len(sections)} section(s) found")
    return sections, metadata


def load_trace(source: Union[str, Path, TextIO]
               ) -> Tuple[List[TraceRecord], Dict[str, str]]:
    """Read a trace; returns (records, metadata).

    Multi-core files flatten to one record list (sections in core
    order) — the single-core view of a capture.
    """
    sections, metadata = _load(source)
    return [record for section in sections for record in section], metadata


def load_multi_trace(source: Union[str, Path, TextIO]
                     ) -> Tuple[List[List[TraceRecord]], Dict[str, str]]:
    """Read a capture as per-core record lists; returns (traces, metadata).

    Files without ``# core=`` markers load as a single section.
    """
    return _load(source)


def _load(source: Union[str, Path, TextIO]
          ) -> Tuple[List[List[TraceRecord]], Dict[str, str]]:
    own = isinstance(source, (str, Path))
    handle = open(source) if own else source
    try:
        return _parse(handle)
    finally:
        if own:
            handle.close()


def trace_to_string(trace: Iterable[TraceRecord],
                    metadata: Optional[Dict[str, str]] = None) -> str:
    buffer = io.StringIO()
    save_trace(trace, buffer, metadata)
    return buffer.getvalue()


def trace_from_string(text: str) -> Tuple[List[TraceRecord], Dict[str, str]]:
    return load_trace(io.StringIO(text))


def trace_stats(trace: Iterable[TraceRecord]) -> Dict[str, float]:
    """Quick summary for inspection tools."""
    records = list(trace)
    if not records:
        return {"records": 0, "instructions": 0, "write_fraction": 0.0,
                "distinct_lines": 0, "mean_gap": 0.0}
    lines = {r.address // 64 for r in records}
    return {
        "records": len(records),
        "instructions": sum(r.gap + 1 for r in records),
        "write_fraction": sum(r.is_write for r in records) / len(records),
        "distinct_lines": len(lines),
        "mean_gap": sum(r.gap for r in records) / len(records),
    }
