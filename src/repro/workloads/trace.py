"""Trace file I/O.

Traces are lists of :class:`~repro.cpu.core.TraceRecord`; this module
persists them in a compact line-oriented text format so users can
capture, inspect, edit, and replay workloads independently of the
generators:

    # repro-trace v1
    # benchmark=mcf core=0
    <gap> <R|W> <hex address>

Blank lines and ``#`` comments are ignored. The format is intentionally
diff-friendly and greppable.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, List, TextIO, Tuple, Union

from repro.cpu.core import TraceRecord

MAGIC = "# repro-trace v1"


def save_trace(trace: Iterable[TraceRecord],
               destination: Union[str, Path, TextIO],
               metadata: Dict[str, str] = None) -> None:
    """Write one core's trace."""
    own = isinstance(destination, (str, Path))
    handle = open(destination, "w") if own else destination
    try:
        handle.write(MAGIC + "\n")
        for key, value in (metadata or {}).items():
            handle.write(f"# {key}={value}\n")
        for record in trace:
            kind = "W" if record.is_write else "R"
            handle.write(f"{record.gap} {kind} {record.address:#x}\n")
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, Path, TextIO]
               ) -> Tuple[List[TraceRecord], Dict[str, str]]:
    """Read a trace; returns (records, metadata)."""
    own = isinstance(source, (str, Path))
    handle = open(source) if own else source
    try:
        first = handle.readline().rstrip("\n")
        if first != MAGIC:
            raise ValueError(f"not a repro trace (header {first!r})")
        records: List[TraceRecord] = []
        metadata: Dict[str, str] = {}
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if "=" in body:
                    key, _, value = body.partition("=")
                    metadata[key.strip()] = value.strip()
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("R", "W"):
                raise ValueError(f"line {lineno}: malformed record {line!r}")
            records.append(TraceRecord(gap=int(parts[0]),
                                       is_write=parts[1] == "W",
                                       address=int(parts[2], 16)))
        return records, metadata
    finally:
        if own:
            handle.close()


def trace_to_string(trace: Iterable[TraceRecord],
                    metadata: Dict[str, str] = None) -> str:
    buffer = io.StringIO()
    save_trace(trace, buffer, metadata)
    return buffer.getvalue()


def trace_from_string(text: str) -> Tuple[List[TraceRecord], Dict[str, str]]:
    return load_trace(io.StringIO(text))


def trace_stats(trace: Iterable[TraceRecord]) -> Dict[str, float]:
    """Quick summary for inspection tools."""
    records = list(trace)
    if not records:
        return {"records": 0, "instructions": 0, "write_fraction": 0.0,
                "distinct_lines": 0, "mean_gap": 0.0}
    lines = {r.address // 64 for r in records}
    return {
        "records": len(records),
        "instructions": sum(r.gap + 1 for r in records),
        "write_fraction": sum(r.is_write for r in records) / len(records),
        "distinct_lines": len(lines),
        "mean_gap": sum(r.gap for r in records) / len(records),
    }
