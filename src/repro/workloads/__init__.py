"""Workload substrate: benchmark profiles and synthetic trace generation.

The paper evaluates 18 SPEC CPU2006 programs (run as 8 copies, rate
mode), 6 OpenMP NAS Parallel Benchmarks, and STREAM. We cannot ship
those binaries, so each benchmark is described by a
:class:`~repro.workloads.profiles.BenchmarkProfile` — access-pattern
statistics (stream vs. pointer-chase mix, strides, footprint, write
fraction, per-line critical-word distribution, memory intensity)
calibrated to the behavioural facts the paper reports per benchmark
(Figures 3, 4, 8 and the Appendix). The generator turns a profile into a
deterministic per-core instruction trace.
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    PROFILES,
    SUITE_NPB,
    SUITE_SPEC,
    SUITE_STREAM,
    benchmark_names,
    profile_for,
)
from repro.workloads.registry import (
    SyntheticSource,
    TraceFileSource,
    UnknownWorkloadError,
    WorkloadDescriptor,
    WorkloadError,
    create_workload,
    list_workloads,
    register_workload,
    resolve_workload,
    workload_cache_token,
    workload_names,
)
from repro.workloads.synthetic import (
    TraceGenerator,
    generate_core_trace,
    stream_core_trace,
)
from repro.workloads.trace import (
    load_multi_trace,
    load_trace,
    save_multi_trace,
    save_trace,
    trace_stats,
)

__all__ = [
    "BenchmarkProfile", "PROFILES", "benchmark_names", "profile_for",
    "SUITE_SPEC", "SUITE_NPB", "SUITE_STREAM",
    "TraceGenerator", "generate_core_trace", "stream_core_trace",
    "load_trace", "save_trace", "load_multi_trace", "save_multi_trace",
    "trace_stats",
    "WorkloadDescriptor", "WorkloadError", "UnknownWorkloadError",
    "SyntheticSource", "TraceFileSource",
    "register_workload", "resolve_workload", "create_workload",
    "workload_names", "list_workloads", "workload_cache_token",
]
