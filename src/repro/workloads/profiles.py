"""Per-benchmark behavioural profiles.

Each profile encodes the trace statistics that drive the paper's results:

* ``mean_gap`` — mean non-memory instructions between memory
  instructions: memory intensity.
* ``stream_fraction`` — fraction of accesses from sequential/strided
  streams; the remainder is pointer-chasing.
* ``num_streams`` / ``stream_stride_words`` — concurrent stream count
  and stride. A stride of >= 8 words touches each line once (no early
  second access); a stride of 1 walks every word of a line, so the
  second access to a line comes quickly — the dealII/tonto behaviour the
  paper calls out (Sec 6.1.1).
* ``chase_word_weights`` — distribution of each *line's* preferred
  critical word for pointer-chase accesses. Lines keep a stable
  preferred word (paper Fig 3: per-line criticality is strongly biased),
  sampled from this distribution by a deterministic per-line hash.
* ``chase_line_bias`` — probability a chase access uses the line's
  preferred word (vs. a uniformly random word).
* ``chase_second_touch`` — probability the chase dereferences a second
  field of the same line shortly after the first.
* ``hot_fraction`` / ``hot_lines`` — fraction of accesses going to a
  small cache-resident region (lowers DRAM pressure for the low-
  bandwidth codes).
* ``write_fraction`` — store fraction; dirty lines are what the adaptive
  CWF scheme can re-organise (Sec 4.2.5).
* ``footprint_lines`` — per-core working set in cache lines.

Calibration targets, from the paper:

* Fig 4: word-0 is critical in > 50 % of fetches for 21 of 27 programs
  (suite average 67 %); lbm/mcf/milc/omnetpp/xalancbmk/sjeng show little
  bias; mcf's mass sits on words 0 and 3.
* Appendix: hmmer is dominated by stride-0 (word 0); STREAM's four
  kernels are unit-stride (word 0); mcf/xalancbmk are pointer chasers.
* Sec 6.1: high-bandwidth programs are cg/lu/mg/sp/STREAM, lbm,
  leslie3d, libquantum, mcf, milc, GemsFDTD; bzip2/dealII/gobmk have low
  bandwidth demands; tonto/dealII re-touch lines before the full line
  returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

SUITE_SPEC = "spec2006"
SUITE_NPB = "npb"
SUITE_STREAM = "stream"

# Shorthand critical-word weight tables.
_W0 = {0: 1.0}
_UNIFORM = {w: 1.0 for w in range(8)}
_EARLY = {0: 4.0, 1: 2.0, 2: 1.0, 3: 0.5, 4: 0.25, 5: 0.25, 6: 0.25, 7: 0.25}
_MCF = {0: 3.0, 3: 2.5, 1: 0.8, 2: 0.8, 4: 0.6, 5: 0.5, 6: 0.4, 7: 0.4}
_VERY_EARLY = {0: 8.0, 1: 1.5, 2: 0.6, 3: 0.4, 4: 0.3, 5: 0.3, 6: 0.3, 7: 0.3}


@dataclass(frozen=True)
class BenchmarkProfile:
    """Trace statistics for one benchmark (see module docstring)."""

    name: str
    suite: str
    mean_gap: float
    stream_fraction: float
    num_streams: int = 4
    stream_stride_words: int = 8
    # Mean lines a stream runs before jumping elsewhere (array edges,
    # loop boundaries). Bounds prefetch coverage and row-buffer runs.
    stream_run_lines: int = 24
    chase_word_weights: Dict[int, float] = field(default_factory=lambda: dict(_UNIFORM))
    chase_line_bias: float = 0.85
    chase_second_touch: float = 0.15
    hot_fraction: float = 0.0
    hot_lines: int = 4096            # 256 KB
    # Fraction of chase accesses that land in the most-popular ~7.6% of
    # pages (page-level skew; paper Sec 7.1: the hottest 7.6% of pages
    # capture at most ~30% of accesses).
    chase_popularity: float = 0.3
    write_fraction: float = 0.12
    footprint_lines: int = 1 << 19   # 32 MB per core

    def __post_init__(self) -> None:
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ValueError(f"{self.name}: stream_fraction out of range")
        if self.mean_gap < 0:
            raise ValueError(f"{self.name}: mean_gap must be >= 0")
        if self.stream_stride_words <= 0:
            raise ValueError(f"{self.name}: stride must be positive")
        if not self.chase_word_weights:
            raise ValueError(f"{self.name}: empty chase_word_weights")

    @property
    def chase_fraction(self) -> float:
        return 1.0 - self.stream_fraction

    def estimated_misses_per_record(self) -> float:
        """Rough DRAM demand-fetches per trace record, for trace sizing."""
        stream_miss = min(1.0, self.stream_stride_words / 8.0)
        chase_miss = 1.0 + self.chase_second_touch * 0.1
        est = (self.stream_fraction * stream_miss
               + self.chase_fraction * chase_miss)
        est *= (1.0 - self.hot_fraction * 0.95)
        return max(0.02, est)


def _p(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


# ---------------------------------------------------------------------------
# The suite (18 SPEC + 6 NPB + STREAM + GemsFDTD = 26 programs).
# ---------------------------------------------------------------------------

PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in [
    # --- NAS Parallel Benchmarks (streaming-dominated, high bandwidth) ---
    _p(name="cg", suite=SUITE_NPB, mean_gap=330.0, stream_fraction=0.80,
       num_streams=6, stream_stride_words=8, chase_word_weights=_EARLY,
       write_fraction=0.10),
    _p(name="is", suite=SUITE_NPB, mean_gap=450.0, stream_fraction=0.45,
       num_streams=4, stream_stride_words=8, chase_word_weights=_EARLY,
       chase_line_bias=0.7, write_fraction=0.30),
    _p(name="ep", suite=SUITE_NPB, mean_gap=1300.0, stream_fraction=0.60,
       num_streams=2, stream_stride_words=8, chase_word_weights=_EARLY,
       hot_fraction=0.75,
       write_fraction=0.10, footprint_lines=1 << 17),
    _p(name="lu", suite=SUITE_NPB, mean_gap=330.0, stream_fraction=0.88,
       num_streams=6, stream_stride_words=8, write_fraction=0.15),
    _p(name="mg", suite=SUITE_NPB, mean_gap=270.0, stream_fraction=0.92,
       num_streams=8, stream_stride_words=8, write_fraction=0.18),
    _p(name="sp", suite=SUITE_NPB, mean_gap=270.0, stream_fraction=0.88,
       num_streams=8, stream_stride_words=8, write_fraction=0.18),
    # --- STREAM: four unit-stride kernels over huge arrays ---
    _p(name="stream", suite=SUITE_STREAM, mean_gap=230.0, stream_fraction=0.97,
       num_streams=6, stream_stride_words=8, write_fraction=0.32,
       footprint_lines=1 << 20),
    # --- SPEC CPU2006 ---
    _p(name="astar", suite=SUITE_SPEC, mean_gap=550.0, stream_fraction=0.45,
       chase_word_weights=_EARLY, chase_line_bias=0.8,
       hot_fraction=0.35, write_fraction=0.12),
    _p(name="bzip2", suite=SUITE_SPEC, mean_gap=900.0, stream_fraction=0.40,
       num_streams=2, stream_stride_words=1,
       chase_word_weights=_EARLY, hot_fraction=0.55,
       write_fraction=0.20, footprint_lines=1 << 17),
    _p(name="dealII", suite=SUITE_SPEC, mean_gap=600.0, stream_fraction=0.75,
       num_streams=1, stream_stride_words=1, chase_word_weights=_VERY_EARLY,
       hot_fraction=0.45, write_fraction=0.15, footprint_lines=1 << 17),
    _p(name="gromacs", suite=SUITE_SPEC, mean_gap=1100.0, stream_fraction=0.65,
       num_streams=3, stream_stride_words=8, chase_word_weights=_EARLY,
       hot_fraction=0.55, write_fraction=0.15, footprint_lines=1 << 17),
    _p(name="gobmk", suite=SUITE_SPEC, mean_gap=1200.0, stream_fraction=0.40,
       chase_word_weights=_VERY_EARLY, chase_line_bias=0.7, hot_fraction=0.60,
       write_fraction=0.15, footprint_lines=1 << 16),
    _p(name="hmmer", suite=SUITE_SPEC, mean_gap=500.0, stream_fraction=0.90,
       num_streams=4, stream_stride_words=8,
       chase_word_weights=_VERY_EARLY, hot_fraction=0.40,
       write_fraction=0.18, footprint_lines=1 << 17),
    _p(name="h264ref", suite=SUITE_SPEC, mean_gap=600.0, stream_fraction=0.70,
       num_streams=4, stream_stride_words=4, chase_word_weights=_VERY_EARLY,
       hot_fraction=0.45, write_fraction=0.18, footprint_lines=1 << 17),
    _p(name="lbm", suite=SUITE_SPEC, mean_gap=300.0, stream_fraction=0.22,
       num_streams=6, stream_stride_words=8,
       chase_word_weights={0: 1.2, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0,
                           5: 1.0, 6: 0.9, 7: 0.9},
       chase_line_bias=0.9, chase_second_touch=0.05,
       write_fraction=0.30, footprint_lines=1 << 20),
    _p(name="leslie3d", suite=SUITE_SPEC, mean_gap=260.0, stream_fraction=0.94,
       num_streams=8, stream_stride_words=8, write_fraction=0.15,
       footprint_lines=1 << 20),
    _p(name="libquantum", suite=SUITE_SPEC, mean_gap=380.0, stream_fraction=0.97,
       num_streams=2, stream_stride_words=8, stream_run_lines=10, write_fraction=0.25,
       footprint_lines=1 << 20),
    _p(name="mcf", suite=SUITE_SPEC, mean_gap=280.0, stream_fraction=0.08,
       chase_word_weights=_MCF, chase_line_bias=0.88,
       chase_second_touch=0.08, write_fraction=0.16,
       footprint_lines=1 << 20),
    _p(name="milc", suite=SUITE_SPEC, mean_gap=320.0, stream_fraction=0.20,
       num_streams=4, stream_stride_words=8,
       chase_word_weights={w: 1.0 for w in range(8)}, chase_line_bias=0.85,
       chase_second_touch=0.05, write_fraction=0.22,
       footprint_lines=1 << 20),
    _p(name="omnetpp", suite=SUITE_SPEC, mean_gap=400.0, stream_fraction=0.15,
       chase_word_weights={0: 1.3, 1: 1.1, 2: 1.0, 3: 1.0, 4: 0.9,
                           5: 0.9, 6: 0.9, 7: 0.9},
       chase_line_bias=0.85, chase_second_touch=0.08,
       write_fraction=0.20),
    _p(name="soplex", suite=SUITE_SPEC, mean_gap=450.0, stream_fraction=0.65,
       num_streams=4, stream_stride_words=8, chase_word_weights=_EARLY,
       write_fraction=0.12),
    _p(name="sjeng", suite=SUITE_SPEC, mean_gap=1000.0, stream_fraction=0.25,
       chase_word_weights={0: 4.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 0.9,
                           5: 0.9, 6: 0.8, 7: 0.8}, chase_line_bias=0.75,
       hot_fraction=0.50, write_fraction=0.15, footprint_lines=1 << 17),
    _p(name="tonto", suite=SUITE_SPEC, mean_gap=650.0, stream_fraction=0.80,
       num_streams=1, stream_stride_words=1, chase_word_weights=_VERY_EARLY,
       hot_fraction=0.40, write_fraction=0.15, footprint_lines=1 << 17),
    _p(name="xalancbmk", suite=SUITE_SPEC, mean_gap=400.0, stream_fraction=0.18,
       chase_word_weights={0: 1.4, 1: 1.2, 2: 1.0, 3: 1.0, 4: 0.9,
                           5: 0.8, 6: 0.8, 7: 0.8},
       chase_line_bias=0.80, chase_second_touch=0.08,
       write_fraction=0.15),
    _p(name="zeusmp", suite=SUITE_SPEC, mean_gap=380.0, stream_fraction=0.80,
       num_streams=6, stream_stride_words=8, chase_word_weights=_EARLY,
       write_fraction=0.18),
    _p(name="GemsFDTD", suite=SUITE_SPEC, mean_gap=260.0, stream_fraction=0.93,
       num_streams=8, stream_stride_words=8, write_fraction=0.20,
       footprint_lines=1 << 20),
]}


def benchmark_names(suite: str = None) -> List[str]:
    """All benchmark names, optionally filtered by suite."""
    return [name for name, p in PROFILES.items()
            if suite is None or p.suite == suite]


def profile_for(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        from repro.util.suggest import close_matches, did_you_mean
        raise KeyError(
            f"unknown benchmark {name!r}"
            + did_you_mean(close_matches(name, PROFILES))
            + f"; known: {sorted(PROFILES)}") from None


# Benchmarks the paper's Figure 3 singles out for per-line histograms.
FIG3_BENCHMARKS = ("leslie3d", "mcf")

# High-bandwidth group called out in Sec 6.1.3.
HIGH_BANDWIDTH = ("cg", "lu", "mg", "sp", "stream", "lbm", "leslie3d",
                  "libquantum", "mcf", "milc", "GemsFDTD")
