"""Synthetic trace generator driven by a :class:`BenchmarkProfile`.

Traces are deterministic given (profile, core, seed): all randomness
comes from a seeded ``random.Random`` and per-line preferred words come
from a multiplicative hash, so every memory configuration replays the
identical instruction stream — the paper's methodology (same workload,
different memory system).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple
from collections import deque

from repro.cpu.core import TraceRecord
from repro.dram.request import LINE_BYTES, WORD_BYTES, WORDS_PER_LINE
from repro.workloads.profiles import BenchmarkProfile

# Each core gets a disjoint 64 GB slice of the physical address space.
CORE_ADDRESS_STRIDE = 1 << 36
_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1
_BUCKETS = 1024


def _word_lookup_table(weights: dict) -> List[int]:
    """Map hash buckets to words proportionally to ``weights``."""
    total = float(sum(weights.values()))
    table: List[int] = []
    acc = 0.0
    items = sorted(weights.items())
    for word, weight in items:
        acc += weight / total
        target = int(round(acc * _BUCKETS))
        while len(table) < target:
            table.append(word)
    while len(table) < _BUCKETS:
        table.append(items[-1][0])
    return table[:_BUCKETS]


def preferred_word(line: int, table: List[int]) -> int:
    """Deterministic per-line preferred critical word."""
    h = (line * _HASH_MULT) & _HASH_MASK
    return table[(h >> 32) % _BUCKETS]


@dataclass
class _Stream:
    cursor_word: int   # word index within the core's footprint
    stride: int
    run_left: int = 0  # accesses before the stream jumps elsewhere


class TraceGenerator:
    """Generates the instruction trace for one core of one benchmark."""

    def __init__(self, profile: BenchmarkProfile, core_id: int,
                 seed: int = 42) -> None:
        self.profile = profile
        self.core_id = core_id
        # zlib.crc32 is stable across processes (unlike hash(), which is
        # randomised per interpreter) — required for reproducible traces
        # and for the on-disk result cache to be meaningful.
        key = f"{profile.name}/{core_id}/{seed}".encode()
        self.rng = random.Random(zlib.crc32(key) or 1)
        self.base = core_id * CORE_ADDRESS_STRIDE
        self.word_table = _word_lookup_table(profile.chase_word_weights)
        self.footprint_words = profile.footprint_lines * WORDS_PER_LINE
        self.streams: List[_Stream] = [
            _Stream(cursor_word=self._random_line_start(),
                    stride=profile.stream_stride_words,
                    run_left=self._run_length())
            for _ in range(max(1, profile.num_streams))
        ]
        self._next_stream = 0
        # Scheduled "second touch" accesses: (records_remaining, address).
        self._queued: Deque[Tuple[int, int]] = deque()

    # ------------------------------------------------------------------

    def _random_line_start(self) -> int:
        line = self.rng.randrange(self.profile.footprint_lines)
        return line * WORDS_PER_LINE

    def _gap(self) -> int:
        mean = self.profile.mean_gap
        if mean <= 0:
            return 0
        cap = max(1000, int(6 * mean))
        return min(cap, int(self.rng.expovariate(1.0 / mean)))

    def _address(self, line: int, word: int) -> int:
        return self.base + line * LINE_BYTES + word * WORD_BYTES

    # ------------------------------------------------------------------

    def _run_length(self) -> int:
        """Accesses before a stream jumps (>= 4 so prefetchers can train)."""
        mean = self.profile.stream_run_lines
        return max(4, int(self.rng.expovariate(1.0 / mean)))

    def _stream_access(self) -> int:
        stream = self.streams[self._next_stream]
        self._next_stream = (self._next_stream + 1) % len(self.streams)
        word_index = stream.cursor_word
        stream.cursor_word += stream.stride
        stream.run_left -= 1
        if stream.run_left <= 0 or stream.cursor_word >= self.footprint_words:
            stream.cursor_word = self._random_line_start()
            stream.run_left = self._run_length()
        line, word = divmod(word_index, WORDS_PER_LINE)
        return self._address(line, word)

    def _chase_access(self) -> int:
        p = self.profile
        if self.rng.random() < p.chase_popularity:
            # Page-popularity skew: a small region absorbs a dispro-
            # portionate share of accesses (Sec 7.1's profiling target).
            popular = max(1, int(p.footprint_lines * 0.076))
            line = self.rng.randrange(popular)
        else:
            line = self.rng.randrange(p.footprint_lines)
        if self.rng.random() < p.chase_line_bias:
            word = preferred_word(line, self.word_table)
        else:
            word = self.rng.randrange(WORDS_PER_LINE)
        if self.rng.random() < p.chase_second_touch:
            other = (word + 1 + self.rng.randrange(WORDS_PER_LINE - 1)) \
                % WORDS_PER_LINE
            delay = 2 + self.rng.randrange(4)
            self._queued.append((delay, self._address(line, other)))
        return self._address(line, word)

    def _hot_access(self) -> int:
        """Hot-region access; lines keep stable preferred words like the
        chase (criticality regularity holds for hot data too, Fig 3)."""
        p = self.profile
        line = self.rng.randrange(min(p.hot_lines, p.footprint_lines))
        if self.rng.random() < p.chase_line_bias:
            word = preferred_word(line, self.word_table)
        else:
            word = self.rng.randrange(WORDS_PER_LINE)
        return self._address(line, word)

    # ------------------------------------------------------------------

    def record(self) -> TraceRecord:
        """Produce the next trace record."""
        p = self.profile
        rng = self.rng
        address: Optional[int] = None
        # Drain scheduled second touches first when due.
        if self._queued:
            remaining, addr = self._queued[0]
            if remaining <= 0:
                self._queued.popleft()
                address = addr
            else:
                self._queued[0] = (remaining - 1, addr)
        if address is None:
            if p.hot_fraction and rng.random() < p.hot_fraction:
                address = self._hot_access()
            elif rng.random() < p.stream_fraction:
                address = self._stream_access()
            else:
                address = self._chase_access()
        is_write = rng.random() < p.write_fraction
        return TraceRecord(gap=self._gap(), is_write=is_write,
                           address=address)

    def records(self, count: int) -> List[TraceRecord]:
        return [self.record() for _ in range(count)]

    def iter_records(self, count: int) -> Iterator[TraceRecord]:
        """Yield ``count`` records lazily.

        The draw sequence is identical to :meth:`records`: all
        randomness lives in this generator's private RNG, so pulling
        records one at a time (interleaved with other cores' pulls)
        produces byte-identical traces to materializing up front.
        """
        for _ in range(count):
            yield self.record()


def preferred_word_for_global_line(profile: BenchmarkProfile,
                                   global_line: int) -> int:
    """Preferred critical word of a global line address.

    The generator draws per-line preferred words from the profile's
    chase distribution using the *core-local* line index; this recovers
    the same word from a global line number (as seen by the memory
    system), for L2 prewarming and adaptive-tag seeding.
    """
    lines_per_core = CORE_ADDRESS_STRIDE // LINE_BYTES
    local_line = global_line % lines_per_core
    table = _table_cache.get(profile.name)
    if table is None:
        table = _word_lookup_table(profile.chase_word_weights)
        _table_cache[profile.name] = table
    return preferred_word(local_line, table)


_table_cache: dict = {}


def expected_critical_word(profile: BenchmarkProfile, global_line: int,
                           rng: random.Random) -> int:
    """Sample the critical word a fetch of this line would observe."""
    if rng.random() < profile.stream_fraction:
        return 0
    if rng.random() < profile.chase_line_bias:
        return preferred_word_for_global_line(profile, global_line)
    return rng.randrange(WORDS_PER_LINE)


def records_for_reads(profile: BenchmarkProfile, target_dram_reads: int) -> int:
    """Trace length that should yield about ``target_dram_reads`` demand
    fetches on a cold cache."""
    est = profile.estimated_misses_per_record()
    return max(64, int(target_dram_reads / est))


def generate_core_trace(profile: BenchmarkProfile, core_id: int,
                        target_dram_reads: int,
                        seed: int = 42) -> List[TraceRecord]:
    """Deterministic trace sized for roughly ``target_dram_reads``."""
    generator = TraceGenerator(profile, core_id, seed)
    return generator.records(records_for_reads(profile, target_dram_reads))


def stream_core_trace(profile: BenchmarkProfile, core_id: int,
                      target_dram_reads: int,
                      seed: int = 42) -> Iterator[TraceRecord]:
    """Streaming :func:`generate_core_trace`: same records, same order,
    no up-front list — cores pull records as they fetch."""
    generator = TraceGenerator(profile, core_id, seed)
    return generator.iter_records(records_for_reads(profile, target_dram_reads))
