"""String-keyed registry of workload sources.

The paper's methodology replays one workload against every memory
organisation; PR 3 made the *memory* axis of that cross product a
formal registry, and this module does the same for the *workload* axis.
A workload name resolves to a :class:`WorkloadDescriptor`, and
:func:`create_workload` builds a live :class:`WorkloadSource` — the
protocol the simulator drives:

* ``source.streams(config)`` — one lazy ``Iterator[TraceRecord]`` per
  core. Cores pull records as they fetch, so nothing materializes a
  full per-core list on the hot path;
* ``source.cache_token()`` — a content digest folded into the ``v8``
  result-cache key, so cached results invalidate when the workload's
  *contents* change (a profile edit, a re-recorded trace file) even
  though its name does not;
* ``source.profile`` — the :class:`BenchmarkProfile` when one is known
  (drives L2 prewarming and profile-guided backends), else ``None``;
* ``source.display_benchmark()`` — the benchmark name reported on the
  :class:`~repro.sim.system.SimResult`.

Two built-in source families:

* ``synthetic:<profile>`` (or the bare profile name — ``mcf`` and
  ``synthetic:mcf`` are the same workload and share cache entries)
  wraps :class:`~repro.workloads.synthetic.TraceGenerator`;
* ``trace:<path>`` replays a repro-trace v1 file recorded with
  ``repro trace record`` (or captured elsewhere), with the file's
  sha256 as its cache token.

Unknown names raise :class:`UnknownWorkloadError` with did-you-mean
suggestions, mirroring :class:`~repro.memsys.registry.UnknownBackendError`.
Plugins register with the :func:`register_workload` decorator::

    from repro.workloads.registry import register_workload

    @register_workload("my_workload", suite="custom",
                       description="records from my generator")
    def _build_my_workload():
        return MyWorkloadSource()

Built-in workloads (one per benchmark profile) are loaded lazily on
first lookup, so importing this module is cheap.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cpu.core import TraceRecord
from repro.util.suggest import close_matches, did_you_mean
from repro.workloads.profiles import PROFILES, BenchmarkProfile, profile_for

SYNTHETIC_PREFIX = "synthetic:"
TRACE_PREFIX = "trace:"


class WorkloadError(ValueError):
    """Base class for workload-registry failures."""


class UnknownWorkloadError(WorkloadError, KeyError):
    """Lookup of a name no workload answers (carries a did-you-mean).

    Doubles as a :class:`KeyError` so callers that treated the old
    ``PROFILES[name]`` lookup failure as a mapping miss keep working.
    """

    def __init__(self, name: str, suggestions: Sequence[str] = ()) -> None:
        self.name = name
        self.suggestions = list(suggestions)
        message = (f"unknown workload {name!r}"
                   + did_you_mean(self.suggestions)
                   + " (run 'repro list-workloads' for the full list)")
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote
        return self.args[0]


class DuplicateWorkloadError(WorkloadError):
    """A name or alias was registered twice."""


# ---------------------------------------------------------------------------
# The WorkloadSource protocol
# ---------------------------------------------------------------------------

#: Methods every workload source must provide; checked (with the
#: ``name``/``profile`` attributes) before the simulator accepts one.
PROTOCOL_METHODS = ("streams", "cache_token", "display_benchmark",
                    "describe")
PROTOCOL_ATTRS = ("name", "kind", "profile")


def conformance_problems(source: object) -> List[str]:
    """Protocol violations of ``source``, empty when conformant."""
    problems = []
    for attr in PROTOCOL_ATTRS:
        if not hasattr(source, attr):
            problems.append(f"missing attribute {attr!r}")
    for method in PROTOCOL_METHODS:
        if not callable(getattr(source, method, None)):
            problems.append(f"missing method {method!r}")
    return problems


def assert_source_conformant(source: object) -> None:
    problems = conformance_problems(source)
    if problems:
        raise WorkloadError(
            f"{type(source).__name__} does not implement the "
            f"WorkloadSource protocol: {'; '.join(problems)}")


class SyntheticSource:
    """Streams deterministic synthetic traces for one benchmark profile."""

    kind = "synthetic"

    def __init__(self, name: str,
                 profile: Optional[BenchmarkProfile] = None) -> None:
        self.name = name
        self.profile = profile if profile is not None else profile_for(name)

    def streams(self, config) -> List[Iterator[TraceRecord]]:
        """One lazy per-core record stream, sized like ``make_traces``."""
        from repro.workloads.synthetic import stream_core_trace
        per_core = max(1, config.target_dram_reads // config.num_cores)
        return [stream_core_trace(self.profile, core_id, per_core,
                                  config.seed)
                for core_id in range(config.num_cores)]

    def cache_token(self) -> str:
        return _profile_token(self.profile)

    def display_benchmark(self) -> str:
        return self.name

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind,
                "suite": self.profile.suite,
                "cache_token": self.cache_token()}


class TraceFileSource:
    """Replays a repro-trace v1 file, one section per core.

    The file parses once at construction; ``streams`` hands out fresh
    iterators over the parsed sections, so one source can feed several
    runs. The benchmark named in the file's metadata links back to a
    profile when possible — that keeps L2 prewarming and
    profile-guided backends identical to the synthetic run the trace
    was recorded from, which is what makes replay bit-exact.
    """

    kind = "trace"

    def __init__(self, path: str) -> None:
        from repro.workloads.trace import load_multi_trace
        self.path = str(path)
        self.name = TRACE_PREFIX + self.path
        try:
            self._traces, self.metadata = load_multi_trace(self.path)
        except OSError as exc:
            raise WorkloadError(
                f"cannot read trace file {self.path!r}: {exc}") from None
        except ValueError as exc:
            raise WorkloadError(
                f"bad trace file {self.path!r}: {exc}") from None
        self.profile: Optional[BenchmarkProfile] = None
        benchmark = self.metadata.get("benchmark", "")
        if benchmark and benchmark in PROFILES:
            self.profile = PROFILES[benchmark]

    @property
    def num_cores(self) -> int:
        return len(self._traces)

    def streams(self, config) -> List[Iterator[TraceRecord]]:
        if config.num_cores != len(self._traces):
            raise WorkloadError(
                f"trace {self.path!r} holds {len(self._traces)} core "
                f"section(s) but the run wants num_cores="
                f"{config.num_cores}; re-record with --cores "
                f"{config.num_cores} or match num_cores to the capture")
        return [iter(section) for section in self._traces]

    def cache_token(self) -> str:
        return _file_token(self.path)

    def display_benchmark(self) -> str:
        return self.metadata.get("benchmark") or self.name

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind,
                "path": self.path, "cores": len(self._traces),
                "records": sum(len(s) for s in self._traces),
                "metadata": dict(self.metadata),
                "cache_token": self.cache_token()}


# ---------------------------------------------------------------------------
# Descriptors and registration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadDescriptor:
    """Everything the harness needs to know about one workload.

    ``factory()`` builds the live :class:`WorkloadSource`; it is
    ``None`` only for the ``trace:<path>`` family placeholder, whose
    sources are built from the path at lookup time.
    """

    name: str
    factory: Optional[Callable[[], object]]
    kind: str = "synthetic"
    suite: str = ""
    description: str = ""
    aliases: Tuple[str, ...] = ()

    def capabilities(self) -> Dict[str, object]:
        """Capability flags as a plain dict (CLI / manifest friendly)."""
        return {"kind": self.kind, "suite": self.suite,
                "streaming": True}


#: Listing placeholder for the path-parameterised trace family.
TRACE_FAMILY = WorkloadDescriptor(
    name="trace:<path>", factory=None, kind="trace",
    description="replay a repro-trace v1 file "
                "(record one with 'repro trace record')")

_WORKLOADS: Dict[str, WorkloadDescriptor] = {}
_ALIASES: Dict[str, str] = {}
_builtins_loaded = False


def register_workload(name: str, *, kind: str = "synthetic",
                      suite: str = "", description: str = "",
                      aliases: Sequence[str] = ()):
    """Decorator registering ``factory`` under ``name`` (plus aliases)."""

    def decorator(factory: Callable[[], object]):
        _register(WorkloadDescriptor(
            name=name, factory=factory, kind=kind, suite=suite,
            description=description, aliases=tuple(aliases)))
        return factory

    return decorator


def _register(descriptor: WorkloadDescriptor) -> None:
    if descriptor.name.lower().startswith((SYNTHETIC_PREFIX, TRACE_PREFIX)):
        raise WorkloadError(
            f"workload name {descriptor.name!r} must not carry a "
            "source-family prefix")
    for key in (descriptor.name,) + descriptor.aliases:
        owner = _ALIASES.get(key)
        if owner is not None and owner != descriptor.name:
            raise DuplicateWorkloadError(
                f"workload name {key!r} already registered by {owner!r}")
    if descriptor.name in _WORKLOADS:
        raise DuplicateWorkloadError(
            f"workload {descriptor.name!r} already registered")
    _WORKLOADS[descriptor.name] = descriptor
    _ALIASES[descriptor.name] = descriptor.name
    for alias in descriptor.aliases:
        _ALIASES[alias] = descriptor.name


def unregister_workload(name: str) -> None:
    """Remove a workload (test hygiene for plugin round-trips)."""
    descriptor = _WORKLOADS.pop(name, None)
    if descriptor is None:
        return
    for key in (descriptor.name,) + descriptor.aliases:
        if _ALIASES.get(key) == name:
            del _ALIASES[key]


def _profile_description(profile: BenchmarkProfile) -> str:
    if profile.stream_fraction >= 0.7:
        shape = "streaming"
    elif profile.stream_fraction <= 0.3:
        shape = "pointer-chasing"
    else:
        shape = "mixed"
    return (f"synthetic {shape} profile, "
            f"{profile.footprint_lines}-line footprint")


def ensure_builtin_workloads() -> None:
    """Register one synthetic workload per benchmark profile (idempotent)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for name, profile in PROFILES.items():
        # Profile names are case-sensitive (GemsFDTD, dealII); a
        # lowercase alias keeps CLI lookups forgiving.
        aliases = (name.lower(),) if name.lower() != name else ()
        _register(WorkloadDescriptor(
            name=name,
            factory=(lambda n=name, p=profile: SyntheticSource(n, p)),
            kind="synthetic", suite=profile.suite,
            description=_profile_description(profile), aliases=aliases))


# ---------------------------------------------------------------------------
# Lookup
# ---------------------------------------------------------------------------


def resolve_workload(name) -> str:
    """Canonical workload name for ``name``.

    Bare profile names and ``synthetic:<profile>`` canonicalise to the
    profile's registered spelling (so both key the cache identically);
    ``trace:<path>`` canonicalises to itself after checking the file
    exists. Raises :class:`UnknownWorkloadError` — with close-match
    suggestions — when nothing answers the name.
    """
    ensure_builtin_workloads()
    if not isinstance(name, str):
        raise WorkloadError(
            f"workload must be a name, got {type(name).__name__}")
    key = name.strip()
    if key.lower().startswith(TRACE_PREFIX):
        path = key[len(TRACE_PREFIX):].strip()
        if not path:
            raise WorkloadError("trace workload needs a path: trace:<path>")
        if not os.path.isfile(path):
            raise WorkloadError(f"trace file not found: {path!r}")
        return TRACE_PREFIX + path
    if key.lower().startswith(SYNTHETIC_PREFIX):
        key = key[len(SYNTHETIC_PREFIX):].strip()
    canonical = _ALIASES.get(key) or _ALIASES.get(key.lower())
    if canonical is None:
        raise UnknownWorkloadError(name, close_matches(key, _ALIASES))
    return canonical


def get_workload(name) -> WorkloadDescriptor:
    """The descriptor registered under ``name`` (alias/prefix-aware)."""
    canonical = resolve_workload(name)
    if canonical.startswith(TRACE_PREFIX):
        return dataclasses.replace(TRACE_FAMILY, name=canonical)
    return _WORKLOADS[canonical]


def workload_names() -> List[str]:
    """Canonical names of every registered workload, sorted."""
    ensure_builtin_workloads()
    return sorted(_WORKLOADS)


def list_workloads() -> List[WorkloadDescriptor]:
    """Every registered descriptor, sorted by canonical name, plus the
    ``trace:<path>`` family placeholder."""
    ensure_builtin_workloads()
    return [_WORKLOADS[name] for name in sorted(_WORKLOADS)] + [TRACE_FAMILY]


def create_workload(name) -> object:
    """Build the named workload source and protocol-check the result."""
    canonical = resolve_workload(name)
    if canonical.startswith(TRACE_PREFIX):
        source = TraceFileSource(canonical[len(TRACE_PREFIX):])
    else:
        source = _WORKLOADS[canonical].factory()
    assert_source_conformant(source)
    return source


# ---------------------------------------------------------------------------
# Cache tokens
# ---------------------------------------------------------------------------

_PROFILE_TOKENS: Dict[str, str] = {}
_FILE_TOKENS: Dict[Tuple[str, int, int], str] = {}


def _profile_token(profile: BenchmarkProfile) -> str:
    """Digest of the profile's full parameter set (any calibration edit
    must invalidate cached results for that benchmark)."""
    token = _PROFILE_TOKENS.get(profile.name)
    if token is None:
        payload = json.dumps(dataclasses.asdict(profile), sort_keys=True,
                             default=str)
        token = hashlib.sha256(payload.encode()).hexdigest()[:16]
        _PROFILE_TOKENS[profile.name] = token
    return token


def _file_token(path: str) -> str:
    """Digest of the trace file's bytes, memoized on (path, mtime, size)."""
    try:
        stat = os.stat(path)
        key = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
        token = _FILE_TOKENS.get(key)
        if token is None:
            with open(path, "rb") as handle:
                token = hashlib.sha256(handle.read()).hexdigest()[:16]
            if len(_FILE_TOKENS) > 256:
                _FILE_TOKENS.clear()
            _FILE_TOKENS[key] = token
        return token
    except OSError as exc:
        raise WorkloadError(
            f"cannot read trace file {path!r}: {exc}") from None


def workload_cache_token(name) -> str:
    """The content token folded into ``v8`` cache keys for ``name``."""
    canonical = resolve_workload(name)
    if canonical.startswith(TRACE_PREFIX):
        return _file_token(canonical[len(TRACE_PREFIX):])
    if canonical in PROFILES:
        return _profile_token(PROFILES[canonical])
    # Plugin workloads define their own token.
    return _WORKLOADS[canonical].factory().cache_token()
