"""Resilience layer for the experiment pipeline.

Long figure suites fan hundreds of simulations out over a process pool;
one crashed, hung, or OOM-killed worker should cost *one cell*, not the
whole run. This module holds the pieces the executor composes:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (hashed from the spec label + attempt number,
  so two runs of the same suite sleep the same schedule), plus an
  optional per-spec wall-clock timeout.
* Failure classification — every failed attempt is bucketed as
  ``crash`` (the worker raised), ``timeout`` (deadline exceeded),
  ``broken-pool`` (the pool's process died under it), or
  ``corrupt-result`` (the worker returned something that is not a
  :class:`~repro.sim.system.SimResult`).
* :class:`FailedRun` — the sentinel recorded under ``--keep-going``
  when retries are exhausted. Any attribute a figure function would
  read off a real result answers :data:`MISSING`, an absorbing value
  that propagates through arithmetic and renders as ``—`` in tables,
  so a suite with N failures still emits every other cell
  byte-identical to a clean run.
* :class:`FaultPlan` — deterministic fault injection, consulted by
  :func:`~repro.experiments.specs.execute_spec` (serial *and* worker
  paths). ``REPRO_FAULT_PLAN`` chooses specs by label and makes them
  crash, hard-exit, hang, or return a corrupt payload on chosen
  attempts, which makes every branch above testable end-to-end.

Plan syntax (entries separated by ``;`` or ``,``)::

    REPRO_FAULT_PLAN="mcf/ddr3=crash;mcf/rldram3=hang:*:20;lbm/rl=corrupt:2"

Each entry is ``label=mode[:times][:seconds]`` where *label* is a
:attr:`RunSpec.label <repro.experiments.specs.RunSpec.label>`
(``benchmark/memory[/variant]``), *mode* is one of ``crash`` (raise
:class:`InjectedCrash`), ``kill`` (``os._exit(1)`` — a genuine
``BrokenProcessPool``), ``hang`` (sleep *seconds*, default 30, then
continue), or ``corrupt`` (return a non-``SimResult`` payload); *times*
is how many leading attempts fire (default 1, ``*`` = every attempt).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.system import SimResult

# ---------------------------------------------------------------------------
# Failure classification
# ---------------------------------------------------------------------------

CRASH = "crash"
TIMEOUT = "timeout"
BROKEN_POOL = "broken-pool"
CORRUPT_RESULT = "corrupt-result"

FAILURE_KINDS = (CRASH, TIMEOUT, BROKEN_POOL, CORRUPT_RESULT)


def classify_failure(exc: BaseException) -> str:
    """Bucket an exception from a run attempt into a failure kind."""
    if isinstance(exc, concurrent.futures.BrokenExecutor):
        return BROKEN_POOL
    if isinstance(exc, (TimeoutError, concurrent.futures.TimeoutError)):
        return TIMEOUT
    return CRASH


def is_valid_result(result: object) -> bool:
    """True when a worker handed back a genuine simulation result."""
    return isinstance(result, SimResult)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries, exponential backoff, deterministic jitter.

    ``max_retries`` is the number of *re*-tries: a spec runs at most
    ``max_retries + 1`` times. ``timeout_s`` is a per-spec wall-clock
    deadline, enforced by the parallel executor (the in-process serial
    path cannot interrupt a running simulation and documents that).
    Jitter is derived from a hash of ``(key, attempt)`` rather than a
    clock or RNG, so the backoff schedule — like everything else in the
    pipeline — is reproducible run to run.
    """

    max_retries: int = 0
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    @property
    def attempts_allowed(self) -> int:
        return self.max_retries + 1

    def backoff_s(self, failed_attempt: int, key: str = "") -> float:
        """Sleep before re-running after ``failed_attempt`` (1-based)."""
        if failed_attempt < 1:
            return 0.0
        raw = self.backoff_base_s * (
            self.backoff_multiplier ** (failed_attempt - 1))
        raw = min(raw, self.backoff_max_s)
        digest = hashlib.sha256(f"{key}|{failed_attempt}".encode()).digest()
        unit = digest[0] / 255.0  # deterministic in [0, 1]
        return raw * (1.0 - self.jitter_fraction * unit)


# ---------------------------------------------------------------------------
# MISSING: the absorbing value failed cells resolve to
# ---------------------------------------------------------------------------


class _Missing:
    """Absorbing singleton: arithmetic/attribute/indexing all yield it.

    Figure functions compute cells with expressions like
    ``rld.speedup_over(base)`` or ``sum(...) / len(rows)``; when any
    contributor is a :class:`FailedRun`, the whole expression collapses
    to ``MISSING`` instead of raising, and the table renders ``—``.
    """

    _instance: Optional["_Missing"] = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "—"

    def __format__(self, spec: str) -> str:
        return "—"

    def __bool__(self) -> bool:
        return False

    def __call__(self, *args: object, **kwargs: object) -> "_Missing":
        return self

    def __getattr__(self, name: str) -> "_Missing":
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        return self

    def __getitem__(self, key: object) -> "_Missing":
        return self

    def __iter__(self):
        return iter(())

    def __float__(self) -> float:
        raise TypeError("value is MISSING: a contributing run failed")

    def __reduce__(self):
        return (_missing, ())

    def _absorb(self, *args: object) -> "_Missing":
        return self

    __add__ = __radd__ = __sub__ = __rsub__ = _absorb
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = _absorb
    __floordiv__ = __rfloordiv__ = __mod__ = __rmod__ = _absorb
    __pow__ = __rpow__ = __neg__ = __pos__ = __abs__ = _absorb
    __round__ = _absorb


def _missing() -> "_Missing":
    return _Missing()


MISSING = _Missing()


# ---------------------------------------------------------------------------
# FailedRun sentinel
# ---------------------------------------------------------------------------


@dataclass
class FailedRun:
    """Recorded in the results map when a spec exhausts its retries.

    Reading any :class:`SimResult` attribute off it answers
    :data:`MISSING`, so downstream table code degrades to ``—`` cells
    instead of raising. Never written to the result cache.
    """

    benchmark: str
    memory: str
    variant: str = ""
    kind: str = CRASH
    attempts: int = 1
    error: str = ""

    @property
    def label(self) -> str:
        parts = [self.benchmark, self.memory]
        if self.variant:
            parts.append(self.variant)
        return "/".join(parts)

    def __getattr__(self, name: str) -> "_Missing":
        if name.startswith("_"):
            raise AttributeError(name)
        return MISSING


class SuiteError(RuntimeError):
    """Raised (fail-fast mode) when a spec fails beyond its retry budget."""

    def __init__(self, failed: FailedRun) -> None:
        self.failed = failed
        super().__init__(
            f"spec {failed.label} failed ({failed.kind}) after "
            f"{failed.attempts} attempt(s): {failed.error}")


def failure_appendix(failures: Sequence[FailedRun],
                     markdown: bool = False) -> str:
    """Human-readable appendix listing every FailedRun of a suite."""
    if not failures:
        return ""
    lines: List[str] = []
    if markdown:
        lines.append("## Failure appendix")
        lines.append("")
        lines.append(f"{len(failures)} run(s) failed after exhausting "
                     "retries; their cells render as `—` above.")
        lines.append("")
        lines.append("| spec | failure | attempts | error |")
        lines.append("|---|---|---|---|")
        for f in failures:
            lines.append(f"| {f.label} | {f.kind} | {f.attempts} "
                         f"| {f.error} |")
    else:
        lines.append("== Failure appendix ==")
        lines.append(f"{len(failures)} run(s) failed after exhausting "
                     "retries; their cells render as '—' above.")
        for f in failures:
            lines.append(f"  {f.label}: {f.kind} after {f.attempts} "
                         f"attempt(s) — {f.error}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------


class InjectedCrash(RuntimeError):
    """Raised by a ``crash``-mode fault."""


FAULT_MODES = ("crash", "kill", "hang", "corrupt", "ckptkill")

#: What a ``corrupt``-mode fault returns in place of a SimResult.
CORRUPT_PAYLOAD: Dict[str, bool] = {"__injected_corrupt__": True}

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class Fault:
    """One planned fault: fire ``mode`` on a spec's leading attempts."""

    label: str
    mode: str
    times: Optional[int] = 1  # None = every attempt
    seconds: float = 30.0     # hang duration

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: {FAULT_MODES}")
        if self.times is not None and self.times < 1:
            raise ValueError("fault times must be >= 1 (or '*')")
        if self.seconds <= 0:
            raise ValueError("hang seconds must be positive")

    def fires(self, attempt: int) -> bool:
        return self.times is None or attempt <= self.times


@dataclass(frozen=True)
class FaultPlan:
    """A set of planned faults, keyed by spec label.

    Consulted by ``execute_spec`` around every real run attempt —
    identically in the serial path and in pool workers (workers inherit
    the plan through the environment variable). ``attempt`` numbering
    makes the plan fully deterministic: ``crash`` with ``times=1``
    always fails the first attempt and always lets the retry succeed.
    """

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        faults: List[Fault] = []
        entries = [e.strip() for chunk in text.split(";")
                   for e in chunk.split(",") if e.strip()]
        for entry in entries:
            if "=" not in entry:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected "
                    "'label=mode[:times][:seconds]'")
            label, _, rest = entry.partition("=")
            parts = rest.split(":")
            mode = parts[0].strip()
            times: Optional[int] = 1
            # The third slot is mode-dependent: hang duration in seconds,
            # or — for ckptkill — the save ordinal to die after.
            seconds = 1.0 if mode == "ckptkill" else 30.0
            if len(parts) > 1 and parts[1].strip():
                raw = parts[1].strip()
                times = None if raw == "*" else int(raw)
            if len(parts) > 2 and parts[2].strip():
                seconds = float(parts[2].strip())
            if len(parts) > 3:
                raise ValueError(f"bad fault entry {entry!r}: too many ':'")
            faults.append(Fault(label=label.strip(), mode=mode,
                                times=times, seconds=seconds))
        return cls(faults=tuple(faults))

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        text = (environ or os.environ).get(ENV_FAULT_PLAN, "").strip()
        if not text:
            return None
        try:
            return cls.parse(text)
        except (ValueError, TypeError) as exc:
            raise ValueError(
                f"malformed {ENV_FAULT_PLAN}={text!r}: {exc}; expected "
                "entries like 'mcf/ddr3=crash;mcf/rl=hang:*:20'") from None

    def fault_for(self, label: str, attempt: int) -> Optional[Fault]:
        for fault in self.faults:
            if fault.label == label and fault.fires(attempt):
                return fault
        return None

    # -- hooks called by execute_spec ----------------------------------

    def before_run(self, label: str, attempt: int) -> None:
        """Fire crash / kill / hang faults planned for this attempt."""
        fault = self.fault_for(label, attempt)
        if fault is None:
            return
        if fault.mode == "crash":
            raise InjectedCrash(
                f"injected crash: {label} attempt {attempt}")
        if fault.mode == "kill":
            os._exit(1)  # simulate an OOM-kill: no cleanup, no excuses
        if fault.mode == "hang":
            time.sleep(fault.seconds)
        # "ckptkill" deliberately does NOT fire here: it is consumed by
        # the checkpoint layer (see kill_after_saves), which hard-exits
        # right after the N-th snapshot lands — a mid-flight death that
        # leaves a valid checkpoint for the retry to resume from.

    def kill_after_saves(self, label: str, attempt: int) -> Optional[int]:
        """``ckptkill`` plan for this attempt: die after the N-th save.

        The entry ``label=ckptkill[:times][:N]`` reuses the *seconds*
        slot as the save ordinal N (default 1: die right after the
        first snapshot). Returns None when no such fault is planned.
        """
        fault = self.fault_for(label, attempt)
        if fault is not None and fault.mode == "ckptkill":
            return max(1, int(fault.seconds))
        return None

    def after_run(self, label: str, attempt: int, result: object) -> object:
        """Replace the result with a corrupt payload when planned."""
        fault = self.fault_for(label, attempt)
        if fault is not None and fault.mode == "corrupt":
            return dict(CORRUPT_PAYLOAD)
        return result


# Programmatic activation (tests, serial in-process runs); the
# environment variable remains the cross-process transport.
_active_plan: Optional[FaultPlan] = None
_env_cache: Tuple[str, Optional[FaultPlan]] = ("", None)


def activate_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    global _active_plan
    _active_plan = plan
    return plan


def deactivate_fault_plan() -> None:
    activate_fault_plan(None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The programmatically activated plan, else the environment's."""
    global _env_cache
    if _active_plan is not None:
        return _active_plan
    text = os.environ.get(ENV_FAULT_PLAN, "").strip()
    if not text:
        return None
    if _env_cache[0] != text:
        _env_cache = (text, FaultPlan.from_env())
    return _env_cache[1]
