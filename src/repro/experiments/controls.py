"""Section 6.1.1 control experiments.

* Random critical-word mapping — the critical word lands in the fast
  DIMM with probability 1/8 (paper: only +2.1 % average, many apps
  degrade; proves the intelligent mapping is what matters).
* No-prefetcher RL — with the stream prefetcher off, there is more
  latency left to hide, so the RL gain grows (paper: +17.3 % vs
  +12.9 % with prefetching).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.executor import resolve_results
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
)
from repro.experiments.specs import RunSpec
from repro.sim.system import SimResult

NOPREFETCH = (("prefetcher_enabled", False),)


def specs_random_mapping(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, kind)
            for bench in config.suite()
            for kind in ("ddr3", "rl",
                         "rl_random")]


def specs_no_prefetcher(config: ExperimentConfig) -> List[RunSpec]:
    specs = []
    for bench in config.suite():
        specs.append(RunSpec(bench, "ddr3"))
        specs.append(RunSpec(bench, "rl"))
        specs.append(RunSpec(bench, "ddr3", variant="noprefetch",
                             overrides=NOPREFETCH))
        specs.append(RunSpec(bench, "rl", variant="noprefetch",
                             overrides=NOPREFETCH))
    return specs


def random_mapping(config: ExperimentConfig = None,
                   results: Optional[Dict[RunSpec, SimResult]] = None
                   ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_random_mapping(config), config, results)
    table = ExperimentTable(
        experiment_id="sec611_random",
        title="Random critical-word mapping control (RL)",
        columns=["benchmark", "rl", "rl_random", "fast_fraction"],
        notes="Paper: random mapping yields only +2.1% on average with "
              "severe degradation for low-bias applications.")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        rl = results[RunSpec(bench, "rl")]
        rnd = results[RunSpec(bench, "rl_random")]
        table.add(benchmark=bench, rl=rl.speedup_over(base),
                  rl_random=rnd.speedup_over(base),
                  fast_fraction=rnd.fast_service_fraction)
    table.add(benchmark="MEAN", rl=table.mean("rl"),
              rl_random=table.mean("rl_random"),
              fast_fraction=table.mean("fast_fraction"))
    return table


def no_prefetcher(config: ExperimentConfig = None,
                  results: Optional[Dict[RunSpec, SimResult]] = None
                  ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_no_prefetcher(config), config, results)
    table = ExperimentTable(
        experiment_id="sec611_noprefetch",
        title="RL gain without the stream prefetcher",
        columns=["benchmark", "rl", "rl_noprefetch"],
        notes="Paper: RL improves 17.3% without the prefetcher vs 12.9% "
              "with it (more latency left to hide).")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        rl = results[RunSpec(bench, "rl")]
        base_np = results[RunSpec(bench, "ddr3",
                                  variant="noprefetch", overrides=NOPREFETCH)]
        rl_np = results[RunSpec(bench, "rl",
                                variant="noprefetch", overrides=NOPREFETCH)]
        table.add(benchmark=bench, rl=rl.speedup_over(base),
                  rl_noprefetch=rl_np.speedup_over(base_np))
    table.add(benchmark="MEAN", rl=table.mean("rl"),
              rl_noprefetch=table.mean("rl_noprefetch"))
    return table
