"""Section 6.1.1 control experiments.

* Random critical-word mapping — the critical word lands in the fast
  DIMM with probability 1/8 (paper: only +2.1 % average, many apps
  degrade; proves the intelligent mapping is what matters).
* No-prefetcher RL — with the stream prefetcher off, there is more
  latency left to hide, so the RL gain grows (paper: +17.3 % vs
  +12.9 % with prefetching).
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
    run_cached,
)
from repro.sim.config import MemoryKind
from repro.sim.system import run_benchmark


def random_mapping(config: ExperimentConfig = None) -> ExperimentTable:
    config = config or default_config()
    table = ExperimentTable(
        experiment_id="sec611_random",
        title="Random critical-word mapping control (RL)",
        columns=["benchmark", "rl", "rl_random", "fast_fraction"],
        notes="Paper: random mapping yields only +2.1% on average with "
              "severe degradation for low-bias applications.")
    for bench in config.suite():
        base = run_cached(bench, MemoryKind.DDR3, config)
        rl = run_cached(bench, MemoryKind.RL, config)
        rnd = run_cached(bench, MemoryKind.RL_RANDOM, config)
        table.add(benchmark=bench, rl=rl.speedup_over(base),
                  rl_random=rnd.speedup_over(base),
                  fast_fraction=rnd.fast_service_fraction)
    table.add(benchmark="MEAN", rl=table.mean("rl"),
              rl_random=table.mean("rl_random"),
              fast_fraction=table.mean("fast_fraction"))
    return table


def no_prefetcher(config: ExperimentConfig = None) -> ExperimentTable:
    config = config or default_config()
    table = ExperimentTable(
        experiment_id="sec611_noprefetch",
        title="RL gain without the stream prefetcher",
        columns=["benchmark", "rl", "rl_noprefetch"],
        notes="Paper: RL improves 17.3% without the prefetcher vs 12.9% "
              "with it (more latency left to hide).")
    for bench in config.suite():
        base = run_cached(bench, MemoryKind.DDR3, config)
        rl = run_cached(bench, MemoryKind.RL, config)
        base_np = run_cached(
            bench, MemoryKind.DDR3, config, variant="noprefetch",
            runner=lambda b=bench: run_benchmark(
                b, config.sim_config(MemoryKind.DDR3).without_prefetcher()))
        rl_np = run_cached(
            bench, MemoryKind.RL, config, variant="noprefetch",
            runner=lambda b=bench: run_benchmark(
                b, config.sim_config(MemoryKind.RL).without_prefetcher()))
        table.add(benchmark=bench, rl=rl.speedup_over(base),
                  rl_noprefetch=rl_np.speedup_over(base_np))
    table.add(benchmark="MEAN", rl=table.mean("rl"),
              rl_noprefetch=table.mean("rl_noprefetch"))
    return table
