"""Figure 1: sensitivity of applications to the three DRAM flavours.

Fig 1a — throughput of homogeneous RLDRAM3 / LPDDR2 memories
normalised to the DDR3 baseline (paper: RLDRAM3 +31 %, LPDDR2 -13 % on
average). Fig 1b — the average memory latency split into queue delay and
core (array) delay for each flavour (paper: RLDRAM3 total ~43 % lower
than DDR3, LPDDR2 ~41 % higher).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.executor import resolve_results
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
)
from repro.experiments.specs import RunSpec
from repro.sim.system import SimResult

FLAVOURS = ("ddr3", "rldram3", "lpddr2")


def specs_figure_1a(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, kind)
            for bench in config.suite() for kind in FLAVOURS]


# Fig 1b reuses exactly the Fig 1a runs, split into latency components.
specs_figure_1b = specs_figure_1a


def figure_1a(config: ExperimentConfig = None,
              results: Optional[Dict[RunSpec, SimResult]] = None
              ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_1a(config), config, results)
    table = ExperimentTable(
        experiment_id="fig1a",
        title="Homogeneous DRAM flavours: normalised throughput",
        columns=["benchmark", "ddr3", "rldram3", "lpddr2"],
        notes="Paper: RLDRAM3 +31% and LPDDR2 -13% vs DDR3 (suite average).")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        rld = results[RunSpec(bench, "rldram3")]
        lpd = results[RunSpec(bench, "lpddr2")]
        table.add(benchmark=bench, ddr3=1.0,
                  rldram3=rld.speedup_over(base),
                  lpddr2=lpd.speedup_over(base))
    table.add(benchmark="MEAN", ddr3=1.0,
              rldram3=table.mean("rldram3"), lpddr2=table.mean("lpddr2"))
    return table


def figure_1b(config: ExperimentConfig = None,
              results: Optional[Dict[RunSpec, SimResult]] = None
              ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_1b(config), config, results)
    table = ExperimentTable(
        experiment_id="fig1b",
        title="Memory read latency breakdown (CPU cycles)",
        columns=["benchmark", "flavour", "queue_latency", "core_latency",
                 "total"],
        notes="Paper: RLDRAM3 queue + core well below DDR3; LPDDR2 ~41% above.")
    for bench in config.suite():
        for kind in FLAVOURS:
            result = results[RunSpec(bench, kind)]
            table.add(benchmark=bench, flavour=kind,
                      queue_latency=result.avg_queue_latency,
                      core_latency=result.avg_core_latency,
                      total=result.avg_queue_latency + result.avg_core_latency)
    for kind in FLAVOURS:
        rows = [r for r in table.rows if r["flavour"] == kind]
        queue = sum(r["queue_latency"] for r in rows) / len(rows)
        core = sum(r["core_latency"] for r in rows) / len(rows)
        table.add(benchmark="MEAN", flavour=kind,
                  queue_latency=queue, core_latency=core, total=queue + core)
    return table
