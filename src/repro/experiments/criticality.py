"""Figures 3 and 4: critical-word regularity.

Fig 3 — for the most-accessed cache lines of leslie3d and mcf, the
distribution of accesses across the 8 words (paper: strong per-line
bias; leslie3d's mass on word 0, mcf's spread over words but stable
per line). Fig 4 — per-benchmark distribution of critical words over
all DRAM fetches (paper: word 0 critical for >50 % of fetches in 21 of
27 programs; suite average 67 %).

These are trace-level profiles: we drive the cache hierarchy with the
benchmark's traces on the baseline memory and observe demand LLC misses
through :class:`~repro.core.criticality.CriticalityProfiler`. The
profiling passes are named runners, so they parallelise and cache like
ordinary runs; Fig 3 packs the live profiler's per-line histograms into
``SimResult.extra``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.criticality import CriticalityProfiler
from repro.experiments.executor import resolve_results
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
)
from repro.experiments.specs import RunSpec, register_runner
from repro.sim.system import SimulationSystem, make_traces, prewarm_l2
from repro.workloads.profiles import FIG3_BENCHMARKS, profile_for

# Fig 3 histograms are packed for the deepest rank any caller asks for.
FIG3_MAX_LINES = 32


def shrunken_profile(benchmark: str):
    """Footprint-shrunken variant used for reuse-sensitive profiling.

    The paper's Fig 3 monitors a billion cycles, long enough for hot
    lines to be fetched from DRAM many times. Our runs are far shorter,
    so the profiling pass shrinks the footprint (keeping it well above
    the LLC) to recreate the same DRAM-level line reuse.
    """
    import dataclasses
    profile = profile_for(benchmark)
    return dataclasses.replace(
        profile,
        footprint_lines=max(16384, profile.footprint_lines // 64))


def _run_shrunken(benchmark: str, config: ExperimentConfig) -> SimulationSystem:
    sim_config = config.sim_config("ddr3")
    profile = shrunken_profile(benchmark)
    traces = make_traces(profile, sim_config)
    system = SimulationSystem(sim_config, traces, profile=profile)
    prewarm_l2(system, profile)
    return system


@register_runner("criticality_profiling")
def _profiling_runner(spec: RunSpec, config: ExperimentConfig):
    """Shrunken-footprint baseline run (Fig 4's adaptive bound)."""
    system = _run_shrunken(spec.benchmark, config)
    result = system.run()
    result.benchmark = spec.benchmark
    return result


@register_runner("criticality_fig3")
def _fig3_runner(spec: RunSpec, config: ExperimentConfig):
    """Profiling run that also packs the per-line histograms."""
    system = _run_shrunken(spec.benchmark, config)
    result = system.run()
    result.benchmark = spec.benchmark
    profiler = system.profiler
    result.extra = {"fig3": {
        "per_line_dominance": profiler.per_line_dominance(),
        "top_lines": [
            {"dominant_word": hist.dominant_word(),
             "fractions": hist.fractions(),
             "total": hist.total}
            for hist in profiler.top_lines(FIG3_MAX_LINES)
        ],
    }}
    return result


def profiling_spec(benchmark: str) -> RunSpec:
    return RunSpec(benchmark, "ddr3", variant="profiling",
                   runner="criticality_profiling")


def fig3_spec(benchmark: str) -> RunSpec:
    return RunSpec(benchmark, "ddr3", variant="fig3_profile",
                   runner="criticality_fig3")


def specs_figure_3(config: ExperimentConfig,
                   benchmarks: tuple = FIG3_BENCHMARKS) -> List[RunSpec]:
    return [fig3_spec(bench) for bench in benchmarks]


def specs_figure_4(config: ExperimentConfig) -> List[RunSpec]:
    specs = []
    for bench in config.suite():
        specs.append(RunSpec(bench, "ddr3"))
        specs.append(profiling_spec(bench))
    return specs


def profiling_result(benchmark: str, config: ExperimentConfig):
    """Cached run of the shrunken-footprint profiling pass."""
    spec = profiling_spec(benchmark)
    return resolve_results([spec], config)[spec]


def profile_benchmark(benchmark: str,
                      config: ExperimentConfig) -> CriticalityProfiler:
    """Run the baseline once, returning the live profiler object."""
    system = _run_shrunken(benchmark, config)
    system.run()
    return system.profiler


def figure_3(config: ExperimentConfig = None,
             benchmarks: tuple = FIG3_BENCHMARKS,
             top_lines: int = 10,
             results: Optional[Dict[RunSpec, object]] = None
             ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_3(config, benchmarks), config,
                              results)
    table = ExperimentTable(
        experiment_id="fig3",
        title="Per-line critical word histograms (most-accessed lines)",
        columns=["benchmark", "line_rank", "dominant_word",
                 "dominant_fraction"] + [f"w{i}" for i in range(8)],
        notes="Paper: each hot line shows a well-defined bias toward one "
              "or two words (word 0 for leslie3d; varied words for mcf).")
    for bench in benchmarks:
        packed = results[fig3_spec(bench)].extra["fig3"]
        for rank, hist in enumerate(packed["top_lines"][:top_lines]):
            fracs = hist["fractions"]
            table.add(benchmark=bench, line_rank=rank,
                      dominant_word=hist["dominant_word"],
                      dominant_fraction=max(fracs) if hist["total"] else 0.0,
                      **{f"w{i}": fracs[i] for i in range(8)})
        table.add(benchmark=f"{bench}-mean-dominance", line_rank=-1,
                  dominant_word=-1,
                  dominant_fraction=packed["per_line_dominance"],
                  **{f"w{i}": 0.0 for i in range(8)})
    return table


def figure_4(config: ExperimentConfig = None,
             results: Optional[Dict[RunSpec, object]] = None
             ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_4(config), config, results)
    table = ExperimentTable(
        experiment_id="fig4",
        title="Distribution of critical words per benchmark",
        columns=["benchmark", "word0_fraction", "repeat_fraction"]
                + [f"w{i}" for i in range(8)],
        notes="Paper: word 0 critical in >50% of fetches for 21/27 programs;"
              " suite average 67%. repeat_fraction is the adaptive"
              " predictor's upper bound (~79%).")
    word0: List[float] = []
    over_half = 0
    for bench in config.suite():
        result = results[RunSpec(bench, "ddr3")]
        dist = result.critical_distribution or [0.0] * 8
        # The adaptive bound needs DRAM-level line *refetches*; use the
        # reuse-heavy profiling pass for that column.
        repeat = results[profiling_spec(bench)].repeat_fraction
        table.add(benchmark=bench, word0_fraction=result.word0_fraction,
                  repeat_fraction=repeat,
                  **{f"w{i}": dist[i] for i in range(8)})
        word0.append(result.word0_fraction)
        if result.word0_fraction > 0.5:
            over_half += 1
    table.add(benchmark="MEAN",
              word0_fraction=sum(word0) / len(word0) if word0 else 0.0,
              repeat_fraction=table.mean("repeat_fraction"),
              **{f"w{i}": 0.0 for i in range(8)})
    table.notes += f" Measured: {over_half}/{len(word0)} programs above 50%."
    return table
