"""Shared machinery for the per-figure experiment modules.

Simulation runs are expensive in pure Python, so results are cached on
disk keyed by the declarative :class:`~repro.experiments.specs.RunSpec`
plus a digest of the fully resolved simulation config. Figure modules
declare their spec lists up front, resolve them through
:mod:`repro.experiments.executor` (serial or process-pool parallel),
and return an :class:`ExperimentTable` that formats itself for the
console and for EXPERIMENTS.md. :func:`run_cached` remains as the
single-run convenience wrapper over the same cache.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.resilience import MISSING
from repro.experiments.specs import RunSpec, execute_spec, spec_cache_key
from repro.sim.config import SimConfig
from repro.sim.system import SimResult
from repro.store import ArtifactStore, key_digest, parse_size, quarantine_file
from repro.telemetry.session import active_session
from repro.workloads.profiles import benchmark_names

DEFAULT_READS = 2000


@dataclass(frozen=True)
class ExperimentConfig:
    """Run-scale knobs, overridable via environment variables."""

    target_dram_reads: int = DEFAULT_READS
    benchmarks: Sequence[str] = ()
    cache_dir: Optional[str] = ".repro_cache"
    seed: int = 42
    # Parallel worker count for the spec executor: None defers to the
    # REPRO_JOBS environment variable (default 1, fully serial).
    jobs: Optional[int] = None
    # Resilience knobs for the executor (see experiments.resilience):
    # retries per failed spec, per-spec wall-clock timeout (parallel
    # mode only), record FailedRun sentinels instead of raising, and
    # degrade exhausted specs to one in-process serial run. None of
    # these affect cache keys — a retried result is the same result.
    retries: int = 0
    timeout_s: Optional[float] = None
    keep_going: bool = False
    degrade_serial: bool = False
    # Crash-safe checkpointing (see repro.sim.checkpoint): when a
    # directory is set, non-runner specs snapshot the whole simulator
    # every `checkpoint_every` DRAM reads (0 = module default) and a
    # retried spec resumes from the last snapshot instead of starting
    # over. Neither knob affects cache keys: a resumed result is
    # byte-identical to an uninterrupted one.
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 0
    # Result-store byte budget (see repro.store): when set, the cache
    # LRU-evicts past it after writes — an evicted entry is recomputed
    # on the next request, never an error. None = unbounded (the
    # pre-store behaviour). Does not affect cache keys.
    cache_budget_bytes: Optional[int] = None

    def suite(self) -> List[str]:
        return list(self.benchmarks) if self.benchmarks else benchmark_names()

    def sim_config(self, memory: str) -> SimConfig:
        return SimConfig(memory=memory, seed=self.seed,
                         target_dram_reads=self.target_dram_reads)


def _env_number(name: str, default, convert):
    """Parse a numeric environment knob with a clear error message."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return convert(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be {'an integer' if convert is int else 'a number'}"
            f", got {raw!r}; unset it for the default ({default})") from None


def default_config() -> ExperimentConfig:
    """ExperimentConfig from the ``REPRO_*`` environment knobs.

    ``REPRO_READS`` / ``REPRO_BENCHMARKS`` / ``REPRO_CACHE`` scale the
    runs; ``REPRO_RETRIES`` / ``REPRO_TIMEOUT`` / ``REPRO_KEEP_GOING``
    configure the executor's failure handling (see
    :mod:`repro.experiments.resilience`).
    """
    reads = _env_number("REPRO_READS", DEFAULT_READS, int)
    benches = tuple(b for b in os.environ.get("REPRO_BENCHMARKS", "").split(",")
                    if b.strip())
    cache = os.environ.get("REPRO_CACHE", ".repro_cache")
    keep_going = os.environ.get("REPRO_KEEP_GOING", "").strip().lower()
    ckpt_dir = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
    try:
        budget = parse_size(os.environ.get("REPRO_CACHE_BUDGET"))
    except ValueError:
        raise ValueError(
            "REPRO_CACHE_BUDGET must be a byte count with an optional "
            f"K/M/G suffix, got {os.environ['REPRO_CACHE_BUDGET']!r}; "
            "unset it for an unbounded cache") from None
    return ExperimentConfig(
        target_dram_reads=reads,
        benchmarks=benches,
        cache_dir=None if cache.lower() == "off" else cache,
        retries=_env_number("REPRO_RETRIES", 0, int),
        timeout_s=_env_number("REPRO_TIMEOUT", None, float),
        keep_going=keep_going in ("1", "true", "yes", "on"),
        checkpoint_dir=ckpt_dir or None,
        checkpoint_every=_env_number("REPRO_CHECKPOINT_EVERY", 0, int),
        cache_budget_bytes=budget)


class ResultCache:
    """Disk cache of :class:`SimResult` records on the artifact store.

    Entries live in a content-addressed
    :class:`~repro.store.ArtifactStore` tier (``results``): a
    ``index/<keydigest>.json`` key→digest record pointing at a
    sha256-named blob, all written through the shared atomic+durable
    path with a per-key advisory ``flock``, so concurrent suite runs
    sharing a cache directory never observe a torn entry. Payload
    digests are re-verified on every read; bit rot is quarantined as
    ``<file>.corrupt``, never returned.

    The pre-store flat layout (``<keydigest>.json`` at the directory
    root, cache-key versions ≤ v8) keeps resolving: a flat entry found
    on a miss is validated, migrated into the store, and served as a
    hit — no recompute, no flag day.

    With ``budget_bytes`` set the tier is size-bounded: writes past the
    budget LRU-evict the least-recently-accessed unpinned entries (the
    access journal, not mtime, orders them). An evicted entry reads as
    a clean miss and is recomputed byte-identically — parallel/serial/
    resume determinism guarantees survive eviction by construction.
    """

    def __init__(self, directory: Optional[str],
                 budget_bytes: Optional[int] = None) -> None:
        self.directory = Path(directory) if directory else None
        self.store: Optional[ArtifactStore] = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.store = ArtifactStore(self.directory, tier="results",
                                       budget_bytes=budget_bytes)
        # Per-instance traffic counters, exposed via stats(); the
        # quarantine event is additionally mirrored into any active
        # telemetry session (legacy cache.quarantined counter).
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "quarantined": 0}

    def stats(self) -> Dict[str, object]:
        """Traffic counters for this cache handle (hits/misses/writes/
        quarantined), plus the directory they describe."""
        return {"directory": str(self.directory) if self.directory else None,
                **self.counters}

    def store_stats(self) -> Optional[Dict[str, object]]:
        """Underlying artifact-store tier stats (entries/bytes/budget/
        evictions), or None for a disabled cache."""
        return self.store.stats() if self.store is not None else None

    def _path(self, key: str) -> Optional[Path]:
        """The on-disk index entry for ``key`` (None if caching is off)."""
        if self.store is None:
            return None
        return self.store.index_path(key)

    def _legacy_path(self, key: str) -> Optional[Path]:
        """Where the pre-store flat layout kept this key's entry."""
        if self.directory is None:
            return None
        return self.directory / f"{key_digest(key)}.json"

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no read, no counters): does an entry
        for ``key`` sit on disk? Used by the service scheduler to count
        cache coalescing without paying a JSON load per submit."""
        if self.store is None:
            return False
        legacy = self._legacy_path(key)
        return self.store.contains(key) or (legacy is not None
                                            and legacy.exists())

    def get(self, key: str) -> Optional[SimResult]:
        """Recall a cached result; corruption quarantines the entry.

        Truncated files, non-JSON bytes, digest mismatches, non-dict
        payloads, and schema drift all return None — but the offending
        file is renamed to ``<entry>.corrupt`` first (and counted in
        telemetry as ``cache.quarantined``) so the evidence survives
        for a post-mortem instead of being silently re-clobbered by the
        re-run's :meth:`put`. An evicted or never-written entry is a
        plain miss; a flat legacy entry is migrated into the store and
        served as a hit.
        """
        if self.store is None:
            self.counters["misses"] += 1
            return None
        quarantined_before = self.store.counters["quarantined"]
        raw = self.store.get_bytes(key)
        if raw is None:
            if self.store.counters["quarantined"] > quarantined_before:
                return self._count_quarantine()
            return self._get_legacy(key)
        result = self._parse(key, raw)
        if result is None:
            # Readable bytes, wrong shape: schema drift. Quarantine the
            # blob (the evidence) and drop the index entry.
            record = self.store._read_index(key)
            if record is not None:
                self.store._quarantine(self.store.blob_path(record["digest"]))
            self.store.delete(key)
            return self._count_quarantine()
        self.counters["hits"] += 1
        return result

    def _parse(self, key: str, raw: bytes) -> Optional[SimResult]:
        """Bytes → SimResult; None for any shape this version can't use."""
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) or data.get("__key__") != key:
            return None
        data.pop("__key__", None)
        try:
            return SimResult(**data)
        except (TypeError, ValueError):
            return None

    def _get_legacy(self, key: str) -> Optional[SimResult]:
        """Resolve (and migrate) a pre-store flat-layout entry."""
        path = self._legacy_path(key)
        if path is None or not path.exists():
            self.counters["misses"] += 1
            return None
        try:
            raw = path.read_bytes()
        except OSError:
            self.counters["misses"] += 1
            return None
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            quarantine_file(path)
            return self._count_quarantine()
        if not isinstance(data, dict):
            quarantine_file(path)
            return self._count_quarantine()
        if data.get("__key__") != key:
            self.counters["misses"] += 1  # digest collision: not ours
            return None
        result = self._parse(key, raw)
        if result is None:
            quarantine_file(path)
            return self._count_quarantine()
        # Migrate: same bytes, new home; the flat file retires.
        self.store.put_bytes(key, raw)
        path.unlink(missing_ok=True)
        self.counters["hits"] += 1
        return result

    def _count_quarantine(self) -> None:
        self.counters["quarantined"] += 1
        session = active_session()
        if session is not None:
            session.incr("cache.quarantined")
        return None

    def put(self, key: str, result: SimResult) -> None:
        if self.store is None:
            return
        self.counters["writes"] += 1
        data = dataclasses.asdict(result)
        data["__key__"] = key
        self.store.put_bytes(key, json.dumps(data).encode())

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> Optional[dict]:
        """Run the store tier's gc (see :meth:`ArtifactStore.gc`)."""
        if self.store is None:
            return None
        return self.store.gc(max_bytes=max_bytes, dry_run=dry_run)


_caches: Dict[Tuple[str, Optional[int]], ResultCache] = {}


def _cache_for(config: ExperimentConfig) -> ResultCache:
    budget = getattr(config, "cache_budget_bytes", None)
    key = (config.cache_dir or "__off__", budget)
    if key not in _caches:
        _caches[key] = ResultCache(config.cache_dir, budget_bytes=budget)
    return _caches[key]


def run_cached(benchmark: str, memory: str,
               config: ExperimentConfig,
               variant: str = "",
               runner: Optional[Callable[[], SimResult]] = None) -> SimResult:
    """Run (or recall) one benchmark on one memory organisation.

    ``memory`` is a registry backend name (the deprecated ``MemoryKind``
    enum is still accepted and canonicalised by :class:`RunSpec`).

    ``variant`` distinguishes non-default setups (e.g. "noprefetch");
    ``runner`` overrides the default run for such variants. New code
    should declare a :class:`~repro.experiments.specs.RunSpec` and go
    through the executor instead; this wrapper shares the same cache
    keys, so both paths recall each other's results.
    """
    spec = RunSpec(benchmark=benchmark, memory=memory, variant=variant)
    key = spec_cache_key(spec, config)
    cache = _cache_for(config)
    # With an active telemetry session a recalled result would have no
    # metrics or trace spans to contribute, so force a real run (the
    # fresh result still refreshes the cache for later plain runs).
    if active_session() is None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    if runner is not None:
        result = runner()
    else:
        result = execute_spec(spec, config)
    cache.put(key, result)
    return result


@dataclass
class ExperimentTable:
    """One regenerated paper artefact."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **kwargs: object) -> None:
        self.rows.append(kwargs)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def mean(self, name: str) -> float:
        """Column mean over numeric cells.

        ``MISSING`` cells (failed runs) are excluded — a partial column
        averages its surviving rows; a column with no survivors answers
        ``MISSING`` so the MEAN row degrades to ``—`` too.
        """
        column = self.column(name)
        values = [v for v in column if isinstance(v, (int, float))]
        if not values and any(v is MISSING for v in column):
            return MISSING
        return sum(values) / len(values) if values else 0.0

    @staticmethod
    def _cell(value: object) -> str:
        if value is MISSING:
            return "—"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def format(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        # Widths account for every cell (not just the header) so long
        # benchmark/memory names can't break the grid.
        widths = {
            c: max([len(c), 10]
                   + [len(self._cell(row.get(c, ""))) for row in self.rows])
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(self._cell(row.get(c, "")).ljust(widths[c])
                                   for c in self.columns))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)
