"""Shared machinery for the per-figure experiment modules.

Simulation runs are expensive in pure Python, so results are cached on
disk keyed by the declarative :class:`~repro.experiments.specs.RunSpec`
plus a digest of the fully resolved simulation config. Figure modules
declare their spec lists up front, resolve them through
:mod:`repro.experiments.executor` (serial or process-pool parallel),
and return an :class:`ExperimentTable` that formats itself for the
console and for EXPERIMENTS.md. :func:`run_cached` remains as the
single-run convenience wrapper over the same cache.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.resilience import MISSING
from repro.experiments.specs import RunSpec, execute_spec, spec_cache_key
from repro.sim.config import SimConfig
from repro.sim.system import SimResult
from repro.telemetry.session import active_session
from repro.workloads.profiles import benchmark_names

DEFAULT_READS = 2000


@dataclass(frozen=True)
class ExperimentConfig:
    """Run-scale knobs, overridable via environment variables."""

    target_dram_reads: int = DEFAULT_READS
    benchmarks: Sequence[str] = ()
    cache_dir: Optional[str] = ".repro_cache"
    seed: int = 42
    # Parallel worker count for the spec executor: None defers to the
    # REPRO_JOBS environment variable (default 1, fully serial).
    jobs: Optional[int] = None
    # Resilience knobs for the executor (see experiments.resilience):
    # retries per failed spec, per-spec wall-clock timeout (parallel
    # mode only), record FailedRun sentinels instead of raising, and
    # degrade exhausted specs to one in-process serial run. None of
    # these affect cache keys — a retried result is the same result.
    retries: int = 0
    timeout_s: Optional[float] = None
    keep_going: bool = False
    degrade_serial: bool = False
    # Crash-safe checkpointing (see repro.sim.checkpoint): when a
    # directory is set, non-runner specs snapshot the whole simulator
    # every `checkpoint_every` DRAM reads (0 = module default) and a
    # retried spec resumes from the last snapshot instead of starting
    # over. Neither knob affects cache keys: a resumed result is
    # byte-identical to an uninterrupted one.
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 0

    def suite(self) -> List[str]:
        return list(self.benchmarks) if self.benchmarks else benchmark_names()

    def sim_config(self, memory: str) -> SimConfig:
        return SimConfig(memory=memory, seed=self.seed,
                         target_dram_reads=self.target_dram_reads)


def _env_number(name: str, default, convert):
    """Parse a numeric environment knob with a clear error message."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return convert(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be {'an integer' if convert is int else 'a number'}"
            f", got {raw!r}; unset it for the default ({default})") from None


def default_config() -> ExperimentConfig:
    """ExperimentConfig from the ``REPRO_*`` environment knobs.

    ``REPRO_READS`` / ``REPRO_BENCHMARKS`` / ``REPRO_CACHE`` scale the
    runs; ``REPRO_RETRIES`` / ``REPRO_TIMEOUT`` / ``REPRO_KEEP_GOING``
    configure the executor's failure handling (see
    :mod:`repro.experiments.resilience`).
    """
    reads = _env_number("REPRO_READS", DEFAULT_READS, int)
    benches = tuple(b for b in os.environ.get("REPRO_BENCHMARKS", "").split(",")
                    if b.strip())
    cache = os.environ.get("REPRO_CACHE", ".repro_cache")
    keep_going = os.environ.get("REPRO_KEEP_GOING", "").strip().lower()
    ckpt_dir = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
    return ExperimentConfig(
        target_dram_reads=reads,
        benchmarks=benches,
        cache_dir=None if cache.lower() == "off" else cache,
        retries=_env_number("REPRO_RETRIES", 0, int),
        timeout_s=_env_number("REPRO_TIMEOUT", None, float),
        keep_going=keep_going in ("1", "true", "yes", "on"),
        checkpoint_dir=ckpt_dir or None,
        checkpoint_every=_env_number("REPRO_CHECKPOINT_EVERY", 0, int))


class ResultCache:
    """Disk cache of :class:`SimResult` records, safe for concurrent
    writers.

    ``put`` serializes to a sibling temp file and ``os.replace``s it
    into place, so a reader (or a concurrently restarted writer) never
    observes a torn entry; a per-entry advisory ``flock`` (where the
    platform provides ``fcntl``) additionally serialises writers of the
    same key so parallel suite runs sharing a cache directory don't
    interleave replace cycles.
    """

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        # Per-instance traffic counters, exposed via stats(); the
        # quarantine event is additionally mirrored into any active
        # telemetry session (legacy cache.quarantined counter).
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "quarantined": 0}

    def stats(self) -> Dict[str, object]:
        """Traffic counters for this cache handle (hits/misses/writes/
        quarantined), plus the directory they describe."""
        return {"directory": str(self.directory) if self.directory else None,
                **self.counters}

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    @contextlib.contextmanager
    def _entry_lock(self, path: Path):
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = path.with_suffix(".lock")
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no read, no counters): does an entry
        for ``key`` sit on disk? Used by the service scheduler to count
        cache coalescing without paying a JSON load per submit."""
        path = self._path(key)
        return path is not None and path.exists()

    def get(self, key: str) -> Optional[SimResult]:
        """Recall a cached result; corruption quarantines the entry.

        Truncated files, non-JSON bytes, non-dict payloads, and schema
        drift (unexpected or missing fields) all return None — but the
        offending file is renamed to ``<entry>.corrupt`` first (and
        counted in telemetry as ``cache.quarantined``) so the evidence
        survives for a post-mortem instead of being silently
        re-clobbered by the re-run's :meth:`put`. An entry whose
        embedded key merely differs (digest collision) stays put and
        reads as a plain miss.
        """
        path = self._path(key)
        if path is None or not path.exists():
            self.counters["misses"] += 1
            return None
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._quarantine(path)
        except OSError:
            self.counters["misses"] += 1
            return None
        if not isinstance(data, dict):
            return self._quarantine(path)
        if data.get("__key__") != key:
            self.counters["misses"] += 1
            return None
        data.pop("__key__", None)
        try:
            result = SimResult(**data)
        except (TypeError, ValueError):
            return self._quarantine(path)
        self.counters["hits"] += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Set a corrupt entry aside as ``<entry>.corrupt``."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:  # pragma: no cover - raced or read-only cache
            pass
        self.counters["quarantined"] += 1
        session = active_session()
        if session is not None:
            session.incr("cache.quarantined")
        return None

    def put(self, key: str, result: SimResult) -> None:
        path = self._path(key)
        if path is None:
            return
        self.counters["writes"] += 1
        data = dataclasses.asdict(result)
        data["__key__"] = key
        payload = json.dumps(data)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with self._entry_lock(path):
            try:
                tmp.write_text(payload)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)


_caches: Dict[str, ResultCache] = {}


def _cache_for(config: ExperimentConfig) -> ResultCache:
    key = config.cache_dir or "__off__"
    if key not in _caches:
        _caches[key] = ResultCache(config.cache_dir)
    return _caches[key]


def run_cached(benchmark: str, memory: str,
               config: ExperimentConfig,
               variant: str = "",
               runner: Optional[Callable[[], SimResult]] = None) -> SimResult:
    """Run (or recall) one benchmark on one memory organisation.

    ``memory`` is a registry backend name (the deprecated ``MemoryKind``
    enum is still accepted and canonicalised by :class:`RunSpec`).

    ``variant`` distinguishes non-default setups (e.g. "noprefetch");
    ``runner`` overrides the default run for such variants. New code
    should declare a :class:`~repro.experiments.specs.RunSpec` and go
    through the executor instead; this wrapper shares the same cache
    keys, so both paths recall each other's results.
    """
    spec = RunSpec(benchmark=benchmark, memory=memory, variant=variant)
    key = spec_cache_key(spec, config)
    cache = _cache_for(config)
    # With an active telemetry session a recalled result would have no
    # metrics or trace spans to contribute, so force a real run (the
    # fresh result still refreshes the cache for later plain runs).
    if active_session() is None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    if runner is not None:
        result = runner()
    else:
        result = execute_spec(spec, config)
    cache.put(key, result)
    return result


@dataclass
class ExperimentTable:
    """One regenerated paper artefact."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **kwargs: object) -> None:
        self.rows.append(kwargs)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def mean(self, name: str) -> float:
        """Column mean over numeric cells.

        ``MISSING`` cells (failed runs) are excluded — a partial column
        averages its surviving rows; a column with no survivors answers
        ``MISSING`` so the MEAN row degrades to ``—`` too.
        """
        column = self.column(name)
        values = [v for v in column if isinstance(v, (int, float))]
        if not values and any(v is MISSING for v in column):
            return MISSING
        return sum(values) / len(values) if values else 0.0

    @staticmethod
    def _cell(value: object) -> str:
        if value is MISSING:
            return "—"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def format(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        # Widths account for every cell (not just the header) so long
        # benchmark/memory names can't break the grid.
        widths = {
            c: max([len(c), 10]
                   + [len(self._cell(row.get(c, ""))) for row in self.rows])
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(self._cell(row.get(c, "")).ljust(widths[c])
                                   for c in self.columns))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)
