"""Shared machinery for the per-figure experiment modules.

Simulation runs are expensive in pure Python, so results are cached on
disk keyed by (benchmark, memory kind, reads, options). Every figure
module builds on :func:`run_cached` and returns an
:class:`ExperimentTable` that formats itself for the console and for
EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import SimResult, run_benchmark
from repro.telemetry.session import active_session
from repro.workloads.profiles import benchmark_names

DEFAULT_READS = 2000


@dataclass(frozen=True)
class ExperimentConfig:
    """Run-scale knobs, overridable via environment variables."""

    target_dram_reads: int = DEFAULT_READS
    benchmarks: Sequence[str] = ()
    cache_dir: Optional[str] = ".repro_cache"
    seed: int = 42

    def suite(self) -> List[str]:
        return list(self.benchmarks) if self.benchmarks else benchmark_names()

    def sim_config(self, memory: MemoryKind) -> SimConfig:
        return SimConfig(memory=memory, seed=self.seed,
                         target_dram_reads=self.target_dram_reads)


def default_config() -> ExperimentConfig:
    """ExperimentConfig from REPRO_READS / REPRO_BENCHMARKS / REPRO_CACHE."""
    reads = int(os.environ.get("REPRO_READS", DEFAULT_READS))
    benches = tuple(b for b in os.environ.get("REPRO_BENCHMARKS", "").split(",")
                    if b.strip())
    cache = os.environ.get("REPRO_CACHE", ".repro_cache")
    return ExperimentConfig(
        target_dram_reads=reads,
        benchmarks=benches,
        cache_dir=None if cache.lower() == "off" else cache)


class ResultCache:
    """Disk cache of :class:`SimResult` records."""

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """Recall a cached result; any corruption is treated as a miss.

        Truncated files, non-JSON bytes, non-dict payloads, and schema
        drift (unexpected or missing fields) all return None — the
        caller re-runs and :meth:`put` rewrites the entry.
        """
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) or data.get("__key__") != key:
            return None
        data.pop("__key__", None)
        try:
            return SimResult(**data)
        except (TypeError, ValueError):
            return None

    def put(self, key: str, result: SimResult) -> None:
        path = self._path(key)
        if path is None:
            return
        data = dataclasses.asdict(result)
        data["__key__"] = key
        path.write_text(json.dumps(data))


_caches: Dict[str, ResultCache] = {}


def _cache_for(config: ExperimentConfig) -> ResultCache:
    key = config.cache_dir or "__off__"
    if key not in _caches:
        _caches[key] = ResultCache(config.cache_dir)
    return _caches[key]


def run_cached(benchmark: str, memory: MemoryKind,
               config: ExperimentConfig,
               variant: str = "",
               runner: Optional[Callable[[], SimResult]] = None) -> SimResult:
    """Run (or recall) one benchmark on one memory organisation.

    ``variant`` distinguishes non-default setups (e.g. "noprefetch");
    ``runner`` overrides the default run for such variants.
    """
    key = "|".join(["v5", benchmark, memory.value, variant,
                    str(config.target_dram_reads), str(config.seed)])
    cache = _cache_for(config)
    # With an active telemetry session a recalled result would have no
    # metrics or trace spans to contribute, so force a real run (the
    # fresh result still refreshes the cache for later plain runs).
    if active_session() is None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    if runner is not None:
        result = runner()
    else:
        result = run_benchmark(benchmark, config.sim_config(memory))
    cache.put(key, result)
    return result


@dataclass
class ExperimentTable:
    """One regenerated paper artefact."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **kwargs: object) -> None:
        self.rows.append(kwargs)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def mean(self, name: str) -> float:
        values = [v for v in self.column(name) if isinstance(v, (int, float))]
        return sum(values) / len(values) if values else 0.0

    def format(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        widths = {c: max(len(c), 10) for c in self.columns}
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            cells = []
            for c in self.columns:
                v = row.get(c, "")
                if isinstance(v, float):
                    v = f"{v:.3f}"
                cells.append(str(v).ljust(widths[c]))
            lines.append("  ".join(cells))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)
