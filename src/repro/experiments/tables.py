"""Tables 1 and 2: configuration tables, reproduced from the model's
actual parameters (not hard-coded strings) so any drift between the
implementation and the paper is visible.
"""

from __future__ import annotations

from repro.dram.timing import DDR3_TIMING, LPDDR2_TIMING, RLDRAM3_TIMING
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.sim.config import TABLE1


def specs_table_1(config: ExperimentConfig) -> list:
    return []  # configuration dump: no simulation runs to schedule


def specs_table_2(config: ExperimentConfig) -> list:
    return []  # timing-parameter dump: no simulation runs to schedule


def table_1(config: ExperimentConfig = None,
            results: dict = None) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="tab1",
        title="Simulator parameters (paper Table 1)",
        columns=["parameter", "value"])
    for key, value in TABLE1.items():
        table.add(parameter=key, value=value)
    return table


def table_2(config: ExperimentConfig = None,
            results: dict = None) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="tab2",
        title="Timing parameters in ns (paper Table 2)",
        columns=["parameter", "ddr3", "rldram3", "lpddr2"])
    rows = [
        ("tRC", "t_rc"), ("tRCD", "t_rcd"), ("tRL", "t_rl"),
        ("tRP", "t_rp"), ("tRAS", "t_ras"), ("tFAW", "t_faw"),
        ("tWTR", "t_wtr"), ("tWL", "t_wl"),
    ]
    for label, attr in rows:
        table.add(parameter=label,
                  ddr3=getattr(DDR3_TIMING, attr),
                  rldram3=getattr(RLDRAM3_TIMING, attr),
                  lpddr2=getattr(LPDDR2_TIMING, attr))
    table.add(parameter="tRTRS (bus cycles)",
              ddr3=DDR3_TIMING.t_rtrs_bus_cycles,
              rldram3=RLDRAM3_TIMING.t_rtrs_bus_cycles,
              lpddr2=LPDDR2_TIMING.t_rtrs_bus_cycles)
    return table
