"""Figures 10-11 and Section 7.2: energy analysis.

* Fig 10 — system energy of RD / RL / DL normalised to the DDR3
  baseline (paper: RL -6 %, DL -13 %; memory energy -15 % for RL).
* Fig 11 — per-workload scatter of bandwidth utilisation vs RL energy
  savings (paper: savings grow with utilisation).
* Sec 7.2 — the Malladi-style unterminated-LPDRAM variant: recompute RL
  memory power without the server ODT/DLL adders (paper: energy savings
  grow to 26.1 %). The alternate power totals need the live memory
  system, so a named runner packs them into ``SimResult.extra`` — which
  also makes the Sec 7.2 runs cacheable and parallelisable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.energy.model import SystemEnergyModel, memory_power_report
from repro.experiments.executor import resolve_results
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
)
from repro.experiments.specs import RunSpec, register_runner
from repro.sim.system import (
    SimResult,
    SimulationSystem,
    make_traces,
    prewarm_l2,
)
from repro.workloads.profiles import profile_for

CWF_KINDS = ("rd", "rl", "dl")


@register_runner("sec72_power")
def _sec72_runner(spec: RunSpec, config: ExperimentConfig) -> SimResult:
    """RL run that also reports server-adapted vs native LPDRAM power."""
    sim_config = config.sim_config("rl")
    profile = profile_for(spec.benchmark)
    traces = make_traces(profile, sim_config)
    system = SimulationSystem(sim_config, traces, profile=profile)
    prewarm_l2(system, profile)
    result = system.run()
    result.benchmark = spec.benchmark
    adapted = memory_power_report(system.memory, result.elapsed_cycles,
                                  server_adapted_lpdram=True)
    native = memory_power_report(system.memory, result.elapsed_cycles,
                                 server_adapted_lpdram=False)
    result.extra = {"sec72": {"adapted_mw": sum(adapted.values()),
                              "native_mw": sum(native.values())}}
    return result


def sec72_spec(benchmark: str) -> RunSpec:
    return RunSpec(benchmark, "rl", variant="unterminated",
                   runner="sec72_power")


def specs_figure_10(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, kind)
            for bench in config.suite()
            for kind in ("ddr3",) + CWF_KINDS]


def specs_figure_11(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, kind)
            for bench in config.suite()
            for kind in ("ddr3", "rl")]


def specs_section_7_2(config: ExperimentConfig) -> List[RunSpec]:
    specs = []
    for bench in config.suite():
        specs.append(RunSpec(bench, "ddr3"))
        specs.append(sec72_spec(bench))
    return specs


def figure_10(config: ExperimentConfig = None,
              results: Optional[Dict[RunSpec, SimResult]] = None
              ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_10(config), config, results)
    table = ExperimentTable(
        experiment_id="fig10",
        title="System energy normalised to DDR3 baseline",
        columns=["benchmark", "rd", "rl", "dl", "rl_memory_energy"],
        notes="Paper: RL system energy -6%, DL -13%; RL memory energy -15%.")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        model = SystemEnergyModel(base)
        row = {"benchmark": bench}
        for kind in CWF_KINDS:
            result = results[RunSpec(bench, kind)]
            row[kind] = model.report(result).normalized_system_energy
        rl = results[RunSpec(bench, "rl")]
        row["rl_memory_energy"] = model.report(rl).normalized_memory_energy
        table.add(**row)
    table.add(benchmark="MEAN",
              **{c: table.mean(c) for c in ("rd", "rl", "dl",
                                            "rl_memory_energy")})
    return table


def figure_11(config: ExperimentConfig = None,
              results: Optional[Dict[RunSpec, SimResult]] = None
              ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_11(config), config, results)
    table = ExperimentTable(
        experiment_id="fig11",
        title="Bandwidth utilisation vs RL system-energy savings",
        columns=["benchmark", "bus_utilization", "energy_savings"],
        notes="Paper: energy savings generally increase with utilisation "
              "(RLDRAM's power gap shrinks at high activity).")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        rl = results[RunSpec(bench, "rl")]
        model = SystemEnergyModel(base)
        savings = 1.0 - model.report(rl).normalized_system_energy
        table.add(benchmark=bench, bus_utilization=base.bus_utilization,
                  energy_savings=savings)
    return table


def section_7_2(config: ExperimentConfig = None,
                results: Optional[Dict[RunSpec, SimResult]] = None
                ) -> ExperimentTable:
    """Unterminated LPDRAM (Malladi et al. style): no ODT/DLL adders."""
    config = config or default_config()
    results = resolve_results(specs_section_7_2(config), config, results)
    table = ExperimentTable(
        experiment_id="sec72",
        title="RL memory energy with unterminated (native) LPDRAM",
        columns=["benchmark", "server_adapted", "unterminated",
                 "savings_boost"],
        notes="Paper: dropping the ODT/DLL server adaptation boosts energy "
              "savings to 26.1%.")
    for bench in config.suite():
        result = results[sec72_spec(bench)]
        powers = result.extra["sec72"]
        base = results[RunSpec(bench, "ddr3")]
        base_energy = base.memory_power_mw * base.elapsed_cycles
        adapted_sav = 1 - (powers["adapted_mw"]
                           * result.elapsed_cycles) / base_energy
        native_sav = 1 - (powers["native_mw"]
                          * result.elapsed_cycles) / base_energy
        table.add(benchmark=bench, server_adapted=adapted_sav,
                  unterminated=native_sav,
                  savings_boost=native_sav - adapted_sav)
    table.add(benchmark="MEAN",
              server_adapted=table.mean("server_adapted"),
              unterminated=table.mean("unterminated"),
              savings_boost=table.mean("savings_boost"))
    return table
