"""Declarative run specifications for the experiment pipeline.

A :class:`RunSpec` names one simulation — ``(benchmark, memory kind,
variant, config overrides, named runner)`` — without executing it.
Because specs are frozen, hashable, and picklable, the scheduler can

* dedupe runs shared between figures (every figure needs the DDR3
  baseline; it is simulated once per suite invocation),
* key the on-disk result cache, and
* ship work to :class:`~repro.experiments.executor.ParallelExecutor`
  worker processes.

Non-default setups are expressed declaratively rather than with
closures: either as ``overrides`` (``(("prefetcher_enabled", False),)``
applied to the resolved :class:`~repro.sim.config.SimConfig`) or as a
*named runner* — a module-level function registered with
:func:`register_runner` that a worker process can look up by name.

Cache keys (``v8``) embed a digest of the fully resolved ``SimConfig``
so any config-knob change — present or future — invalidates stale
entries instead of silently recalling them. ``v7`` switched the memory
axis from the closed ``MemoryKind`` enum to registry names; ``v8`` did
the same for the workload axis: ``benchmark`` is a canonical
workload-registry name (``mcf``/``synthetic:mcf`` coalesce, and
``trace:<path>`` names recorded replays), and the key carries the
workload's *content token* — a profile-parameter digest for synthetic
sources, the file sha256 for trace files — so editing a trace file or
recalibrating a profile invalidates its cached results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.resilience import active_fault_plan
from repro.memsys.registry import resolve_name
from repro.sim.config import SimConfig
from repro.sim.system import SimResult, run_benchmark
from repro.workloads.registry import resolve_workload, workload_cache_token

CACHE_KEY_VERSION = "v8"

# ---------------------------------------------------------------------------
# Declarative SimConfig overrides (shared with repro.sweep)
# ---------------------------------------------------------------------------


def _with_uncore(config: SimConfig, **updates) -> SimConfig:
    return dataclasses.replace(
        config, uncore=dataclasses.replace(config.uncore, **updates))


def _with_prefetcher(config: SimConfig, **updates) -> SimConfig:
    prefetcher = dataclasses.replace(config.uncore.prefetcher, **updates)
    return _with_uncore(config, prefetcher=prefetcher)


_APPLIERS: Dict[str, Callable[[SimConfig, object], SimConfig]] = {
    "mshr_capacity": lambda c, v: _with_uncore(c, mshr_capacity=int(v)),
    "prefetch_degree": lambda c, v: _with_prefetcher(c, degree=int(v)),
    "prefetch_distance": lambda c, v: _with_prefetcher(c, distance=int(v)),
    "prefetcher_enabled": lambda c, v: _with_prefetcher(c, enabled=bool(v)),
    "rob_size": lambda c, v: dataclasses.replace(
        c, core=dataclasses.replace(c.core, rob_size=int(v))),
    "target_dram_reads": lambda c, v: dataclasses.replace(
        c, target_dram_reads=int(v)),
}

# Controller-level parameters need a custom memory build; they are
# applied by the "sweep_controller_queue" named runner, not here.
_CONTROLLER_PARAMS = {"read_queue_size", "write_queue_size"}


def apply_parameter(config: SimConfig, parameter: str,
                    value: object) -> SimConfig:
    """Return a config with ``parameter`` set to ``value``."""
    if parameter in _CONTROLLER_PARAMS:
        return config  # applied at memory-build time by the named runner
    try:
        return _APPLIERS[parameter](config, value)
    except KeyError:
        raise ValueError(
            f"unknown sweep parameter {parameter!r}; "
            f"known: {sorted(_APPLIERS) + sorted(_CONTROLLER_PARAMS)}"
        ) from None


# ---------------------------------------------------------------------------
# Named runner registry
# ---------------------------------------------------------------------------

RUNNER_REGISTRY: Dict[str, Callable[["RunSpec", object], SimResult]] = {}


def register_runner(name: str):
    """Register a module-level runner so workers can resolve it by name."""

    def decorator(fn: Callable[["RunSpec", object], SimResult]):
        RUNNER_REGISTRY[name] = fn
        return fn

    return decorator


def resolve_runner(name: str) -> Callable[["RunSpec", object], SimResult]:
    if name not in RUNNER_REGISTRY:
        # Runners live in the figure modules (and repro.sweep); importing
        # the packages populates the registry in a fresh worker process.
        import repro.experiments  # noqa: F401
        import repro.sweep  # noqa: F401
    try:
        return RUNNER_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown named runner {name!r}; "
                         f"known: {sorted(RUNNER_REGISTRY)}") from None


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One simulation, described declaratively.

    ``benchmark`` is a workload-registry name and ``memory`` a memory-
    backend registry name; both canonicalise at construction (so
    ``RunSpec("synthetic:mcf", "rl") == RunSpec("mcf", MemoryKind.RL)``
    and both hash alike as dict keys), and an unknown name on either
    axis fails here with a did-you-mean, never in a worker later. ``overrides`` are ``(parameter, value)``
    pairs applied to the resolved :class:`SimConfig` through
    :func:`apply_parameter`; ``runner``/``params`` select a registered
    named runner for setups a config transform cannot express (offline
    profiling passes, live power-model reports). ``base`` carries a
    fully custom :class:`SimConfig` (parameter sweeps) instead of the
    experiment config's default one.
    """

    benchmark: str
    memory: str
    variant: str = ""
    overrides: Tuple[Tuple[str, object], ...] = ()
    runner: str = ""
    params: Tuple[Tuple[str, object], ...] = ()
    base: Optional[SimConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark",
                           resolve_workload(self.benchmark))
        object.__setattr__(self, "memory", resolve_name(self.memory))

    @property
    def label(self) -> str:
        parts = [self.benchmark, self.memory]
        if self.variant:
            parts.append(self.variant)
        return "/".join(parts)

    def param(self, name: str, default: object = None) -> object:
        return dict(self.params).get(name, default)

    def resolved_sim_config(self, config) -> SimConfig:
        """The SimConfig this spec runs with, overrides applied.

        ``config`` is an :class:`~repro.experiments.runner.ExperimentConfig`
        (duck-typed here to keep the import graph acyclic).
        """
        if self.base is not None:
            sim_config = dataclasses.replace(self.base, memory=self.memory)
        else:
            sim_config = config.sim_config(self.memory)
        for parameter, value in self.overrides:
            sim_config = apply_parameter(sim_config, parameter, value)
        return sim_config


def config_digest(sim_config: SimConfig) -> str:
    """Stable short digest of every knob in a :class:`SimConfig`."""
    payload = json.dumps(dataclasses.asdict(sim_config), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def spec_cache_key(spec: RunSpec, config) -> str:
    """Disk-cache key: spec identity + workload content token + full
    resolved-config digest.

    The workload token pins the workload's *contents* (profile
    parameters or trace-file bytes), so a recalibrated profile or an
    edited trace file invalidates its cached results even though the
    spec's name part is unchanged.
    """
    params = json.dumps(spec.params, sort_keys=True, default=str)
    return "|".join([
        CACHE_KEY_VERSION, spec.benchmark, spec.memory, spec.variant,
        spec.runner, params, str(config.target_dram_reads), str(config.seed),
        workload_cache_token(spec.benchmark),
        config_digest(spec.resolved_sim_config(config)),
    ])


def execute_spec(spec: RunSpec, config, attempt: int = 1) -> SimResult:
    """Actually simulate ``spec`` (no caching — the executor handles it).

    ``attempt`` (1-based) is threaded through by the executor so the
    deterministic fault-injection plan (``REPRO_FAULT_PLAN``, see
    :mod:`repro.experiments.resilience`) can target specific retries of
    specific specs — identically in the serial path and in pool
    workers. ``attempt=0`` disables injection: the executor's
    degrade-to-serial last resort uses it so an injected fault cannot
    also take down the parent process.
    """
    plan = active_fault_plan() if attempt >= 1 else None
    if plan is not None:
        plan.before_run(spec.label, attempt)
    if spec.runner:
        result = resolve_runner(spec.runner)(spec, config)
    else:
        sim_config = spec.resolved_sim_config(config)
        directory = (getattr(config, "checkpoint_dir", None)
                     or os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
                     or None)
        if directory:
            # Crash-safe path: snapshot periodically, resume from the
            # last snapshot on a retry. Named runners are excluded —
            # they own their simulation loop — and the result stays
            # byte-identical to a plain run (see repro.sim.checkpoint).
            from repro.sim.checkpoint import run_benchmark_checkpointed
            every = int(getattr(config, "checkpoint_every", 0)) or None
            kill_after = (plan.kill_after_saves(spec.label, attempt)
                          if plan is not None else None)
            result = run_benchmark_checkpointed(
                spec.benchmark, sim_config, spec_cache_key(spec, config),
                directory, every_reads=every, kill_after=kill_after)
        else:
            result = run_benchmark(spec.benchmark, sim_config)
    if plan is not None:
        result = plan.after_run(spec.label, attempt, result)
    return result
