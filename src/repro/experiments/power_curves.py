"""Figure 2: chip power vs data-bus utilisation for the three flavours.

Analytic sweep of the Micron-style power model (no simulation): the
paper's observation is that RLDRAM3 has a high flat background floor
(much higher than DDR3 at low utilisation) while LPDDR2 sits lowest;
at high utilisation the curves converge somewhat.
"""

from __future__ import annotations

from repro.dram.device import DRAMKind
from repro.dram.power import default_power_model
from repro.experiments.runner import ExperimentConfig, ExperimentTable

UTILIZATION_POINTS = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0]


def specs_figure_2(config: ExperimentConfig) -> list:
    return []  # analytic sweep: no simulation runs to schedule


def figure_2(config: ExperimentConfig = None,
             row_hit_rate: float = 0.5,
             results: dict = None) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="fig2",
        title="Chip power (mW) vs bus utilisation",
        columns=["utilization", "ddr3_mw", "rldram3_mw", "lpddr2_mw"],
        notes="Paper: RLDRAM3 floor far above DDR3/LPDDR2; curves converge "
              "at high utilisation.")
    models = {
        "ddr3_mw": (default_power_model(DRAMKind.DDR3), row_hit_rate),
        # RLDRAM3 is close-page: every access activates.
        "rldram3_mw": (default_power_model(DRAMKind.RLDRAM3), 0.0),
        "lpddr2_mw": (default_power_model(DRAMKind.LPDDR2), row_hit_rate),
    }
    for util in UTILIZATION_POINTS:
        row = {"utilization": util}
        for name, (model, hit_rate) in models.items():
            # Idle LPDDR2 spends most time powered down (its fast
            # power-mode transitions are the point of the part).
            pd = 0.0
            if model.kind is DRAMKind.LPDDR2:
                pd = max(0.0, 0.8 - util)
            elif model.kind is DRAMKind.DDR3:
                pd = max(0.0, 0.4 - util * 0.5)
            breakdown = model.power_at_utilization(
                util, row_hit_rate=hit_rate, power_down_fraction=pd)
            row[name] = breakdown.total_mw
        table.add(**row)
    return table
