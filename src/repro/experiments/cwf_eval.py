"""Figures 6-9: the critical-word-first evaluation.

* Fig 6 — throughput of RD / RL / DL normalised to the DDR3 baseline
  (paper: RD +21 %, RL +12.9 %, DL -9 % on average).
* Fig 7 — average critical-word latency per configuration (paper: RD
  -30 %, RL -22 % vs baseline).
* Fig 8 — fraction of critical-word requests served by the fast
  (RLDRAM3) module (paper: 67 % static average).
* Fig 9 — RL vs adaptive (RL AD, +15.7 %), oracle (RL OR, +28 %), and
  the all-RLDRAM3 system (+31 %).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.executor import resolve_results
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
)
from repro.experiments.specs import RunSpec
from repro.sim.system import SimResult

CWF_KINDS = ("rd", "rl", "dl")
FIG9_KINDS = ("rl", "rl_adaptive", "rl_oracle",
              "rldram3")


def specs_figure_6(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, kind)
            for bench in config.suite()
            for kind in ("ddr3",) + CWF_KINDS]


# Fig 7 needs exactly the Fig 6 runs (latency view of the same sims).
specs_figure_7 = specs_figure_6


def specs_figure_8(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, "rl") for bench in config.suite()]


def specs_figure_9(config: ExperimentConfig) -> List[RunSpec]:
    return [RunSpec(bench, kind)
            for bench in config.suite()
            for kind in ("ddr3",) + FIG9_KINDS]


def figure_6(config: ExperimentConfig = None,
             results: Optional[Dict[RunSpec, SimResult]] = None
             ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_6(config), config, results)
    table = ExperimentTable(
        experiment_id="fig6",
        title="CWF throughput normalised to DDR3 baseline",
        columns=["benchmark", "rd", "rl", "dl"],
        notes="Paper averages: RD 1.21, RL 1.129, DL 0.91.")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        row = {"benchmark": bench}
        for kind in CWF_KINDS:
            row[kind] = results[RunSpec(bench, kind)].speedup_over(base)
        table.add(**row)
    table.add(benchmark="MEAN", rd=table.mean("rd"), rl=table.mean("rl"),
              dl=table.mean("dl"))
    return table


def figure_7(config: ExperimentConfig = None,
             results: Optional[Dict[RunSpec, SimResult]] = None
             ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_7(config), config, results)
    table = ExperimentTable(
        experiment_id="fig7",
        title="Average critical-word latency (CPU cycles)",
        columns=["benchmark", "ddr3", "rd", "rl", "dl"],
        notes="Paper: critical-word latency reductions of 30% (RD) and "
              "22% (RL) vs the DDR3 baseline.")
    for bench in config.suite():
        row = {"benchmark": bench}
        row["ddr3"] = results[
            RunSpec(bench, "ddr3")].avg_critical_latency
        for kind in CWF_KINDS:
            row[kind] = results[
                RunSpec(bench, kind)].avg_critical_latency
        table.add(**row)
    table.add(benchmark="MEAN",
              **{c: table.mean(c) for c in ("ddr3", "rd", "rl", "dl")})
    return table


def figure_8(config: ExperimentConfig = None,
             results: Optional[Dict[RunSpec, SimResult]] = None
             ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_8(config), config, results)
    table = ExperimentTable(
        experiment_id="fig8",
        title="Critical word requests served by the fast module (RL)",
        columns=["benchmark", "fast_fraction", "word0_fraction"],
        notes="Paper: word-0 placement serves 67% of critical words on "
              "average (static).")
    for bench in config.suite():
        rl = results[RunSpec(bench, "rl")]
        table.add(benchmark=bench, fast_fraction=rl.fast_service_fraction,
                  word0_fraction=rl.word0_fraction)
    table.add(benchmark="MEAN", fast_fraction=table.mean("fast_fraction"),
              word0_fraction=table.mean("word0_fraction"))
    return table


def figure_9(config: ExperimentConfig = None,
             results: Optional[Dict[RunSpec, SimResult]] = None
             ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_figure_9(config), config, results)
    table = ExperimentTable(
        experiment_id="fig9",
        title="RL variants vs baseline: static / adaptive / oracle / all-RLDRAM3",
        columns=["benchmark", "rl", "rl_ad", "rl_or", "rldram3"],
        notes="Paper averages: RL 1.129, RL AD 1.157, RL OR 1.28, "
              "all-RLDRAM3 1.31.")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        table.add(
            benchmark=bench,
            rl=results[RunSpec(bench, "rl")].speedup_over(base),
            rl_ad=results[
                RunSpec(bench, "rl_adaptive")].speedup_over(base),
            rl_or=results[
                RunSpec(bench, "rl_oracle")].speedup_over(base),
            rldram3=results[
                RunSpec(bench, "rldram3")].speedup_over(base),
        )
    table.add(benchmark="MEAN",
              **{c: table.mean(c) for c in ("rl", "rl_ad", "rl_or", "rldram3")})
    return table
