"""Section 7.1: comparison to page-placement heterogeneous memory.

An offline profile places the hottest 7.6 % of pages in a 0.5 GB
RLDRAM3 channel; the other three channels carry LPDDR2. The paper
reports wide variance (-9.3 % to +11.2 %) with an average of about
+8 %, below the CWF schemes, because the hottest pages capture at most
~30 % of accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.executor import resolve_results
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
)
from repro.experiments.specs import RunSpec
from repro.sim.system import SimResult


def specs_section_7_1(config: ExperimentConfig) -> List[RunSpec]:
    # PAGE_PLACEMENT runs like any other kind: run_benchmark hands the
    # benchmark profile to build_memory, which performs the offline
    # page-heat profiling pass before the measured run.
    return [RunSpec(bench, kind)
            for bench in config.suite()
            for kind in ("ddr3", "rl",
                         "page_placement")]


def section_7_1(config: ExperimentConfig = None,
                results: Optional[Dict[RunSpec, SimResult]] = None
                ) -> ExperimentTable:
    config = config or default_config()
    results = resolve_results(specs_section_7_1(config), config, results)
    table = ExperimentTable(
        experiment_id="sec71",
        title="Page placement (hot 7.6% of pages in RLDRAM3) vs CWF RL",
        columns=["benchmark", "page_placement", "rl", "fast_fraction"],
        notes="Paper: page placement varies from -9.3% to +11.2% "
              "(avg ~+8%), below the CWF schemes.")
    for bench in config.suite():
        base = results[RunSpec(bench, "ddr3")]
        rl = results[RunSpec(bench, "rl")]
        pp = results[RunSpec(bench, "page_placement")]
        table.add(benchmark=bench,
                  page_placement=pp.speedup_over(base),
                  rl=rl.speedup_over(base),
                  fast_fraction=pp.fast_service_fraction)
    table.add(benchmark="MEAN",
              page_placement=table.mean("page_placement"),
              rl=table.mean("rl"),
              fast_fraction=table.mean("fast_fraction"))
    return table
