"""Section 7.1: comparison to page-placement heterogeneous memory.

An offline profile places the hottest 7.6 % of pages in a 0.5 GB
RLDRAM3 channel; the other three channels carry LPDDR2. The paper
reports wide variance (-9.3 % to +11.2 %) with an average of about
+8 %, below the CWF schemes, because the hottest pages capture at most
~30 % of accesses.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    default_config,
    run_cached,
)
from repro.sim.config import MemoryKind
from repro.sim.system import SimResult, run_benchmark


def _run_page_placement(benchmark: str, config: ExperimentConfig) -> SimResult:
    # run_benchmark passes the generated traces to build_memory, which
    # performs the offline page-heat profiling pass.
    return run_benchmark(benchmark,
                         config.sim_config(MemoryKind.PAGE_PLACEMENT))


def section_7_1(config: ExperimentConfig = None) -> ExperimentTable:
    config = config or default_config()
    table = ExperimentTable(
        experiment_id="sec71",
        title="Page placement (hot 7.6% of pages in RLDRAM3) vs CWF RL",
        columns=["benchmark", "page_placement", "rl", "fast_fraction"],
        notes="Paper: page placement varies from -9.3% to +11.2% "
              "(avg ~+8%), below the CWF schemes.")
    for bench in config.suite():
        base = run_cached(bench, MemoryKind.DDR3, config)
        rl = run_cached(bench, MemoryKind.RL, config)
        pp = run_cached(bench, MemoryKind.PAGE_PLACEMENT, config,
                        runner=lambda b=bench: _run_page_placement(b, config))
        table.add(benchmark=bench,
                  page_placement=pp.speedup_over(base),
                  rl=rl.speedup_over(base),
                  fast_fraction=pp.fast_service_fraction)
    table.add(benchmark="MEAN",
              page_placement=table.mean("page_placement"),
              rl=table.mean("rl"),
              fast_fraction=table.mean("fast_fraction"))
    return table
