"""Parallel scheduler for :class:`~repro.experiments.specs.RunSpec` lists.

The figure modules declare *what* to simulate; this module decides
*how*: recall from the disk cache, run in-process (``jobs=1``, fully
deterministic, the default), or fan out over a
``concurrent.futures.ProcessPoolExecutor``. The worker count comes from
an explicit ``jobs`` argument, ``ExperimentConfig.jobs``, or the
``REPRO_JOBS`` environment variable; ``0``/negative means "one worker
per CPU". Parallel and serial execution produce byte-identical tables
for the same seed — results are keyed by spec, so completion order
never leaks into table order, and every simulation is deterministic
given its config.

Failure handling (see :mod:`repro.experiments.resilience`): every
attempt that crashes, times out, breaks the pool, or returns a corrupt
result is classified and retried under the executor's
:class:`~repro.experiments.resilience.RetryPolicy` (bounded retries,
exponential backoff with deterministic jitter). A ``BrokenProcessPool``
no longer aborts the suite — the pool is respawned and in-flight specs
resubmitted; a spec past its per-spec timeout tears the (uncancellable)
pool down, charges only the overdue spec an attempt, and resubmits the
collateral in-flight specs for free. Exhausted specs can optionally
degrade to one in-process serial run as a last resort; with
``keep_going`` a still-failing spec is recorded as a
:class:`~repro.experiments.resilience.FailedRun` sentinel (its table
cells render as ``—``) instead of raising
:class:`~repro.experiments.resilience.SuiteError`. ``Ctrl-C`` cancels
outstanding futures and terminates workers instead of stranding them.

Workers return picklable :class:`~repro.sim.system.SimResult` records
plus their telemetry (run summaries, trace events, and counters), which
the parent merges into the active
:class:`~repro.telemetry.session.TelemetrySession`. Workers also write
their results straight into the shared
:class:`~repro.experiments.runner.ResultCache` (safe for concurrent
writers) so a crashed suite still persists completed runs — re-running
the same suite resumes from those entries.

Long-lived callers (the ``repro serve`` job server, notebooks) can
construct the executor with ``persistent=True``: the process pool then
survives across :meth:`ParallelExecutor.run` calls — submissions after
the first skip pool spin-up entirely — and :meth:`run` accepts a
per-call ``config`` so one pool serves jobs with different run scales.
Call :meth:`ParallelExecutor.shutdown` (or use the executor as a
context manager) to release the workers. The worker count is resolved
once at construction; assigning :attr:`ParallelExecutor.jobs` while
the pool is live raises instead of being silently ignored.
"""

from __future__ import annotations

import concurrent.futures
import os
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.resilience import (
    BROKEN_POOL,
    CORRUPT_RESULT,
    TIMEOUT,
    FailedRun,
    RetryPolicy,
    SuiteError,
    classify_failure,
    is_valid_result,
)
from repro.experiments.specs import RunSpec, execute_spec, spec_cache_key
from repro.sim.system import SimResult
from repro.telemetry.session import (
    TelemetrySession,
    activate,
    active_session,
    deactivate,
)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else 1 (serial)."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {env!r}; "
                "use N for N workers, 0 for one per CPU, or unset it for "
                "the default (1, serial)") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _worker_execute(spec: RunSpec, config, telemetry_opts: Optional[dict],
                    attempt: int = 1):
    """Process-pool entry point: run one spec, return picklable results.

    Imports inside the function make sure a fresh worker registers the
    named runners before resolving them, and each worker gets its own
    telemetry session (the parent merges the returned records).
    ``attempt`` feeds the deterministic fault-injection plan.
    """
    import repro.experiments  # noqa: F401  (populate the runner registry)
    from repro.experiments.runner import ResultCache

    session = None
    if telemetry_opts is not None:
        session = activate(TelemetrySession(**telemetry_opts))
    try:
        result = execute_spec(spec, config, attempt=attempt)
    finally:
        if session is not None:
            deactivate()
    if is_valid_result(result):
        ResultCache(config.cache_dir,
                    budget_bytes=getattr(config, "cache_budget_bytes", None)
                    ).put(spec_cache_key(spec, config), result)
    runs: List[dict] = session.runs if session is not None else []
    trace_events: List[dict] = []
    if session is not None:
        for tracer in session._tracers:
            trace_events.extend(tracer.events)
    counters: Dict[str, int] = dict(session.counters) if session else {}
    return result, runs, trace_events, counters


class ParallelExecutor:
    """Runs a deduped spec list, returning ``{spec: SimResult}``.

    ``progress=True`` emits one stderr line per completed spec (label,
    wall time, cached/ran/failed); the same records accumulate in
    :attr:`timings` for ``--timings-json`` artifacts. Resilience knobs
    default from the config (``retries``/``timeout_s``/``keep_going``/
    ``degrade_serial`` fields) but can be overridden per executor; the
    :attr:`failures` list collects every
    :class:`~repro.experiments.resilience.FailedRun` recorded under
    ``keep_going`` for the failure appendix.
    """

    def __init__(self, config, jobs: Optional[int] = None,
                 progress: bool = False,
                 policy: Optional[RetryPolicy] = None,
                 keep_going: Optional[bool] = None,
                 degrade_serial: Optional[bool] = None,
                 persistent: bool = False) -> None:
        from repro.experiments.runner import ResultCache

        self.config = config
        # Resolved exactly once, at construction: a live pool is sized
        # from this, so later REPRO_JOBS changes never apply silently.
        self._jobs = resolve_jobs(
            jobs if jobs is not None else getattr(config, "jobs", None))
        self.persistent = persistent
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self.progress = progress
        self.cache = ResultCache(
            config.cache_dir,
            budget_bytes=getattr(config, "cache_budget_bytes", None))
        self.timings: List[dict] = []
        self.policy = policy if policy is not None else RetryPolicy(
            max_retries=getattr(config, "retries", 0) or 0,
            timeout_s=getattr(config, "timeout_s", None))
        self.keep_going = (keep_going if keep_going is not None
                           else bool(getattr(config, "keep_going", False)))
        self.degrade_serial = (
            degrade_serial if degrade_serial is not None
            else bool(getattr(config, "degrade_serial", False)))
        self.failures: List[FailedRun] = []
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Worker-count property: reconfiguring a live pool is an error
    # ------------------------------------------------------------------

    @property
    def jobs(self) -> int:
        return self._jobs

    @jobs.setter
    def jobs(self, value: Optional[int]) -> None:
        if self._pool is not None:
            raise RuntimeError(
                "cannot reconfigure jobs on a live worker pool: the pool "
                f"was spawned with {self._jobs} worker(s); call shutdown() "
                "first, then set jobs (or construct a new executor)")
        self._jobs = resolve_jobs(value)

    # ------------------------------------------------------------------
    # Persistent-pool lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        self._teardown(kill=False)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _teardown(self, kill: bool) -> None:
        if self._pool is None:
            return
        if kill:
            # ProcessPoolExecutor cannot cancel a *running* future;
            # terminating the workers is the only way to reclaim a
            # hung or obsolete pool promptly.
            for proc in list((getattr(self._pool, "_processes", None)
                              or {}).values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError) as exc:
                    # A worker we cannot terminate may outlive the
                    # suite — say so instead of swallowing the error.
                    self._count("resilience.terminate_errors")
                    print(f"[executor] could not terminate worker "
                          f"{getattr(proc, 'pid', '?')}: {exc}",
                          file=sys.stderr)
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._pool = None

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec],
            config=None) -> Dict[RunSpec, SimResult]:
        """Resolve ``specs``, recalling from cache and running the rest.

        ``config`` overrides the constructor's
        :class:`~repro.experiments.runner.ExperimentConfig` for this
        call only (persistent-pool callers submit jobs with different
        run scales through one pool); cache entries always live under
        the constructor config's cache directory.
        """
        config = config if config is not None else self.config
        ordered = list(dict.fromkeys(specs))  # dedupe, keep declared order
        session = active_session()
        results: Dict[RunSpec, SimResult] = {}
        pending: List[RunSpec] = []
        for spec in ordered:
            # A recalled result has no telemetry to contribute, so an
            # active session forces real runs (same rule as run_cached).
            cached = (self.cache.get(spec_cache_key(spec, config))
                      if session is None else None)
            if cached is not None:
                results[spec] = cached
                self._record(spec, 0.0, cached=True)
            else:
                pending.append(spec)
        if not pending:
            return results
        if self._jobs == 1:
            self._run_serial(pending, results, config)
        else:
            self._run_parallel(pending, results, session, config)
        return results

    # ------------------------------------------------------------------

    def _run_serial(self, pending: Sequence[RunSpec],
                    results: Dict[RunSpec, SimResult],
                    config) -> None:
        """Deterministic in-process execution (``jobs=1``).

        Runs under the parent's telemetry session, exactly like the
        pre-pipeline harness did. Retries and failure classification
        apply as in the parallel path; per-spec timeouts do *not* — a
        running in-process simulation cannot be interrupted, so
        deadline enforcement needs ``jobs >= 2``.
        """
        queue = [(spec, 1) for spec in pending]
        while queue:
            spec, attempt = queue.pop(0)
            if attempt > 1:
                time.sleep(self.policy.backoff_s(attempt - 1, spec.label))
            start = time.perf_counter()
            error: Optional[BaseException] = None
            kind = ""
            try:
                result = execute_spec(spec, config, attempt=attempt)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                error, kind = exc, classify_failure(exc)
            else:
                if is_valid_result(result):
                    self.cache.put(spec_cache_key(spec, config), result)
                    results[spec] = result
                    self._record(spec, time.perf_counter() - start,
                                 cached=False, attempt=attempt)
                    continue
                error = TypeError(
                    f"runner returned {type(result).__name__}, "
                    "not SimResult")
                kind = CORRUPT_RESULT
            retry = self._register_failure(
                spec, kind, attempt, error,
                time.perf_counter() - start, results, config)
            if retry:
                queue.append((spec, attempt + 1))

    # ------------------------------------------------------------------

    def _run_parallel(self, pending: Sequence[RunSpec],
                      results: Dict[RunSpec, SimResult],
                      session: Optional[TelemetrySession],
                      config) -> None:
        telemetry_opts = None
        if session is not None:
            telemetry_opts = {
                "trace_enabled": session.trace_enabled,
                "cpu_freq_ghz": session.cpu_freq_ghz,
                "sample_interval": session.sample_interval,
            }
        attempts: Dict[RunSpec, int] = {spec: 0 for spec in pending}
        queue: List[RunSpec] = list(pending)
        futures: Dict[concurrent.futures.Future, tuple] = {}

        def requeue_collateral() -> None:
            """Resubmit in-flight specs a teardown aborted, for free."""
            for future, (spec, _start, _deadline) in futures.items():
                attempts[spec] -= 1  # this attempt never really ran
                queue.append(spec)
            futures.clear()

        try:
            while queue or futures:
                if self._pool is None:
                    # A persistent pool is sized for the full worker
                    # count so later (possibly larger) submissions are
                    # not capped by the first batch's size.
                    width = (self._jobs if self.persistent
                             else min(self._jobs,
                                      max(1, len(queue) + len(futures))))
                    self._pool = concurrent.futures.ProcessPoolExecutor(
                        max_workers=width)
                while queue:
                    spec = queue.pop(0)
                    attempts[spec] += 1
                    if attempts[spec] > 1:
                        time.sleep(self.policy.backoff_s(
                            attempts[spec] - 1, spec.label))
                    future = self._pool.submit(_worker_execute, spec, config,
                                               telemetry_opts, attempts[spec])
                    deadline = (time.monotonic() + self.policy.timeout_s
                                if self.policy.timeout_s else None)
                    futures[future] = (spec, time.perf_counter(), deadline)
                wait_s = None
                if self.policy.timeout_s is not None:
                    now = time.monotonic()
                    wait_s = max(0.05, min(
                        d for (_, _, d) in futures.values()) - now)
                done, _ = concurrent.futures.wait(
                    futures, timeout=wait_s,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                broken = False
                for future in done:
                    spec, start, _deadline = futures.pop(future)
                    elapsed = time.perf_counter() - start
                    try:
                        payload = future.result()
                    except concurrent.futures.CancelledError:
                        attempts[spec] -= 1
                        queue.append(spec)
                        continue
                    except Exception as exc:
                        kind = classify_failure(exc)
                        broken = broken or kind == BROKEN_POOL
                        if self._register_failure(spec, kind, attempts[spec],
                                                  exc, elapsed, results,
                                                  config):
                            queue.append(spec)
                        continue
                    result = payload[0]
                    if not is_valid_result(result):
                        error = TypeError(
                            f"worker returned {type(result).__name__}, "
                            "not SimResult")
                        if self._register_failure(spec, CORRUPT_RESULT,
                                                  attempts[spec], error,
                                                  elapsed, results, config):
                            queue.append(spec)
                        continue
                    _result, runs, trace_events, counters = payload
                    results[spec] = result
                    if session is not None:
                        session.ingest(runs, trace_events, counters)
                    self._record(spec, elapsed, cached=False,
                                 attempt=attempts[spec])
                if broken:
                    # Every other future on a broken pool is doomed too:
                    # charge nobody, resubmit on a fresh pool.
                    requeue_collateral()
                    self._teardown(kill=True)
                    continue
                if self.policy.timeout_s is not None and futures:
                    now = time.monotonic()
                    overdue = [f for f, (_, _, d) in futures.items()
                               if d is not None and now >= d]
                    if overdue:
                        for future in overdue:
                            spec, start, _deadline = futures.pop(future)
                            error: BaseException = TimeoutError(
                                f"exceeded per-spec timeout of "
                                f"{self.policy.timeout_s:g}s")
                            if self._register_failure(
                                    spec, TIMEOUT, attempts[spec], error,
                                    time.perf_counter() - start, results,
                                    config):
                                queue.append(spec)
                        # A running future cannot be cancelled: tear the
                        # pool down (killing the hung worker) and rerun
                        # the innocent in-flight specs at no retry cost.
                        requeue_collateral()
                        self._teardown(kill=True)
        except KeyboardInterrupt:
            # Ctrl-C: drop queued work, cancel what we can, terminate
            # workers so no orphan processes outlive the suite.
            for future in futures:
                future.cancel()
            self._teardown(kill=True)
            raise
        except Exception:
            for future in futures:
                future.cancel()
            self._teardown(kill=True)
            raise
        finally:
            if not self.persistent:
                self._teardown(kill=False)

    # ------------------------------------------------------------------
    # Failure bookkeeping
    # ------------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        session = active_session()
        if session is not None:
            session.incr(name, n)

    def _register_failure(self, spec: RunSpec, kind: str, attempt: int,
                          error: BaseException, seconds: float,
                          results: Dict[RunSpec, SimResult],
                          config=None) -> bool:
        """Classify one failed attempt; True means "retry it".

        When the retry budget is exhausted the spec either degrades to
        one in-process serial run (``degrade_serial``), is recorded as
        a :class:`FailedRun` (``keep_going``), or raises
        :class:`SuiteError` (fail-fast, the default).
        """
        self._count(f"resilience.failures.{kind}")
        self._record(spec, seconds, cached=False, attempt=attempt,
                     status=kind)
        if attempt < self.policy.attempts_allowed:
            self._count("resilience.retries")
            return True
        if (self.degrade_serial and kind != TIMEOUT
                and self._attempt_degraded(spec, results, config)):
            return False
        failed = FailedRun(
            benchmark=spec.benchmark, memory=spec.memory,
            variant=spec.variant, kind=kind, attempts=attempt,
            error=f"{type(error).__name__}: {error}")
        if not self.keep_going:
            raise SuiteError(failed)
        self._count("resilience.failed_runs")
        results[spec] = failed
        self.failures.append(failed)
        return False

    def _attempt_degraded(self, spec: RunSpec,
                          results: Dict[RunSpec, SimResult],
                          config=None) -> bool:
        """Last resort: one in-process serial run, fault hook disabled.

        Rescues specs whose failures are environmental (pool breakage,
        worker OOM); a timeout never degrades — a hang would block the
        parent with no deadline to save it.
        """
        config = config if config is not None else self.config
        start = time.perf_counter()
        try:
            result = execute_spec(spec, config, attempt=0)
        except Exception as exc:
            # The degraded path is the last line of defence; its own
            # failure must be visible in counters and on stderr, not
            # silently folded into the original failure's record.
            self._count("resilience.degraded_failures")
            print(f"[executor] degraded serial run for {spec.label} "
                  f"failed too: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
            return False
        if not is_valid_result(result):
            return False
        self.cache.put(spec_cache_key(spec, config), result)
        results[spec] = result
        self._count("resilience.degraded_runs")
        self._record(spec, time.perf_counter() - start, cached=False,
                     status="degraded")
        return True

    # ------------------------------------------------------------------

    def _record(self, spec: RunSpec, seconds: float, cached: bool,
                attempt: int = 1, status: str = "ok") -> None:
        self.timings.append({
            "benchmark": spec.benchmark,
            "memory": spec.memory,
            "variant": spec.variant,
            "runner": spec.runner,
            "seconds": round(seconds, 3),
            "cached": cached,
            "attempt": attempt,
            "status": status,
        })
        if self.progress:
            done = len(self.timings)
            if cached:
                detail = "cached"
            elif status == "ok":
                detail = f"{seconds:.1f}s"
            else:
                detail = f"{status} (attempt {attempt}) {seconds:.1f}s"
            print(f"[repro {done:>3}] {spec.label} {detail}",
                  file=sys.stderr, flush=True)


def run_specs(specs: Sequence[RunSpec], config,
              jobs: Optional[int] = None,
              progress: bool = False) -> Dict[RunSpec, SimResult]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(config, jobs=jobs, progress=progress).run(specs)


def resolve_results(specs: Iterable[RunSpec], config,
                    results: Optional[Dict[RunSpec, SimResult]] = None,
                    jobs: Optional[int] = None) -> Dict[RunSpec, SimResult]:
    """Return a map covering ``specs``, running whatever is missing.

    Figure functions call this so they work standalone (compute their
    own specs) *and* under a suite scheduler that pre-ran the union of
    all figures' specs and passes the shared ``results`` map in.
    A :class:`FailedRun` sentinel counts as covered — a failed spec is
    not silently re-run by every figure that references it.
    """
    have = {} if results is None else dict(results)
    missing = [spec for spec in dict.fromkeys(specs) if spec not in have]
    if missing:
        have.update(run_specs(missing, config, jobs=jobs))
    return have
