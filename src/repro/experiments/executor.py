"""Parallel scheduler for :class:`~repro.experiments.specs.RunSpec` lists.

The figure modules declare *what* to simulate; this module decides
*how*: recall from the disk cache, run in-process (``jobs=1``, fully
deterministic, the default), or fan out over a
``concurrent.futures.ProcessPoolExecutor``. The worker count comes from
an explicit ``jobs`` argument, ``ExperimentConfig.jobs``, or the
``REPRO_JOBS`` environment variable; ``0``/negative means "one worker
per CPU". Parallel and serial execution produce byte-identical tables
for the same seed — results are keyed by spec, so completion order
never leaks into table order, and every simulation is deterministic
given its config.

Workers return picklable :class:`~repro.sim.system.SimResult` records
plus their telemetry (run summaries and trace events), which the parent
merges into the active :class:`~repro.telemetry.session.TelemetrySession`.
Workers also write their results straight into the shared
:class:`~repro.experiments.runner.ResultCache` (safe for concurrent
writers) so a crashed suite still persists completed runs.
"""

from __future__ import annotations

import concurrent.futures
import os
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.specs import RunSpec, execute_spec, spec_cache_key
from repro.sim.system import SimResult
from repro.telemetry.session import (
    TelemetrySession,
    activate,
    active_session,
    deactivate,
)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else 1 (serial)."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = int(env)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _worker_execute(spec: RunSpec, config, telemetry_opts: Optional[dict]):
    """Process-pool entry point: run one spec, return picklable results.

    Imports inside the function make sure a fresh worker registers the
    named runners before resolving them, and each worker gets its own
    telemetry session (the parent merges the returned records).
    """
    import repro.experiments  # noqa: F401  (populate the runner registry)
    from repro.experiments.runner import ResultCache

    session = None
    if telemetry_opts is not None:
        session = activate(TelemetrySession(**telemetry_opts))
    try:
        result = execute_spec(spec, config)
    finally:
        if session is not None:
            deactivate()
    ResultCache(config.cache_dir).put(spec_cache_key(spec, config), result)
    runs: List[dict] = session.runs if session is not None else []
    trace_events: List[dict] = []
    if session is not None:
        for tracer in session._tracers:
            trace_events.extend(tracer.events)
    return result, runs, trace_events


class ParallelExecutor:
    """Runs a deduped spec list, returning ``{spec: SimResult}``.

    ``progress=True`` emits one stderr line per completed spec (label,
    wall time, cached/ran); the same records accumulate in
    :attr:`timings` for ``--timings-json`` artifacts.
    """

    def __init__(self, config, jobs: Optional[int] = None,
                 progress: bool = False) -> None:
        from repro.experiments.runner import ResultCache

        self.config = config
        self.jobs = resolve_jobs(
            jobs if jobs is not None else getattr(config, "jobs", None))
        self.progress = progress
        self.cache = ResultCache(config.cache_dir)
        self.timings: List[dict] = []

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> Dict[RunSpec, SimResult]:
        ordered = list(dict.fromkeys(specs))  # dedupe, keep declared order
        session = active_session()
        results: Dict[RunSpec, SimResult] = {}
        pending: List[RunSpec] = []
        for spec in ordered:
            # A recalled result has no telemetry to contribute, so an
            # active session forces real runs (same rule as run_cached).
            cached = (self.cache.get(spec_cache_key(spec, self.config))
                      if session is None else None)
            if cached is not None:
                results[spec] = cached
                self._record(spec, 0.0, cached=True)
            else:
                pending.append(spec)
        if not pending:
            return results
        if self.jobs == 1:
            self._run_serial(pending, results)
        else:
            self._run_parallel(pending, results, session)
        return results

    # ------------------------------------------------------------------

    def _run_serial(self, pending: Sequence[RunSpec],
                    results: Dict[RunSpec, SimResult]) -> None:
        """Deterministic in-process execution (``jobs=1``).

        Runs under the parent's telemetry session, exactly like the
        pre-pipeline harness did.
        """
        for spec in pending:
            start = time.perf_counter()
            result = execute_spec(spec, self.config)
            self.cache.put(spec_cache_key(spec, self.config), result)
            results[spec] = result
            self._record(spec, time.perf_counter() - start, cached=False)

    def _run_parallel(self, pending: Sequence[RunSpec],
                      results: Dict[RunSpec, SimResult],
                      session: Optional[TelemetrySession]) -> None:
        telemetry_opts = None
        if session is not None:
            telemetry_opts = {
                "trace_enabled": session.trace_enabled,
                "cpu_freq_ghz": session.cpu_freq_ghz,
                "sample_interval": session.sample_interval,
            }
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending))) as pool:
            futures = {
                pool.submit(_worker_execute, spec, self.config,
                            telemetry_opts): (spec, time.perf_counter())
                for spec in pending
            }
            for future in concurrent.futures.as_completed(futures):
                spec, start = futures[future]
                result, runs, trace_events = future.result()
                results[spec] = result
                if session is not None:
                    session.ingest(runs, trace_events)
                self._record(spec, time.perf_counter() - start, cached=False)

    # ------------------------------------------------------------------

    def _record(self, spec: RunSpec, seconds: float, cached: bool) -> None:
        self.timings.append({
            "benchmark": spec.benchmark,
            "memory": spec.memory,
            "variant": spec.variant,
            "runner": spec.runner,
            "seconds": round(seconds, 3),
            "cached": cached,
        })
        if self.progress:
            done = len(self.timings)
            status = "cached" if cached else f"{seconds:.1f}s"
            print(f"[repro {done:>3}] {spec.label} {status}",
                  file=sys.stderr, flush=True)


def run_specs(specs: Sequence[RunSpec], config,
              jobs: Optional[int] = None,
              progress: bool = False) -> Dict[RunSpec, SimResult]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(config, jobs=jobs, progress=progress).run(specs)


def resolve_results(specs: Iterable[RunSpec], config,
                    results: Optional[Dict[RunSpec, SimResult]] = None,
                    jobs: Optional[int] = None) -> Dict[RunSpec, SimResult]:
    """Return a map covering ``specs``, running whatever is missing.

    Figure functions call this so they work standalone (compute their
    own specs) *and* under a suite scheduler that pre-ran the union of
    all figures' specs and passes the shared ``results`` map in.
    """
    have = {} if results is None else dict(results)
    missing = [spec for spec in dict.fromkeys(specs) if spec not in have]
    if missing:
        have.update(run_specs(missing, config, jobs=jobs))
    return have
