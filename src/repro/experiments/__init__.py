"""Experiment harness: one module per table/figure of the paper.

Every experiment returns an :class:`~repro.experiments.runner.ExperimentTable`
whose rows regenerate the corresponding paper artefact. Simulation
results are cached on disk (keyed by benchmark, memory kind, and run
parameters) so figures that share runs — e.g. Fig 6/7/8 — simulate once.

Environment knobs:

* ``REPRO_READS`` — target demand fetches per run (default 2000; the
  paper uses 2M — scale up for tighter numbers).
* ``REPRO_BENCHMARKS`` — comma-separated subset of the suite.
* ``REPRO_CACHE`` — cache directory (default ``.repro_cache``), or
  ``off`` to disable.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    ResultCache,
    default_config,
    run_cached,
)
from repro.experiments import (  # noqa: F401  (registry import)
    homogeneous,
    power_curves,
    criticality,
    cwf_eval,
    energy_eval,
    controls,
    page_placement,
    tables,
)

ALL_EXPERIMENTS = {
    "fig1a": homogeneous.figure_1a,
    "fig1b": homogeneous.figure_1b,
    "fig2": power_curves.figure_2,
    "fig3": criticality.figure_3,
    "fig4": criticality.figure_4,
    "fig6": cwf_eval.figure_6,
    "fig7": cwf_eval.figure_7,
    "fig8": cwf_eval.figure_8,
    "fig9": cwf_eval.figure_9,
    "fig10": energy_eval.figure_10,
    "fig11": energy_eval.figure_11,
    "tab1": tables.table_1,
    "tab2": tables.table_2,
    "sec611_random": controls.random_mapping,
    "sec611_noprefetch": controls.no_prefetcher,
    "sec71": page_placement.section_7_1,
    "sec72": energy_eval.section_7_2,
}

__all__ = ["ExperimentConfig", "ExperimentTable", "ResultCache",
           "default_config", "run_cached", "ALL_EXPERIMENTS"]
