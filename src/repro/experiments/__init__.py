"""Experiment harness: one module per table/figure of the paper.

Every experiment returns an :class:`~repro.experiments.runner.ExperimentTable`
whose rows regenerate the corresponding paper artefact. Each figure
module declares its simulations as a list of
:class:`~repro.experiments.specs.RunSpec` (see ``EXPERIMENT_SPECS``);
the :mod:`~repro.experiments.executor` schedules the deduped union —
serially or over a process pool — and results are cached on disk
(keyed by spec plus a digest of the full simulation config), so
figures that share runs — e.g. Fig 6/7/8 — simulate once.

Environment knobs:

* ``REPRO_READS`` — target demand fetches per run (default 2000; the
  paper uses 2M — scale up for tighter numbers).
* ``REPRO_BENCHMARKS`` — comma-separated subset of the suite.
* ``REPRO_CACHE`` — cache directory (default ``.repro_cache``), or
  ``off`` to disable.
* ``REPRO_JOBS`` — parallel worker processes (default 1 = serial
  in-process; 0 = one per CPU). Parallel and serial runs emit
  byte-identical tables for the same seed.
* ``REPRO_RETRIES`` / ``REPRO_TIMEOUT`` / ``REPRO_KEEP_GOING`` —
  failure handling: retries per failed spec, per-spec wall-clock
  timeout in seconds (parallel mode), and whether exhausted specs
  become ``—`` cells instead of aborting the suite (see
  :mod:`repro.experiments.resilience`).
* ``REPRO_FAULT_PLAN`` — deterministic fault injection for testing
  the above (``"mcf/ddr3=crash;mcf/rldram3=hang:*:20"``).
"""

from repro.experiments.executor import (
    ParallelExecutor,
    resolve_jobs,
    resolve_results,
    run_specs,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    ResultCache,
    default_config,
    run_cached,
)
from repro.experiments.resilience import (
    MISSING,
    FailedRun,
    FaultPlan,
    RetryPolicy,
    SuiteError,
    failure_appendix,
)
from repro.experiments.specs import (
    RunSpec,
    execute_spec,
    register_runner,
    spec_cache_key,
)
from repro.experiments import (  # noqa: F401  (registry import)
    homogeneous,
    power_curves,
    criticality,
    cwf_eval,
    energy_eval,
    controls,
    page_placement,
    tables,
)

ALL_EXPERIMENTS = {
    "fig1a": homogeneous.figure_1a,
    "fig1b": homogeneous.figure_1b,
    "fig2": power_curves.figure_2,
    "fig3": criticality.figure_3,
    "fig4": criticality.figure_4,
    "fig6": cwf_eval.figure_6,
    "fig7": cwf_eval.figure_7,
    "fig8": cwf_eval.figure_8,
    "fig9": cwf_eval.figure_9,
    "fig10": energy_eval.figure_10,
    "fig11": energy_eval.figure_11,
    "tab1": tables.table_1,
    "tab2": tables.table_2,
    "sec611_random": controls.random_mapping,
    "sec611_noprefetch": controls.no_prefetcher,
    "sec71": page_placement.section_7_1,
    "sec72": energy_eval.section_7_2,
}

# Spec providers, one per experiment: the suite scheduler runs the
# deduped union of the requested figures' specs through one executor,
# then hands each figure the shared ``{spec: SimResult}`` map.
EXPERIMENT_SPECS = {
    "fig1a": homogeneous.specs_figure_1a,
    "fig1b": homogeneous.specs_figure_1b,
    "fig2": power_curves.specs_figure_2,
    "fig3": criticality.specs_figure_3,
    "fig4": criticality.specs_figure_4,
    "fig6": cwf_eval.specs_figure_6,
    "fig7": cwf_eval.specs_figure_7,
    "fig8": cwf_eval.specs_figure_8,
    "fig9": cwf_eval.specs_figure_9,
    "fig10": energy_eval.specs_figure_10,
    "fig11": energy_eval.specs_figure_11,
    "tab1": tables.specs_table_1,
    "tab2": tables.specs_table_2,
    "sec611_random": controls.specs_random_mapping,
    "sec611_noprefetch": controls.specs_no_prefetcher,
    "sec71": page_placement.specs_section_7_1,
    "sec72": energy_eval.specs_section_7_2,
}


def suite_specs(keys, config):
    """Deduped union of the listed experiments' specs, declared order."""
    specs = []
    for key in keys:
        specs.extend(EXPERIMENT_SPECS[key](config))
    return list(dict.fromkeys(specs))


__all__ = ["ExperimentConfig", "ExperimentTable", "ResultCache", "RunSpec",
           "ParallelExecutor", "default_config", "run_cached", "run_specs",
           "resolve_results", "resolve_jobs", "execute_spec",
           "register_runner", "spec_cache_key", "suite_specs",
           "ALL_EXPERIMENTS", "EXPERIMENT_SPECS",
           "MISSING", "FailedRun", "FaultPlan", "RetryPolicy", "SuiteError",
           "failure_appendix"]
