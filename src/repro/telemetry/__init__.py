"""Telemetry subsystem: metrics registry, tracing, sampling, export.

See ``registry`` (Counter/Gauge/Histogram + MetricsRegistry),
``trace`` (Chrome trace_event spans), ``sampler`` (EventQueue-driven
periodic probes), ``export`` (JSON/CSV artefacts + run manifest), and
``session`` (per-run scoping and the process-wide active session).
"""

from repro.telemetry.export import (
    config_hash,
    run_manifest,
    table_to_dict,
    tables_to_json,
    write_stats_csv,
    write_stats_json,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.telemetry.sampler import Sampler
from repro.telemetry.session import (
    RunTelemetry,
    TelemetrySession,
    activate,
    active_session,
    deactivate,
)
from repro.telemetry.trace import (
    ChromeTracer,
    NULL_TRACER,
    NullTracer,
    merge_traces,
    validate_trace,
    write_trace,
)

__all__ = [
    "ChromeTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "RunTelemetry",
    "Sampler",
    "TelemetrySession",
    "activate",
    "active_session",
    "config_hash",
    "deactivate",
    "merge_traces",
    "run_manifest",
    "table_to_dict",
    "tables_to_json",
    "validate_trace",
    "write_stats_csv",
    "write_stats_json",
    "write_trace",
]
