"""Request-lifecycle tracing in Chrome ``trace_event`` format.

Every DRAM request becomes a sequence of spans on its controller's
track: *queued* (arrival -> first DRAM command), *access* (first
command -> data burst start, i.e. the PRE/ACT/CAS phase), and *burst*
(data on the bus), plus an instant marker when the critical word is at
the pins. The resulting JSON loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev.

Timestamps convert CPU cycles to microseconds (the trace_event unit)
using the simulation's CPU frequency. Each simulated run is emitted as
its own *process* (pid) so multi-run sessions stay separable; each
controller is a *thread* (tid) inside that process.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

TRACE_SCHEMA_VERSION = 1

# Phases used from the trace_event spec.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_METADATA = "M"
PH_COUNTER = "C"


class ChromeTracer:
    """Collects trace events for one simulated run (one pid)."""

    enabled = True

    def __init__(self, cpu_freq_ghz: float = 3.2, pid: int = 0,
                 process_name: Optional[str] = None) -> None:
        self.pid = pid
        self.events: List[dict] = []
        # cycles -> microseconds: cycles / (GHz * 1000).
        self._scale = 1.0 / (cpu_freq_ghz * 1000.0)
        self._tids: Dict[str, int] = {}
        if process_name:
            self.events.append({
                "name": "process_name", "ph": PH_METADATA, "pid": pid,
                "tid": 0, "args": {"name": process_name}})

    # ------------------------------------------------------------------

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self.events.append({
                "name": "thread_name", "ph": PH_METADATA, "pid": self.pid,
                "tid": tid, "args": {"name": track}})
        return tid

    def _us(self, cycles: int) -> float:
        return cycles * self._scale

    def complete(self, name: str, start_cycles: int, dur_cycles: int,
                 track: str, args: Optional[dict] = None,
                 cat: str = "request") -> None:
        """A span: [start, start+dur) on ``track``."""
        self.events.append({
            "name": name, "cat": cat, "ph": PH_COMPLETE,
            "ts": self._us(start_cycles),
            "dur": self._us(max(0, dur_cycles)),
            "pid": self.pid, "tid": self._tid(track),
            "args": args or {}})

    def instant(self, name: str, ts_cycles: int, track: str,
                args: Optional[dict] = None, cat: str = "request") -> None:
        self.events.append({
            "name": name, "cat": cat, "ph": PH_INSTANT, "s": "t",
            "ts": self._us(ts_cycles),
            "pid": self.pid, "tid": self._tid(track),
            "args": args or {}})

    def counter(self, name: str, ts_cycles: int, values: dict,
                cat: str = "sample") -> None:
        self.events.append({
            "name": name, "cat": cat, "ph": PH_COUNTER,
            "ts": self._us(ts_cycles), "pid": self.pid, "tid": 0,
            "args": values})

    # ------------------------------------------------------------------

    def record_request(self, req, track: str) -> None:
        """Emit the lifecycle spans of a completed MemoryRequest."""
        arrival = req.arrival_time
        first = req.first_command_time
        start = req.data_start_time
        end = req.completion_time
        if start is None or end is None:
            return
        if first is None:
            first = start
        d = req.decoded
        args = {
            "line": req.line_address,
            "kind": req.kind.value,
            "core": req.core_id,
            "prefetch": req.is_prefetch,
        }
        if d is not None:
            args.update(rank=d.rank, bank=d.bank, row=d.row)
        if first > arrival:
            self.complete("queued", arrival, first - arrival, track, args)
        self.complete("access", first, start - first, track, args)
        self.complete("burst", start, end - start, track, args)
        if req.is_read and req.critical_word_time is not None:
            self.instant("critical_word", req.critical_word_time, track,
                         {"line": req.line_address,
                          "word": req.critical_word})

    def to_trace(self) -> dict:
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ms",
                "otherData": {"schema_version": TRACE_SCHEMA_VERSION}}


class NullTracer(ChromeTracer):
    """No-op twin: the default sink for un-instrumented runs."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.events = []

    def complete(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def record_request(self, req, track: str) -> None:
        pass

    def __reduce__(self):
        # Identity checks (``tracer is NULL_TRACER``) gate the tracing
        # hot path; a checkpointed system must round-trip to the shared
        # singleton rather than a copy.
        return (_null_tracer, ())


NULL_TRACER = NullTracer()


def _null_tracer() -> NullTracer:
    return NULL_TRACER


def merge_traces(tracers) -> dict:
    """Combine per-run tracers into one Chrome trace document."""
    events: List[dict] = []
    for tracer in tracers:
        events.extend(tracer.events)
    return {"traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema_version": TRACE_SCHEMA_VERSION}}


def write_trace(path: str, trace: dict) -> None:
    with open(path, "w") as handle:
        json.dump(trace, handle)


def validate_trace(trace: dict) -> List[str]:
    """Schema check used by tests and the CLI; returns problems found."""
    problems: List[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["missing traceEvents array"]
    for i, event in enumerate(trace["traceEvents"]):
        where = f"event {i}"
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in (PH_COMPLETE, PH_INSTANT, PH_METADATA, PH_COUNTER):
            problems.append(f"{where}: unknown phase {ph!r}")
        if ph != PH_METADATA and not isinstance(
                event.get("ts", None), (int, float)):
            problems.append(f"{where}: non-numeric ts")
        if ph == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems
