"""Unified metrics registry: counters, gauges, and log2 histograms.

Metrics are hierarchically named with dot-separated components
(``dram.bulk-lpddr2-ch0.queue_latency_cycles``,
``core2.rob_stall_retries``) so exports can be grouped per channel,
bank, or core without any registry-side tree structure.

The hot path is designed around a **null sink**: every metric type has
a null twin whose mutators are no-ops, and :data:`NULL_REGISTRY` hands
those twins out from its factory methods. Simulator components keep
metric handles as plain attributes defaulting to the null singletons,
so an un-instrumented run pays only an attribute lookup and an empty
method call per event — no branching, no isinstance checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

# 64 buckets cover every int a simulation can produce: bucket i holds
# values whose bit_length is i (i.e. [2**(i-1), 2**i - 1]), bucket 0
# holds zero and negatives (clamped).
HISTOGRAM_BUCKETS = 64

_PERCENTILES = (50.0, 95.0, 99.0)


class Metric:
    """Base class: a named datum in a registry."""

    kind = "metric"

    def __init__(self, name: str) -> None:
        self.name = name

    def snapshot(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge(Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram(Metric):
    """Fixed-bucket log2 histogram of non-negative integer samples.

    Bucket *i* collects samples with ``bit_length() == i``; bucket 0
    collects zeros. Percentiles interpolate linearly inside the bucket
    that crosses the requested rank, so p50/p95/p99 are approximate
    (within a factor-of-2 bucket) while ``mean``/``sum``/``count``/
    ``min``/``max`` are exact.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.buckets: List[int] = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        v = int(value)
        if v < 0:
            v = 0
        idx = v.bit_length()
        if idx >= HISTOGRAM_BUCKETS:
            idx = HISTOGRAM_BUCKETS - 1
        self.buckets[idx] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[int, int]:
        """Inclusive [lo, hi] value range of bucket ``index``."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile, defined at every edge.

        An empty histogram answers 0.0 for any ``p``; ``p <= 0``
        answers the exact tracked minimum and ``p >= 100`` the exact
        tracked maximum (both are stored precisely, so the edges are
        not subject to bucket approximation). Interior percentiles
        interpolate linearly inside the crossing bucket, clamped to
        the observed [min, max] — comparisons are explicit ``is not
        None`` checks, so a legitimate minimum of 0 clamps too
        (``self.min or lo`` used to discard it as falsy).
        """
        if not self.count:
            return 0.0
        if p <= 0:
            return float(self.min if self.min is not None else 0)
        if p >= 100:
            return float(self.max if self.max is not None else 0)
        rank = p / 100.0 * self.count
        seen = 0
        for idx, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= rank:
                lo, hi = self.bucket_bounds(idx)
                if self.min is not None:
                    lo = max(lo, self.min)
                if self.max is not None:
                    hi = min(hi, self.max)
                if n == 1 or hi <= lo:
                    return float(hi)
                # Linear interpolation within the crossing bucket.
                frac = (rank - seen) / n
                return lo + frac * (hi - lo)
            seen += n
        return float(self.max if self.max is not None else 0)

    def snapshot(self) -> dict:
        out = {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
        }
        for p in _PERCENTILES:
            out[f"p{p:g}"] = self.percentile(p)
        # Sparse bucket encoding: {bit_length: count}.
        out["buckets"] = {str(i): n for i, n in enumerate(self.buckets) if n}
        return out


# ---------------------------------------------------------------------------
# Null sink
# ---------------------------------------------------------------------------

class NullCounter(Counter):
    def inc(self, n: int = 1) -> None:  # noqa: D102 - no-op by design
        pass

    def __reduce__(self):
        # Components compare their handles against the module singletons
        # by identity (``is NULL_COUNTER``); pickling must round-trip to
        # the same object, not a copy, or checkpoints would flip every
        # "is telemetry attached?" check.
        return (_null_counter, ())


class NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def __reduce__(self):
        return (_null_gauge, ())


class NullHistogram(Histogram):
    def observe(self, value: int) -> None:
        pass

    def __reduce__(self):
        return (_null_histogram, ())


NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null")


def _null_counter() -> NullCounter:
    return NULL_COUNTER


def _null_gauge() -> NullGauge:
    return NULL_GAUGE


def _null_histogram() -> NullHistogram:
    return NULL_HISTOGRAM


class MetricsRegistry:
    """Flat namespace of metrics, created on first use.

    Asking twice for the same name and type returns the same object;
    asking for an existing name with a *different* type raises, which
    catches accidental collisions between components.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}")
            return metric
        metric = cls(name)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def items(self, prefix: str = "") -> Iterable[Tuple[str, Metric]]:
        for name in self.names(prefix):
            yield name, self._metrics[name]

    def snapshot(self, prefix: str = "") -> Dict[str, dict]:
        """Machine-readable dump of every metric under ``prefix``."""
        return {name: metric.snapshot() for name, metric in self.items(prefix)}


class NullRegistry(MetricsRegistry):
    """Registry twin whose factories return shared no-op metrics."""

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return NULL_HISTOGRAM

    def __reduce__(self):
        return (_null_registry, ())


NULL_REGISTRY = NullRegistry()


def _null_registry() -> NullRegistry:
    return NULL_REGISTRY
