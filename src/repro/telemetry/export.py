"""Machine-readable run artefacts: stats JSON, CSV, and run manifests.

The stats document written by ``--stats-json`` has the shape::

    {
      "manifest": {schema, created_unix, git_rev, config_hash, seed, ...},
      "runs": [
        {"benchmark": ..., "memory": ...,
         "summary": {...SimResult scalars...},
         "metrics": {"dram.ddr3-ch0.queue_latency_cycles": {...}, ...}},
        ...
      ]
    }

CSV export flattens one metric per row for spreadsheet use.
"""

from __future__ import annotations

import csv
import hashlib
import json
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry

STATS_SCHEMA_VERSION = 1


def config_hash(obj) -> str:
    """Stable short hash of any JSON-serialisable configuration."""
    try:
        blob = json.dumps(obj, sort_keys=True, default=str)
    except TypeError:
        blob = repr(obj)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Current git HEAD, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(config=None, seed: Optional[int] = None,
                 argv: Optional[List[str]] = None,
                 wall_time_s: Optional[float] = None,
                 extra: Optional[dict] = None) -> dict:
    """Provenance record stamped into every stats export."""
    manifest = {
        "schema": STATS_SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "git_rev": git_revision(),
        "argv": list(argv) if argv is not None else list(sys.argv),
    }
    if config is not None:
        manifest["config_hash"] = config_hash(config)
        manifest["config"] = config if isinstance(config, dict) else str(config)
    if seed is not None:
        manifest["seed"] = seed
    if wall_time_s is not None:
        manifest["wall_time_s"] = wall_time_s
    if extra:
        manifest.update(extra)
    return manifest


# ---------------------------------------------------------------------------
# Stats documents
# ---------------------------------------------------------------------------

def registry_snapshot(registry: MetricsRegistry, prefix: str = "") -> Dict[str, dict]:
    return registry.snapshot(prefix)


def stats_document(manifest: dict, runs: List[dict]) -> dict:
    return {"manifest": manifest, "runs": runs}


def write_stats_json(path: str, manifest: dict, runs: List[dict]) -> None:
    with open(path, "w") as handle:
        json.dump(stats_document(manifest, runs), handle, indent=1)


def write_stats_csv(path: str, runs: List[dict]) -> None:
    """One row per (run, metric, field) for spreadsheet consumption."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "memory", "metric", "type",
                         "field", "value"])
        for run in runs:
            bench = run.get("benchmark", "")
            memory = run.get("memory", "")
            for name, snap in sorted(run.get("metrics", {}).items()):
                kind = snap.get("type", "")
                for field, value in snap.items():
                    if field in ("type", "buckets"):
                        continue
                    writer.writerow([bench, memory, name, kind, field, value])


# ---------------------------------------------------------------------------
# Experiment tables as JSON (CLI --json mode)
# ---------------------------------------------------------------------------

def table_to_dict(table) -> dict:
    """Structured form of an ExperimentTable (duck-typed)."""
    return {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(row) for row in table.rows],
        "notes": table.notes,
    }


def tables_to_json(tables, manifest: Optional[dict] = None) -> str:
    doc = {"tables": [table_to_dict(t) for t in tables]}
    if manifest is not None:
        doc["manifest"] = manifest
    return json.dumps(doc, indent=1, default=str)
