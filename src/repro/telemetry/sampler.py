"""Periodic EventQueue-driven sampling of live simulator state.

The sampler rides the simulation's own event queue: every
``interval_cycles`` it evaluates its probes (queue occupancy, bus
utilisation, MSHR fill, ...) and records each value into a gauge (last
value) and a histogram (distribution over the run) under
``sample.<probe>``. It is only ever constructed when telemetry is
active, so the null-sink default run schedules no events at all.

The sampler keeps rescheduling itself until :meth:`stop`; the
simulation loop exits on core completion, so a pending sample event
left in the queue is simply never executed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry
from repro.util.events import Event, EventQueue

DEFAULT_INTERVAL = 2048  # CPU cycles between samples


class Sampler:
    """Samples scalar probes on a fixed cycle cadence."""

    def __init__(self, events: EventQueue, registry: MetricsRegistry,
                 interval_cycles: int = DEFAULT_INTERVAL) -> None:
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.events = events
        self.registry = registry
        self.interval = interval_cycles
        self.samples_taken = 0
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self._pending: Optional[Event] = None
        self._running = False

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register ``fn`` to be sampled as ``sample.<name>``."""
        full = f"sample.{name}"
        # Create the metrics eagerly so name collisions surface at
        # registration time, not mid-run.
        self.registry.gauge(full)
        self.registry.histogram(full + ".hist")
        self._probes.append((full, fn))

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._pending = self.events.schedule_after(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        if not self._running:
            return
        self.samples_taken += 1
        for name, fn in self._probes:
            value = fn()
            self.registry.gauge(name).set(value)
            self.registry.histogram(name + ".hist").observe(int(value))
        self._pending = self.events.schedule_after(self.interval, self._tick)
