"""Telemetry sessions: per-run registries under one exportable roof.

A :class:`TelemetrySession` spans one CLI invocation (or one test) and
owns the artefacts; each simulated run gets its own
:class:`RunTelemetry` — a fresh :class:`MetricsRegistry` plus a tracer
emitting into a distinct trace process — so metrics from different
(benchmark, memory) pairs never alias. ``SimulationSystem`` attaches a
run's registry/tracer to the memory hierarchy and drives the sampler.

A module-level *active session* lets the experiment harness pick up
telemetry without threading a parameter through every figure function:
the CLI activates a session, ``run_benchmark`` consults it. While a
session is active the result cache is bypassed for reads (a recalled
result has no telemetry to contribute), so exported stats always
describe actual simulated work.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.telemetry.export import (
    run_manifest,
    write_stats_csv,
    write_stats_json,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampler import DEFAULT_INTERVAL
from repro.telemetry.trace import ChromeTracer, NULL_TRACER, merge_traces, write_trace


class RunTelemetry:
    """Registry + tracer for one simulated run."""

    def __init__(self, benchmark: str, memory: str, pid: int,
                 cpu_freq_ghz: float, trace_enabled: bool,
                 sample_interval: int = DEFAULT_INTERVAL) -> None:
        self.benchmark = benchmark
        self.memory = memory
        self.sample_interval = sample_interval
        self.registry = MetricsRegistry()
        self.tracer = (ChromeTracer(cpu_freq_ghz, pid=pid,
                                    process_name=f"{benchmark}/{memory}")
                       if trace_enabled else NULL_TRACER)
        # Monotonic, not wall-clock: an NTP step or DST shift mid-run
        # must not distort (or negate) the exported duration.
        self.started = time.monotonic()


class TelemetrySession:
    """Collects RunTelemetry records and writes the export artefacts."""

    def __init__(self, trace_enabled: bool = False,
                 cpu_freq_ghz: float = 3.2,
                 sample_interval: int = DEFAULT_INTERVAL) -> None:
        self.trace_enabled = trace_enabled
        self.cpu_freq_ghz = cpu_freq_ghz
        self.sample_interval = sample_interval
        # Durations come from the monotonic clock; time.time() remains
        # only where an absolute timestamp is the point (created_unix).
        self.started = time.monotonic()
        self._tracers: List[ChromeTracer] = []
        self.runs: List[dict] = []
        # Named event counters (retries, failures by kind, cache
        # quarantines, ...): cheap to bump anywhere, exported with the
        # run manifest.
        self.counters: Dict[str, int] = {}

    def incr(self, name: str, n: int = 1) -> int:
        """Bump a named counter, creating it at zero first."""
        self.counters[name] = self.counters.get(name, 0) + n
        return self.counters[name]

    # ------------------------------------------------------------------

    def begin_run(self, benchmark: str, memory: str) -> RunTelemetry:
        run = RunTelemetry(benchmark, memory, pid=len(self._tracers) + 1,
                           cpu_freq_ghz=self.cpu_freq_ghz,
                           trace_enabled=self.trace_enabled,
                           sample_interval=self.sample_interval)
        if run.tracer.enabled:
            self._tracers.append(run.tracer)
        return run

    def end_run(self, run: RunTelemetry, summary: Optional[dict] = None) -> dict:
        record = {
            "benchmark": run.benchmark,
            "memory": run.memory,
            "wall_time_s": time.monotonic() - run.started,
            "summary": summary or {},
            "metrics": run.registry.snapshot(),
        }
        self.runs.append(record)
        return record

    def ingest(self, runs: List[dict],
               trace_events: Optional[List[dict]] = None,
               counters: Optional[Dict[str, int]] = None) -> None:
        """Merge run records, trace events, and counters from a worker.

        The parallel executor's workers run under their own sessions
        and ship back plain dicts; trace pids are remapped so each
        ingested worker session stays a distinct trace process lane,
        and worker-side counters (e.g. cache quarantines) sum into the
        parent's.
        """
        self.runs.extend(runs)
        for name, value in (counters or {}).items():
            self.incr(name, value)
        if not trace_events:
            return
        pid_map: dict = {}
        remapped = []
        for event in trace_events:
            child_pid = event.get("pid", 0)
            if child_pid not in pid_map:
                pid_map[child_pid] = len(self._tracers) + len(pid_map) + 1
            event = dict(event)
            event["pid"] = pid_map[child_pid]
            remapped.append(event)
        holder = ChromeTracer(pid=max(pid_map.values(), default=0))
        holder.events = remapped
        self._tracers.append(holder)

    # ------------------------------------------------------------------

    def manifest(self, config=None, seed: Optional[int] = None,
                 argv: Optional[List[str]] = None) -> dict:
        return run_manifest(config=config, seed=seed, argv=argv,
                            wall_time_s=time.monotonic() - self.started,
                            extra={"num_runs": len(self.runs),
                                   "counters": dict(self.counters)})

    def export_stats(self, path: str, config=None,
                     seed: Optional[int] = None,
                     argv: Optional[List[str]] = None) -> None:
        write_stats_json(path, self.manifest(config, seed, argv), self.runs)

    def export_csv(self, path: str) -> None:
        write_stats_csv(path, self.runs)

    def export_trace(self, path: str) -> None:
        write_trace(path, merge_traces(self._tracers))


# ---------------------------------------------------------------------------
# Active-session plumbing
# ---------------------------------------------------------------------------

_active: Optional[TelemetrySession] = None


def activate(session: TelemetrySession) -> TelemetrySession:
    """Install ``session`` as the process-wide active session."""
    global _active
    _active = session
    return session


def deactivate() -> None:
    global _active
    _active = None


def active_session() -> Optional[TelemetrySession]:
    return _active
