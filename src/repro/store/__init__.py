"""Content-addressed, size-bounded artifact store (see :mod:`.cas`).

The single disk layer under the result cache, checkpoint snapshots,
and service job manifests: one atomic/durable write path
(:mod:`.atomic`), sha256-addressed deduplicated blobs with a key
index, LRU eviction under per-tier byte budgets, pid-carrying pins,
and a ``repro store gc|stats|verify`` CLI (:mod:`.cli`).
"""

from repro.store.atomic import (
    CORRUPT_SUFFIX,
    atomic_write_bytes,
    atomic_write_text,
    file_lock,
    format_size,
    fsync_dir,
    parse_size,
    quarantine_file,
)
from repro.store.cas import (
    ArtifactStore,
    FileStore,
    StoreEntry,
    key_digest,
)

__all__ = [
    "ArtifactStore",
    "FileStore",
    "StoreEntry",
    "CORRUPT_SUFFIX",
    "atomic_write_bytes",
    "atomic_write_text",
    "file_lock",
    "format_size",
    "fsync_dir",
    "key_digest",
    "parse_size",
    "quarantine_file",
]
