"""``repro store`` — gc/stats/verify for the on-disk artifact tiers.

Usage::

    repro store stats                     # every discoverable tier
    repro store stats --json
    repro store gc --max-bytes 64M        # bound every tier to 64 MiB
    repro store gc --cache .repro_cache --max-bytes 16M --dry-run
    repro store verify                    # end-to-end digest checks
    repro store verify --repair           # quarantine what fails

Tiers are discovered from the usual knobs — ``--cache`` (default
``REPRO_CACHE`` or ``.repro_cache``), ``--jobs-dir`` (default
``.repro_jobs``), ``--checkpoint-dir`` (default
``REPRO_CHECKPOINT_DIR``) — and silently skipped when the directory
does not exist. ``gc`` never touches pinned entries (in-flight
checkpoints, queued/running job manifests); ``verify`` exits 1 when
problems remain so CI can gate on store health.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.store.atomic import format_size, parse_size
from repro.store.cas import ArtifactStore, FileStore


def _manifest_pinned(path: Path) -> bool:
    """A queued/running job manifest must survive any gc."""
    from repro.service.jobs import TERMINAL_STATES
    try:
        data = json.loads(path.read_text())
        return (isinstance(data, dict)
                and data.get("state") not in TERMINAL_STATES)
    except (OSError, ValueError):
        return True  # unreadable: refuse to evict what we can't judge


def _manifest_problem(path: Path) -> Optional[str]:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return f"unreadable manifest ({exc})"
    if not isinstance(data, dict) or not data.get("id"):
        return "manifest is not a job object"
    return None


def _checkpoint_problem(path: Path) -> Optional[str]:
    import hashlib

    from repro.sim.checkpoint import read_header
    try:
        header = read_header(path)
        with open(path, "rb") as handle:
            handle.readline()
            payload = handle.read()
    except (OSError, ValueError) as exc:
        return f"unreadable header ({exc})"
    if len(payload) != header.get("payload_bytes"):
        return (f"payload truncated ({len(payload)} of "
                f"{header.get('payload_bytes')} bytes)")
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        return "payload sha256 mismatch"
    return None


def discover_tiers(cache_dir: Optional[str], jobs_dir: Optional[str],
                   checkpoint_dir: Optional[str],
                   budget: Optional[int] = None) -> List[object]:
    """Stores for every tier whose directory exists (explicit or default)."""
    explicit = cache_dir or jobs_dir or checkpoint_dir
    cache_dir = cache_dir or os.environ.get("REPRO_CACHE") or ".repro_cache"
    jobs_dir = jobs_dir or ".repro_jobs"
    checkpoint_dir = (checkpoint_dir
                      or os.environ.get("REPRO_CHECKPOINT_DIR") or "")
    tiers: List[object] = []
    if cache_dir.lower() != "off" and Path(cache_dir).is_dir():
        tiers.append(ArtifactStore(cache_dir, tier="results",
                                   budget_bytes=budget))
    if jobs_dir and Path(jobs_dir).is_dir():
        tiers.append(FileStore(jobs_dir, "j-*.json", tier="manifests",
                               budget_bytes=budget,
                               pinned_check=_manifest_pinned,
                               validator=_manifest_problem))
    if checkpoint_dir and Path(checkpoint_dir).is_dir():
        tiers.append(FileStore(checkpoint_dir, "ck-*.ckpt",
                               tier="checkpoints", budget_bytes=budget,
                               validator=_checkpoint_problem))
    if explicit and not tiers:
        raise SystemExit(
            f"repro store: no store found under the given director"
            f"{'ies' if sum(bool(d) for d in (cache_dir, jobs_dir)) > 1 else 'y'}")
    return tiers


def _parse_common(prog: str, argv: List[str], extra=None
                  ) -> Tuple[argparse.Namespace, List[object]]:
    parser = argparse.ArgumentParser(prog=prog)
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="result-cache directory (default REPRO_CACHE "
                             "or .repro_cache)")
    parser.add_argument("--jobs-dir", default=None, metavar="DIR",
                        help="job-manifest directory (default .repro_jobs)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="checkpoint directory (default "
                             "REPRO_CHECKPOINT_DIR)")
    parser.add_argument("--json", action="store_true")
    if extra:
        extra(parser)
    args = parser.parse_args(argv)
    budget = parse_size(getattr(args, "max_bytes", None))
    tiers = discover_tiers(args.cache, args.jobs_dir, args.checkpoint_dir,
                           budget=budget)
    return args, tiers


def cmd_store(argv: List[str]) -> int:
    if not argv or argv[0] not in ("stats", "gc", "verify"):
        print("usage: repro store {stats|gc|verify} [--cache DIR] "
              "[--jobs-dir DIR] [--checkpoint-dir DIR] ...",
              file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "stats":
        return _cmd_stats(rest)
    if command == "gc":
        return _cmd_gc(rest)
    return _cmd_verify(rest)


def _cmd_stats(argv: List[str]) -> int:
    args, tiers = _parse_common("repro store stats", argv)
    stats = [tier.stats() for tier in tiers]
    if args.json:
        print(json.dumps(stats, indent=1))
        return 0
    if not stats:
        print("no artifact stores found (nothing cached yet?)")
        return 0
    for record in stats:
        print(f"{record['tier']:<12} {record['directory']}: "
              f"{record['entries']} entries, "
              f"{format_size(record['bytes'])} "
              f"(budget {format_size(record['budget_bytes'])}, "
              f"{record['pinned']} pinned)")
    return 0


def _cmd_gc(argv: List[str]) -> int:
    def extra(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--max-bytes", default=None, metavar="SIZE",
                            help="per-tier byte budget (e.g. 64M); LRU-"
                                 "evicts unpinned entries past it")
        parser.add_argument("--dry-run", action="store_true",
                            help="report what would be evicted, touch "
                                 "nothing")

    args, tiers = _parse_common("repro store gc", argv, extra)
    reports = [tier.gc(dry_run=args.dry_run) for tier in tiers]
    if args.json:
        print(json.dumps(reports, indent=1))
        return 0
    for report in reports:
        verb = "would evict" if args.dry_run else "evicted"
        print(f"{report['tier']:<12} {format_size(report['bytes_before'])} "
              f"-> {format_size(report['bytes_after'])} "
              f"(budget {format_size(report['budget'])}); "
              f"{verb} {len(report['evicted'])} of "
              f"{report['entries_before']} entries, "
              f"{report['pinned_kept']} pinned kept")
    return 0


def _cmd_verify(argv: List[str]) -> int:
    def extra(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--repair", action="store_true",
                            help="quarantine failing entries so the next "
                                 "run recomputes them cleanly")

    args, tiers = _parse_common("repro store verify", argv, extra)
    total = 0
    payload = []
    for tier in tiers:
        problems = tier.verify(repair=args.repair)
        total += len(problems)
        payload.append({"tier": tier.tier,
                        "directory": str(tier.directory),
                        "problems": problems})
        if not args.json:
            status = "ok" if not problems else f"{len(problems)} problem(s)"
            print(f"{tier.tier:<12} {tier.directory}: {status}")
            for problem in problems:
                print(f"  {problem}")
    if args.json:
        print(json.dumps(payload, indent=1))
    return 1 if total else 0
