"""The one atomic-write path every on-disk tier goes through.

Before the artifact store existed the repo had three independent
"atomic write" implementations — :class:`ResultCache` (temp +
``os.replace``, no fsync), ``sim/checkpoint.py`` (temp + fsync +
``os.replace``, no parent-dir fsync), and the service ``JobStore``
(temp + ``os.replace``, no fsync at all) — with three different
durability holes. A crash between the page-cache write and the disk
flush could leave a zero-length "committed" file that restart recovery
then quarantined, silently dropping queued jobs.

:func:`atomic_write_bytes` is the single discipline now:

1. write to a sibling temp file (same directory, so ``os.replace``
   stays a same-filesystem rename),
2. flush and ``fsync`` the temp file (the *data* is durable),
3. ``os.replace`` it into place (the rename is atomic),
4. ``fsync`` the parent directory (the *name* is durable).

A crash at any point leaves either the complete old file or the
complete new file — never a torn or empty one, even across power loss.
``durable=False`` skips both fsyncs for throwaway tiers (tests, tmpfs
caches) where the double flush is measurable.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Optional, Union

PathLike = Union[str, os.PathLike]

#: Suffix marking a quarantined (corrupt but preserved) entry.
CORRUPT_SUFFIX = ".corrupt"


def fsync_dir(directory: PathLike) -> None:
    """Flush a directory entry table; best-effort on exotic filesystems."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs here
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes,
                       durable: bool = True) -> None:
    """Atomically (and, by default, durably) publish ``data`` at ``path``.

    Readers racing this call observe either the previous complete file
    or the new complete file. With ``durable=True`` (the default) the
    bytes and the rename both survive a crash or power loss.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    if durable:
        fsync_dir(path.parent)


def atomic_write_text(path: PathLike, text: str,
                      durable: bool = True) -> None:
    atomic_write_bytes(path, text.encode(), durable=durable)


@contextlib.contextmanager
def file_lock(path: PathLike) -> Iterator[None]:
    """Advisory exclusive ``flock`` on ``path`` (created if missing).

    Serialises multi-process writers of the same store entry so
    concurrent suite runs sharing a directory don't interleave their
    replace cycles. A no-op where the platform lacks ``fcntl``.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        yield
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def quarantine_file(path: PathLike) -> Optional[Path]:
    """Set a corrupt file aside as ``<file>.corrupt``; None if it raced.

    The renamed file no longer matches any entry glob, so listings and
    recovery skip it — but the evidence survives for a post-mortem
    instead of being re-clobbered by the next write.
    """
    path = Path(path)
    target = path.with_name(path.name + CORRUPT_SUFFIX)
    try:
        os.replace(path, target)
    except OSError:  # raced with another reader, or read-only store
        return None
    return target


# Size parsing lives with the other shared utilities; re-exported here
# because every budget consumer already imports it from the store.
from repro.util.sizes import format_size, parse_size  # noqa: E402,F401
