"""Content-addressed, size-bounded artifact store.

One subsystem now backs every on-disk tier the repo grew over nine
PRs — the simulation :class:`~repro.experiments.runner.ResultCache`,
``sim/checkpoint.py`` snapshots, and the service
:class:`~repro.service.store.JobStore` manifests — the way TL-DRAM
exploits reuse under a bounded fast tier: a high-hit-rate cache of
bounded size in front of arbitrarily expensive recompute. An evicted
entry is never an error, only a clean recompute.

Two store flavours share the discipline:

:class:`ArtifactStore` (the *results* tier)
    sha256-addressed blobs under ``blobs/``, deduplicated across keys,
    with a ``index/<keydigest>.json`` key→digest index replacing the old
    flat ``<digest>.json`` layout. Every ``get`` re-verifies the blob
    digest, so bit rot is caught (and quarantined) before a caller sees
    it. Reads don't rewrite files, so LRU state lives in an append-only
    access-time ``journal.log`` (compacted by ``gc``).

:class:`FileStore` (the *checkpoints* and *manifests* tiers)
    wraps a directory of standalone content-validated files
    (``ck-*.ckpt``, ``j-*.json``) that external tooling addresses by
    path; writes update mtime, so mtime is the LRU clock and no journal
    is kept (their directories must stay empty-able — checkpoint tests
    assert a finished run leaves nothing behind).

Both enforce a per-tier byte budget with LRU eviction, skip *pinned*
entries (a ``<name>.pin`` sibling carrying the owning pid — pins of
dead processes expire automatically, so a crashed writer cannot strand
disk), quarantine corruption as ``<file>.corrupt``, and mirror their
``hits/misses/writes/evictions/quarantined`` counters into any active
telemetry session as ``store.<tier>.<event>`` so they surface in
``repro report --json`` manifests and the service ``/metrics``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.store.atomic import (
    CORRUPT_SUFFIX,
    atomic_write_bytes,
    file_lock,
    quarantine_file,
)

#: Digest prefix length for key-addressed index files (matches the
#: legacy ResultCache/checkpoint filename digests, so migrated entries
#: keep their identity).
KEY_DIGEST_LEN = 24

#: Over-budget slack tolerated between automatic gc passes: a put only
#: triggers eviction once the (locally estimated) usage exceeds the
#: budget, so concurrent writers overshoot by at most their in-flight
#: entries, never unboundedly.
_JOURNAL_NAME = "journal.log"


def key_digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:KEY_DIGEST_LEN]


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):  # pragma: no cover - EPERM: alive
        return True
    return True


def _pin_live(pin_path: Path) -> bool:
    """A pin protects its entry while the pinning process is alive.

    Pin files carry the owner's pid; a pin whose process has exited is
    stale and no longer protects (so a crashed run cannot strand disk
    forever). An unreadable pin is treated as live — better to under-
    evict than to delete an in-flight checkpoint.
    """
    try:
        pid = int(pin_path.read_text().strip() or "0")
    except (OSError, ValueError):
        return pin_path.exists()
    return _pid_alive(pid)


@dataclass
class StoreEntry:
    """One logical entry of a store tier, as seen by gc/stats/verify."""

    key: str              # cache key (CAS) or file name (FileStore)
    path: Path            # index file (CAS) or the entry file itself
    size: int             # bytes charged against the tier budget
    last_access: float    # unix seconds (journal or mtime)
    pinned: bool = False
    digest: str = ""      # blob sha256 (CAS only)


class _StoreBase:
    """Counters + telemetry mirroring shared by both store flavours."""

    def __init__(self, directory, tier: str) -> None:
        self.directory = Path(directory)
        self.tier = tier
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "evictions": 0,
            "quarantined": 0, "pinned_skips": 0, "gc_runs": 0,
        }

    def _emit(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        from repro.telemetry.session import active_session
        session = active_session()
        if session is not None:
            session.incr(f"store.{self.tier}.{name}", n)

    # -- pins ----------------------------------------------------------

    def _pin_path(self, entry_path: Path) -> Path:
        return entry_path.with_name(entry_path.name + ".pin")

    def pin_path_live(self, entry_path: Path) -> bool:
        pin = self._pin_path(entry_path)
        return pin.exists() and _pin_live(pin)

    def write_pin(self, entry_path: Path) -> None:
        pin = self._pin_path(entry_path)
        try:
            pin.parent.mkdir(parents=True, exist_ok=True)
            pin.write_text(str(os.getpid()))
        except OSError:  # pragma: no cover - read-only store
            pass

    def drop_pin(self, entry_path: Path) -> None:
        self._pin_path(entry_path).unlink(missing_ok=True)

    # -- shared eviction loop ------------------------------------------

    def _evict_lru(self, entries: List[StoreEntry], used: int,
                   max_bytes: int, dry_run: bool,
                   evict_entry: Callable[[StoreEntry], None]) -> dict:
        """Evict oldest-accessed unpinned entries until ``used`` fits."""
        report = {"tier": self.tier, "bytes_before": used,
                  "entries_before": len(entries), "evicted": [],
                  "pinned_kept": 0, "budget": max_bytes}
        survivors = []
        for entry in sorted(entries, key=lambda e: (e.last_access, e.key)):
            if used <= max_bytes:
                survivors.append(entry)
                continue
            if entry.pinned:
                report["pinned_kept"] += 1
                self._emit("pinned_skips")
                survivors.append(entry)
                continue
            if not dry_run:
                evict_entry(entry)
                self._emit("evictions")
            report["evicted"].append(entry.key)
            used -= entry.size
        report["bytes_after"] = used
        report["entries_after"] = len(survivors)
        return report


class ArtifactStore(_StoreBase):
    """sha256-addressed blob store with a key index and an LRU journal.

    Layout under ``directory``::

        index/<keydigest>.json   {"key", "digest", "size", "created_unix"}
        blobs/<aa>/<sha256>.blob payload bytes (shared across keys)
        journal.log              "<unix> <keydigest>\\n" per access
        locks/<keydigest>.lock   advisory flock for writers of one key

    ``get_bytes`` verifies the payload digest on every read; an entry
    whose bytes no longer hash to its name is quarantined, never
    returned. Identical payloads stored under different keys share one
    blob (``dedup_hits`` counts the savings).
    """

    def __init__(self, directory, tier: str = "results",
                 budget_bytes: Optional[int] = None,
                 durable: bool = True) -> None:
        super().__init__(directory, tier)
        self.budget_bytes = budget_bytes
        self.durable = durable
        self.index_dir = self.directory / "index"
        self.blobs_dir = self.directory / "blobs"
        self.locks_dir = self.directory / "locks"
        self.journal_path = self.directory / _JOURNAL_NAME
        # Eager, so entry paths handed out by index_path() are writable
        # before the first put (tests inject corruption that way).
        self.index_dir.mkdir(parents=True, exist_ok=True)
        # Lazy local usage estimate: exact after each gc, bumped per
        # put; concurrent writers each overshoot by at most their own
        # in-flight bytes before their next gc re-measures the truth.
        self._approx_bytes: Optional[int] = None

    # -- paths ---------------------------------------------------------

    def index_path(self, key: str) -> Path:
        return self.index_dir / f"{key_digest(key)}.json"

    def blob_path(self, digest: str) -> Path:
        return self.blobs_dir / digest[:2] / f"{digest}.blob"

    # -- journal -------------------------------------------------------

    def _journal(self, digest_of_key: str) -> None:
        """Append one access record; O_APPEND keeps writers atomic."""
        line = f"{time.time():.3f} {digest_of_key}\n"
        try:
            with open(self.journal_path, "a") as handle:
                handle.write(line)
        except OSError:  # pragma: no cover - read-only store
            pass

    def _last_access_map(self) -> Dict[str, float]:
        """Latest journaled access per key digest (malformed lines skip)."""
        accesses: Dict[str, float] = {}
        try:
            with open(self.journal_path) as handle:
                for line in handle:
                    parts = line.split()
                    if len(parts) != 2:
                        continue
                    try:
                        accesses[parts[1]] = float(parts[0])
                    except ValueError:
                        continue
        except OSError:
            pass
        return accesses

    # -- core API ------------------------------------------------------

    def put_bytes(self, key: str, data: bytes, pin: bool = False) -> str:
        """Store ``data`` under ``key``; returns the content digest.

        The blob is published first, then the index entry — a reader
        that sees the index entry can always resolve the payload. Both
        writes go through the shared atomic path; the per-key flock
        serialises concurrent writers of the same key.
        """
        digest = hashlib.sha256(data).hexdigest()
        blob = self.blob_path(digest)
        if blob.exists():
            self._emit("dedup_hits")
        else:
            atomic_write_bytes(blob, data, durable=self.durable)
        entry = {"key": key, "digest": digest, "size": len(data),
                 "created_unix": time.time()}
        kd = key_digest(key)
        with file_lock(self.locks_dir / f"{kd}.lock"):
            atomic_write_bytes(self.index_path(key),
                               json.dumps(entry).encode(),
                               durable=self.durable)
        self._journal(kd)
        self._emit("writes")
        if pin:
            self.write_pin(self.index_path(key))
        if self.budget_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(data)
            if self._approx_bytes > self.budget_bytes:
                self.gc()
        return digest

    def _read_index(self, key: str) -> Optional[dict]:
        path = self.index_path(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        except OSError:
            return None  # read race (mid-replace), not corruption
        if not isinstance(data, dict):
            self._quarantine(path)
            return None
        # Key check before schema check: a record naming another key
        # (truncated-digest collision, or a legacy-format payload with
        # a different ``__key__``) is not ours to judge — a plain miss,
        # left in place. Only a record claiming *this* key with a
        # broken shape is corruption.
        if data.get("key", data.get("__key__")) != key:
            return None
        if not isinstance(data.get("digest"), str):
            self._quarantine(path)
            return None
        return data

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Recall ``key``'s payload; corruption quarantines, never raises.

        A missing entry (never stored, or evicted) is a plain miss —
        the caller recomputes. A present entry whose blob is missing
        (raced gc) heals itself: the stale index record is dropped and
        the read degrades to a miss.
        """
        record = self._read_index(key)
        if record is None:
            self._emit("misses")
            return None
        blob = self.blob_path(record["digest"])
        try:
            data = blob.read_bytes()
        except OSError:
            self.index_path(key).unlink(missing_ok=True)  # stale index
            self._emit("misses")
            return None
        if hashlib.sha256(data).hexdigest() != record["digest"]:
            self._quarantine(blob)
            self.index_path(key).unlink(missing_ok=True)
            self._emit("misses")
            return None
        self._journal(key_digest(key))
        self._emit("hits")
        return data

    def contains(self, key: str) -> bool:
        """Existence probe: no read, no digest check, no counters."""
        return self.index_path(key).exists()

    def delete(self, key: str) -> None:
        path = self.index_path(key)
        self.drop_pin(path)
        path.unlink(missing_ok=True)
        # The blob may be shared; orphan blobs are collected by gc.

    def pin(self, key: str) -> None:
        self.write_pin(self.index_path(key))

    def unpin(self, key: str) -> None:
        self.drop_pin(self.index_path(key))

    def _quarantine(self, path: Path) -> None:
        if quarantine_file(path) is not None:
            self._emit("quarantined")

    # -- scanning / gc -------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        out: List[StoreEntry] = []
        accesses = self._last_access_map()
        for path in sorted(self.index_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
                if (not isinstance(record, dict)
                        or not isinstance(record.get("digest"), str)):
                    raise ValueError("not an index record")
            except (OSError, ValueError):
                self._quarantine(path)
                continue
            out.append(StoreEntry(
                key=record.get("key", path.stem),
                path=path,
                size=int(record.get("size", 0)),
                last_access=accesses.get(
                    path.stem, _mtime_or(path, record.get("created_unix",
                                                          0.0))),
                pinned=self.pin_path_live(path),
                digest=record["digest"]))
        return out

    def total_bytes(self) -> int:
        """Actual disk usage: unique blob bytes + index bytes."""
        total = 0
        for path in self.blobs_dir.glob("*/*.blob"):
            total += _size_or_zero(path)
        for path in self.index_dir.glob("*.json"):
            total += _size_or_zero(path)
        return total

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> dict:
        """Bound the tier: LRU-evict past budget, drop orphan blobs,
        heal dangling index entries, compact the journal.

        ``max_bytes`` overrides the store's configured budget for this
        pass; ``None`` with no configured budget only collects garbage
        (orphans, dangling entries, stale journal lines) without
        evicting live entries.
        """
        budget = max_bytes if max_bytes is not None else self.budget_bytes
        self._emit("gc_runs")
        entries = self.entries()
        # Heal: an index entry whose blob vanished can never be read.
        live: List[StoreEntry] = []
        for entry in entries:
            if self.blob_path(entry.digest).exists():
                live.append(entry)
            elif not dry_run:
                self.drop_pin(entry.path)
                entry.path.unlink(missing_ok=True)
        used = self.total_bytes()
        report = self._evict_lru(
            live, used, budget if budget is not None else used,
            dry_run, lambda e: (self.drop_pin(e.path),
                                e.path.unlink(missing_ok=True)))
        if not dry_run:
            self._sweep_orphan_blobs(report)
            self._compact_journal()
            self._approx_bytes = self.total_bytes()
            report["bytes_after"] = self._approx_bytes
        return report

    def _sweep_orphan_blobs(self, report: dict) -> None:
        referenced = {entry.digest for entry in self.entries()}
        removed = 0
        for blob in self.blobs_dir.glob("*/*.blob"):
            if blob.stem not in referenced:
                blob.unlink(missing_ok=True)
                removed += 1
        report["orphan_blobs_removed"] = removed

    def _compact_journal(self) -> None:
        """Rewrite the journal with one line per surviving entry."""
        accesses = self._last_access_map()
        survivors = {path.stem for path in self.index_dir.glob("*.json")}
        lines = [f"{ts:.3f} {kd}\n"
                 for kd, ts in sorted(accesses.items(), key=lambda i: i[1])
                 if kd in survivors]
        if not lines and not self.journal_path.exists():
            return
        atomic_write_bytes(self.journal_path, "".join(lines).encode(),
                           durable=False)

    def verify(self, repair: bool = False) -> List[str]:
        """Check every entry end-to-end; returns human-readable problems.

        With ``repair=True`` corrupt entries are quarantined and
        dangling index records removed, so a following run starts
        clean (and recomputes what was lost).
        """
        problems: List[str] = []
        for path in sorted(self.index_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
                if not isinstance(record, dict):
                    raise ValueError("index record is not an object")
                digest = record["digest"]
            except (OSError, ValueError, KeyError) as exc:
                problems.append(f"{path.name}: unreadable index ({exc})")
                if repair:
                    self._quarantine(path)
                continue
            blob = self.blob_path(digest)
            try:
                data = blob.read_bytes()
            except OSError:
                problems.append(
                    f"{path.name}: blob {digest[:12]}… missing")
                if repair:
                    path.unlink(missing_ok=True)
                continue
            if hashlib.sha256(data).hexdigest() != digest:
                problems.append(
                    f"{path.name}: blob {digest[:12]}… digest mismatch")
                if repair:
                    self._quarantine(blob)
                    path.unlink(missing_ok=True)
        return problems

    def stats(self) -> dict:
        entries = self.entries()
        return {
            "tier": self.tier,
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": self.total_bytes(),
            "budget_bytes": self.budget_bytes,
            "pinned": sum(1 for e in entries if e.pinned),
            **self.counters,
        }


class FileStore(_StoreBase):
    """Budget/pin/verify management for a directory of standalone files.

    Checkpoints (``ck-*.ckpt``) and job manifests (``j-*.json``) are
    addressed by path from outside the store, so their on-disk layout
    stays flat; this class brings them under the same eviction,
    pinning, and verification regime as the CAS tier. Each save
    rewrites the file (updating mtime), so mtime is the LRU clock.

    ``pinned_check`` marks entries eviction must never touch even
    without a ``.pin`` sibling — e.g. a job manifest whose recorded
    state is still ``queued``/``running``.
    """

    def __init__(self, directory, pattern: str, tier: str,
                 budget_bytes: Optional[int] = None,
                 pinned_check: Optional[Callable[[Path], bool]] = None,
                 validator: Optional[Callable[[Path], Optional[str]]] = None,
                 ) -> None:
        super().__init__(directory, tier)
        self.pattern = pattern
        self.budget_bytes = budget_bytes
        self.pinned_check = pinned_check
        self.validator = validator

    def entries(self) -> List[StoreEntry]:
        out: List[StoreEntry] = []
        for path in sorted(self.directory.glob(self.pattern)):
            if path.name.endswith((CORRUPT_SUFFIX, ".pin")) \
                    or ".tmp." in path.name:
                continue
            size = _size_or_zero(path)
            pinned = self.pin_path_live(path) or bool(
                self.pinned_check and self.pinned_check(path))
            out.append(StoreEntry(key=path.name, path=path, size=size,
                                  last_access=_mtime_or(path, 0.0),
                                  pinned=pinned))
        return out

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> dict:
        budget = max_bytes if max_bytes is not None else self.budget_bytes
        self._emit("gc_runs")
        entries = self.entries()
        used = sum(entry.size for entry in entries)
        return self._evict_lru(
            entries, used, budget if budget is not None else used,
            dry_run, lambda e: (self.drop_pin(e.path),
                                e.path.unlink(missing_ok=True)))

    def verify(self, repair: bool = False) -> List[str]:
        problems: List[str] = []
        if self.validator is None:
            return problems
        for entry in self.entries():
            problem = self.validator(entry.path)
            if problem:
                problems.append(f"{entry.path.name}: {problem}")
                if repair and quarantine_file(entry.path) is not None:
                    self._emit("quarantined")
        return problems

    def stats(self) -> dict:
        entries = self.entries()
        return {
            "tier": self.tier,
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(e.size for e in entries),
            "budget_bytes": self.budget_bytes,
            "pinned": sum(1 for e in entries if e.pinned),
            **self.counters,
        }


def _size_or_zero(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0


def _mtime_or(path: Path, default: float) -> float:
    try:
        return path.stat().st_mtime
    except OSError:
        return float(default or 0.0)
