"""Miss-status holding registers with split-arrival (CWF) support.

The paper's MSHR extension (Sec 4.2.2): on an LLC miss one entry is
allocated and the memory system may return the line in two parts. The
MSHR buffers the parts; the *primary* waiters (instructions blocked on
the requested word) wake as soon as the memory system signals that word
is available — possibly tens of cycles before the fill completes — while
*fill* waiters (secondary misses that arrived while the line was
pending) wake only when the whole line is present and the entry is
freed, matching the paper's handling of early second accesses.

Which part carries which word is the memory system's business; the MSHR
only sequences waiters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

Waiter = Callable[[int], None]


class MSHREntry:
    """One outstanding line fill.

    Slotted: one entry is allocated per LLC miss and its fields are
    touched on every critical-word and fill callback.
    """

    __slots__ = ("line_address", "critical_word", "core_id", "is_prefetch",
                 "write_intent", "primary_waiters", "fill_waiters",
                 "critical_time", "complete_time")

    def __init__(self, line_address: int, critical_word: int, core_id: int,
                 is_prefetch: bool = True, write_intent: bool = False,
                 primary_waiters: Optional[List[Waiter]] = None,
                 fill_waiters: Optional[List[Waiter]] = None,
                 critical_time: Optional[int] = None,
                 complete_time: Optional[int] = None) -> None:
        self.line_address = line_address
        self.critical_word = critical_word      # word the primary demand needs
        self.core_id = core_id
        self.is_prefetch = is_prefetch          # demoted to False by any demand
        self.write_intent = write_intent        # fill will be dirtied (write alloc)
        self.primary_waiters = primary_waiters if primary_waiters is not None else []
        self.fill_waiters = fill_waiters if fill_waiters is not None else []
        self.critical_time = critical_time
        self.complete_time = complete_time

    def __repr__(self) -> str:
        return (f"MSHREntry(line_address={self.line_address:#x}, "
                f"critical_word={self.critical_word}, "
                f"core_id={self.core_id}, is_prefetch={self.is_prefetch})")

    def wake_primaries(self, time: int) -> int:
        """Wake all blocked primary waiters; returns how many."""
        woken = len(self.primary_waiters)
        for waiter in self.primary_waiters:
            waiter(time)
        self.primary_waiters.clear()
        return woken


class MSHRFile:
    """Fixed-capacity MSHR file; callers observe allocation back-pressure."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def telemetry_items(self) -> dict:
        """End-of-run counters exported as ``mshr.*`` gauges."""
        return {
            "capacity": self.capacity,
            "occupancy_at_end": len(self._entries),
            "allocations": self.allocations,
            "merges": self.merges,
            "stalls": self.stalls,
        }

    def get(self, line_address: int) -> Optional[MSHREntry]:
        return self._entries.get(line_address)

    def allocate(self, line_address: int, critical_word: int, core_id: int,
                 is_prefetch: bool = False,
                 write_intent: bool = False) -> Optional[MSHREntry]:
        """Allocate an entry; None if the file is full (caller stalls)."""
        if line_address in self._entries:
            raise RuntimeError(f"duplicate MSHR for line {line_address:#x}")
        if self.full:
            self.stalls += 1
            return None
        entry = MSHREntry(line_address=line_address,
                          critical_word=critical_word,
                          core_id=core_id,
                          is_prefetch=is_prefetch,
                          write_intent=write_intent)
        self._entries[line_address] = entry
        self.allocations += 1
        return entry

    def merge(self, entry: MSHREntry, waiter: Optional[Waiter],
              is_prefetch: bool, write_intent: bool,
              word: Optional[int] = None, now: int = 0) -> None:
        """Attach a secondary miss to an existing entry.

        A secondary miss whose word matches the entry's in-flight
        critical word can use the critical data the moment it arrives
        (it is buffered in the MSHR): it joins the primary waiters, or
        wakes immediately if that part already landed. Any other word
        must wait for the full line.
        """
        self.merges += 1
        entry.is_prefetch = entry.is_prefetch and is_prefetch
        entry.write_intent = entry.write_intent or write_intent
        if waiter is None:
            return
        if word is not None and word == entry.critical_word:
            if entry.critical_time is not None:
                waiter(max(now, entry.critical_time))
            else:
                entry.primary_waiters.append(waiter)
        else:
            entry.fill_waiters.append(waiter)

    def deallocate(self, line_address: int) -> None:
        """Roll back a just-made allocation (memory rejected the read)."""
        self._entries.pop(line_address)

    def release(self, line_address: int, time: int) -> MSHREntry:
        """Free a completed entry; wakes fill (secondary) waiters."""
        entry = self._entries.pop(line_address)
        if entry.complete_time is None:
            raise RuntimeError(f"releasing incomplete MSHR {line_address:#x}")
        entry.wake_primaries(time)  # safety: nothing may stay blocked
        for waiter in entry.fill_waiters:
            waiter(time)
        entry.fill_waiters.clear()
        return entry
