"""Uncore: private L1s, shared L2, MSHRs, prefetcher, memory interface.

This is the glue between cores and a :class:`~repro.memsys.base.MemorySystem`.
It implements:

* the inclusive two-level hierarchy of paper Table 1 (32 KB 2-way private
  L1s, 4 MB 8-way shared L2, both 64 B lines),
* write-allocate write-back semantics — a store miss fetches the line
  (a demand read with no waiter) and dirties it; dirty L2 evictions
  become DRAM writes carrying the line's observed critical word,
* MSHR allocation with back-pressure (core retries on STALL), secondary-
  miss merging, and the CWF wake protocol (primary waiters wake on the
  critical word, secondaries on the completed fill),
* a per-core stride prefetcher whose requests go out tagged low-priority.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from repro.cpu.cache import Cache, CacheConfig, L1_CONFIG, L2_CONFIG
from repro.cpu.core import AccessResult
from repro.cpu.mshr import MSHRFile
from repro.cpu.prefetch import PrefetcherConfig, StridePrefetcher
from repro.dram.request import LINE_BYTES, WORD_BYTES, WORDS_PER_LINE
from repro.memsys.base import MemorySystem
from repro.util.events import EventQueue

WakeFn = Callable[[int], None]


class _LineCritical:
    """Critical-word callback for a line fill (picklable, not a closure)."""

    __slots__ = ("uncore", "line")

    def __init__(self, uncore: "Uncore", line: int) -> None:
        self.uncore = uncore
        self.line = line

    def __call__(self, time: int) -> None:
        self.uncore._on_critical(self.line, time)


class _LineComplete:
    """Fill-complete callback for a line fill (picklable, not a closure)."""

    __slots__ = ("uncore", "line")

    def __init__(self, uncore: "Uncore", line: int) -> None:
        self.uncore = uncore
        self.line = line

    def __call__(self, time: int) -> None:
        self.uncore._on_complete(self.line, time)


@dataclass(frozen=True)
class UncoreConfig:
    l1: CacheConfig = L1_CONFIG
    l2: CacheConfig = L2_CONFIG
    mshr_capacity: int = 256
    prefetcher: PrefetcherConfig = PrefetcherConfig()
    writeback_retry_interval: int = 32
    # Fixed on-chip path cost of a DRAM access (L2-miss handling, MC
    # front end, response interconnect) added to every fill part.
    dram_path_latency: int = 36
    # Ablation: without MSHR split-transfer support, loads wake only
    # when the whole line arrives (no early critical-word wake).
    critical_word_wakeup: bool = True


class Uncore:
    """Shared cache hierarchy in front of a memory system."""

    __slots__ = ("config", "memory", "events", "l1s", "l2", "mshrs",
                 "prefetchers", "_writeback_overflow",
                 "_writeback_retry_scheduled", "demand_miss_observer",
                 "dram_reads", "dram_writes", "prefetch_drops",
                 "_l1_latency", "_l2_latency", "_path_latency",
                 "_cw_wakeup", "_san")

    def __init__(self, num_cores: int, memory: MemorySystem,
                 events: EventQueue,
                 config: UncoreConfig = UncoreConfig()) -> None:
        self.config = config
        self.memory = memory
        self.events = events
        self.l1s: List[Cache] = [Cache(config.l1) for _ in range(num_cores)]
        self.l2 = Cache(config.l2)
        self.mshrs = MSHRFile(config.mshr_capacity)
        self.prefetchers: List[StridePrefetcher] = [
            StridePrefetcher(config.prefetcher) for _ in range(num_cores)
        ]
        # Writebacks that bounced off a full write queue.
        self._writeback_overflow: Deque[Tuple[int, int, int]] = deque()
        self._writeback_retry_scheduled = False
        # Optional observer called on every DRAM-bound demand read:
        # (core_id, line_address, critical_word). Used by the criticality
        # profiler (paper Figures 3 and 4).
        self.demand_miss_observer: Optional[Callable[[int, int, int], None]] = None
        # --- statistics ---
        self.dram_reads = 0
        self.dram_writes = 0
        self.prefetch_drops = 0
        # Per-access latency constants, flattened off the frozen config.
        self._l1_latency = config.l1.latency
        self._l2_latency = config.l2.latency
        self._path_latency = config.dram_path_latency
        self._cw_wakeup = config.critical_word_wakeup
        # Optional protocol sanitizer (read-conservation invariant);
        # attached by SimulationSystem when REPRO_SANITIZE is active.
        self._san = None

    # ------------------------------------------------------------------
    # Core-facing access path
    # ------------------------------------------------------------------

    def access(self, core_id: int, is_write: bool, address: int,
               wake: Optional[WakeFn]) -> AccessResult:
        """One memory instruction. Returns HIT/PENDING/STALL."""
        now = self.events.now
        line = address // LINE_BYTES
        word = (address // WORD_BYTES) % WORDS_PER_LINE
        l1 = self.l1s[core_id]

        l1_line = l1.lookup(line)
        if l1_line is not None:
            if is_write:
                l1_line.dirty = True
            return AccessResult(AccessResult.HIT,
                                now + self._l1_latency)

        l2_line = self.l2.lookup(line)
        self._train_prefetcher(core_id, line)
        if l2_line is not None:
            if is_write:
                l2_line.dirty = True
            self._fill_l1(core_id, line, dirty=False,
                          critical_word=l2_line.critical_word)
            return AccessResult(AccessResult.HIT,
                                now + self._l2_latency)

        # L2 miss -> MSHR.
        entry = self.mshrs.get(line)
        if entry is not None:
            self.mshrs.merge(entry, wake if not is_write else None,
                             is_prefetch=False, write_intent=is_write,
                             word=word, now=now)
            return AccessResult(AccessResult.PENDING)

        entry = self.mshrs.allocate(line, critical_word=word,
                                    core_id=core_id,
                                    is_prefetch=False,
                                    write_intent=is_write)
        if entry is None:
            return AccessResult(AccessResult.STALL)
        if not is_write and wake is not None:
            entry.primary_waiters.append(wake)
        accepted = self.memory.issue_read(
            line_address=line, critical_word=word, core_id=core_id,
            is_prefetch=False,
            on_critical=_LineCritical(self, line),
            on_complete=_LineComplete(self, line))
        if not accepted:
            # Roll the allocation back; the core will retry.
            self.mshrs.deallocate(line)
            return AccessResult(AccessResult.STALL)
        self.dram_reads += 1
        if self._san is not None:
            self._san.note_read_issued(line, self.events.now)
        if self.demand_miss_observer is not None:
            self.demand_miss_observer(core_id, line, word)
        return AccessResult(AccessResult.PENDING)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------

    def _on_critical(self, line: int, time: int) -> None:
        entry = self.mshrs.get(line)
        if entry is None:
            return
        if not self._cw_wakeup:
            return  # ablation: wait for the full line
        time += self._path_latency
        entry.critical_time = time
        entry.wake_primaries(time)

    def _on_complete(self, line: int, time: int) -> None:
        entry = self.mshrs.get(line)
        if entry is None:
            return
        time += self._path_latency
        entry.complete_time = time
        released = self.mshrs.release(line, time)
        if self._san is not None:
            self._san.note_read_retired(line, time)
        victim = self.l2.insert(line, dirty=released.write_intent,
                                critical_word=released.critical_word)
        if victim is not None:
            self._handle_l2_eviction(victim)
        if not released.is_prefetch:
            self._fill_l1(released.core_id, line,
                          dirty=False,
                          critical_word=released.critical_word)

    def _fill_l1(self, core_id: int, line: int, dirty: bool,
                 critical_word: int) -> None:
        victim = self.l1s[core_id].insert(line, dirty=dirty,
                                          critical_word=critical_word)
        if victim is not None and victim.dirty:
            # Inclusive hierarchy: the victim is (normally) in L2.
            l2_line = self.l2.peek(victim.line_address)
            if l2_line is not None:
                l2_line.dirty = True
            else:
                self._issue_writeback(victim.line_address,
                                      victim.critical_word, core_id)

    def _handle_l2_eviction(self, victim) -> None:
        dirty = victim.dirty
        critical_word = victim.critical_word
        # Back-invalidate all L1 copies (inclusion).
        for core_id, l1 in enumerate(self.l1s):
            l1_copy = l1.invalidate(victim.line_address)
            if l1_copy is not None and l1_copy.dirty:
                dirty = True
        if dirty:
            self._issue_writeback(victim.line_address, critical_word,
                                  core_id=0)

    # ------------------------------------------------------------------
    # Writebacks
    # ------------------------------------------------------------------

    def _issue_writeback(self, line: int, critical_word: int,
                         core_id: int) -> None:
        if self.memory.issue_write(line, critical_word, core_id):
            self.dram_writes += 1
            return
        self._writeback_overflow.append((line, critical_word, core_id))
        self._schedule_writeback_retry()

    def _schedule_writeback_retry(self) -> None:
        if self._writeback_retry_scheduled:
            return
        self._writeback_retry_scheduled = True
        self.events.schedule_after(self.config.writeback_retry_interval,
                                   self._drain_writeback_overflow)

    def _drain_writeback_overflow(self) -> None:
        self._writeback_retry_scheduled = False
        while self._writeback_overflow:
            line, critical_word, core_id = self._writeback_overflow[0]
            if not self.memory.issue_write(line, critical_word, core_id):
                self._schedule_writeback_retry()
                return
            self.dram_writes += 1
            self._writeback_overflow.popleft()

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------

    def _train_prefetcher(self, core_id: int, line: int) -> None:
        targets = self.prefetchers[core_id].observe(line)
        for target in targets:
            self._issue_prefetch(core_id, target)

    def _issue_prefetch(self, core_id: int, line: int) -> None:
        if self.l2.peek(line) is not None or self.mshrs.get(line) is not None:
            return
        if self.mshrs.full:
            self.prefetch_drops += 1
            return
        entry = self.mshrs.allocate(line, critical_word=0, core_id=core_id,
                                    is_prefetch=True, write_intent=False)
        accepted = self.memory.issue_read(
            line_address=line, critical_word=0, core_id=core_id,
            is_prefetch=True,
            on_critical=_LineCritical(self, line),
            on_complete=_LineComplete(self, line))
        if not accepted:
            self.mshrs.deallocate(line)
            self.prefetch_drops += 1
            return
        self.dram_reads += 1
        if self._san is not None:
            self._san.note_read_issued(line, self.events.now)
