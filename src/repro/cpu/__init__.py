"""CPU-side substrate: cores, caches, MSHRs, prefetcher.

The core model follows the USIMM front-end (the memory simulator the
paper builds on): a trace-driven in-order-retire window with a 64-entry
ROB and 4-wide fetch/retire. Memory reads block retirement at the ROB
head until their *critical word* arrives; independent misses inside the
window overlap, producing realistic memory-level parallelism.
"""

from repro.cpu.cache import Cache, CacheConfig, L1_CONFIG, L2_CONFIG
from repro.cpu.mshr import MSHRFile, MSHREntry
from repro.cpu.prefetch import StridePrefetcher, PrefetcherConfig
from repro.cpu.core import Core, CoreConfig, TraceRecord
from repro.cpu.uncore import Uncore, UncoreConfig

__all__ = [
    "Cache", "CacheConfig", "L1_CONFIG", "L2_CONFIG",
    "MSHRFile", "MSHREntry",
    "StridePrefetcher", "PrefetcherConfig",
    "Core", "CoreConfig", "TraceRecord",
    "Uncore", "UncoreConfig",
]
