"""Per-core stride prefetcher (paper Section 5).

Tracks a small table of recent access streams; when the same stride is
seen ``confidence_threshold`` times in a row, it issues prefetches
``degree`` lines ahead. Prefetch requests are tagged so the memory
controller can deprioritise them behind demand requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List



@dataclass(frozen=True)
class PrefetcherConfig:
    table_size: int = 16
    confidence_threshold: int = 3
    degree: int = 2
    distance: int = 3   # lines ahead of the trained stream
    enabled: bool = True


@dataclass
class _StreamEntry:
    last_line: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Stream table keyed by region (line address / 64 lines)."""

    REGION_LINES = 64

    def __init__(self, config: PrefetcherConfig = PrefetcherConfig()) -> None:
        self.config = config
        self._table: Dict[int, _StreamEntry] = {}
        self.issued = 0
        self.trained = 0

    def observe(self, line_address: int) -> List[int]:
        """Feed one demand L2 access; returns line addresses to prefetch."""
        if not self.config.enabled:
            return []
        region = line_address // self.REGION_LINES
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.config.table_size:
                # Evict the stalest region (arbitrary FIFO-ish choice).
                self._table.pop(next(iter(self._table)))
            self._table[region] = _StreamEntry(last_line=line_address)
            return []
        stride = line_address - entry.last_line
        entry.last_line = line_address
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
        else:
            entry.stride = stride
            entry.confidence = 1
            return []
        if entry.confidence < self.config.confidence_threshold:
            return []
        self.trained += 1
        base = line_address + entry.stride * self.config.distance
        out = []
        for i in range(self.config.degree):
            target = base + i * entry.stride
            if target >= 0:
                out.append(target)
        self.issued += len(out)
        return out
