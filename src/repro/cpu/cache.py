"""Set-associative write-back caches (paper Table 1 hierarchy).

Functional model with LRU replacement; latency is applied by the uncore.
Lines carry two bits of metadata the CWF architecture needs: the dirty
bit, and the *observed critical word* — the word whose demand miss
fetched the line, which the adaptive placement scheme stores back to
memory on dirty eviction (paper Sec 4.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.request import LINE_BYTES


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = LINE_BYTES
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(f"{self.name}: size not divisible by way size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


L1_CONFIG = CacheConfig(name="L1D", size_bytes=32 * 1024, associativity=2,
                        latency=1)
L2_CONFIG = CacheConfig(name="L2", size_bytes=4 * 1024 * 1024,
                        associativity=8, latency=10)


class CacheLine:
    """Tag-store entry.

    Slotted: one is allocated per resident line (hundreds of thousands
    during L2 prewarm) and probed on every access.
    """

    __slots__ = ("line_address", "dirty", "critical_word")

    def __init__(self, line_address: int, dirty: bool = False,
                 critical_word: int = 0) -> None:
        self.line_address = line_address
        self.dirty = dirty
        self.critical_word = critical_word

    def __repr__(self) -> str:
        return (f"CacheLine(line_address={self.line_address:#x}, "
                f"dirty={self.dirty}, critical_word={self.critical_word})")


class EvictedLine:
    """What :meth:`Cache.insert` pushed out, if anything."""

    __slots__ = ("line_address", "dirty", "critical_word")

    def __init__(self, line_address: int, dirty: bool,
                 critical_word: int) -> None:
        self.line_address = line_address
        self.dirty = dirty
        self.critical_word = critical_word

    def __repr__(self) -> str:
        return (f"EvictedLine(line_address={self.line_address:#x}, "
                f"dirty={self.dirty}, critical_word={self.critical_word})")


class Cache:
    """One set-associative LRU cache level.

    Sets are dicts ordered by recency (Python dicts preserve insertion
    order; re-inserting moves a key to MRU position).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Geometry flattened to ints: ``num_sets`` is a derived property
        # on the (frozen) config, and the set-index modulo runs on every
        # probe and fill, so both are resolved once here.
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._sets: list[Dict[int, CacheLine]] = [
            {} for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_index(self, line_address: int) -> int:
        return line_address % self._num_sets

    def lookup(self, line_address: int, touch: bool = True) -> Optional[CacheLine]:
        """Probe; returns the line and updates LRU on hit."""
        s = self._sets[line_address % self._num_sets]
        line = s.get(line_address)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            del s[line_address]
            s[line_address] = line
        return line

    def peek(self, line_address: int) -> Optional[CacheLine]:
        """Probe without updating LRU or hit/miss counters."""
        return self._sets[line_address % self._num_sets].get(line_address)

    def insert(self, line_address: int, dirty: bool = False,
               critical_word: int = 0) -> Optional[EvictedLine]:
        """Fill a line; returns the victim if one was evicted."""
        s = self._sets[line_address % self._num_sets]
        existing = s.get(line_address)
        if existing is not None:
            del s[line_address]
            if dirty:
                existing.dirty = True
            s[line_address] = existing
            return None
        victim: Optional[EvictedLine] = None
        if len(s) >= self._assoc:
            lru_addr = next(iter(s))
            lru = s.pop(lru_addr)
            self.evictions += 1
            if lru.dirty:
                self.dirty_evictions += 1
            victim = EvictedLine(lru.line_address, lru.dirty,
                                 lru.critical_word)
        s[line_address] = CacheLine(line_address, dirty, critical_word)
        return victim

    def invalidate(self, line_address: int) -> Optional[CacheLine]:
        """Remove a line (no writeback here; caller decides)."""
        return self._sets[line_address % self._num_sets].pop(line_address, None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
