"""Event-driven out-of-order core model (USIMM-style front end).

The model captures exactly what matters for main-memory studies:

* instructions fetch at ``width`` per cycle into a ``rob_size`` window;
* non-memory instructions and stores complete one cycle after fetch;
* loads complete when their **critical word** arrives from the cache
  hierarchy / DRAM;
* retirement is in-order at ``width`` per cycle, so a load at the ROB
  head stalls everything behind it — but independent loads inside the
  window overlap (memory-level parallelism).

Rather than stepping every CPU cycle, the core exploits the structure of
the recurrence: retirement advances at a fixed rate between *stall
breakpoints*, and breakpoints only occur at loads. Fetch is tracked in
quarter-cycles (4-wide ⇒ one instruction per quarter cycle), and the
ROB-full condition — fetch may not run more than ``rob_size``
instructions past the oldest unresolved load — is what throttles run-
ahead. This yields an O(#memory-ops) simulation that matches a per-cycle
model to within a cycle or two per stall.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, NamedTuple, Optional

from repro.util.cycles import ceil_div
from repro.util.events import EventQueue


class TraceRecord(NamedTuple):
    """One memory instruction preceded by ``gap`` non-memory instructions."""

    gap: int
    is_write: bool
    address: int


@dataclass(frozen=True)
class CoreConfig:
    """Paper Table 1 processor parameters."""

    rob_size: int = 64
    width: int = 4
    retry_interval: int = 16   # cycles between retries on MSHR/queue stalls
    use_latency: int = 10      # L2-to-register path after wake-up


class AccessResult:
    """What the uncore tells the core about an access."""

    HIT = "hit"          # completes at a known time
    PENDING = "pending"  # memory will call back
    STALL = "stall"      # resources full; retry later

    __slots__ = ("status", "complete_time")

    def __init__(self, status: str, complete_time: int = 0) -> None:
        self.status = status
        self.complete_time = complete_time


class _IssueEvent:
    """Deferred ``core._issue(record, index)`` call.

    A plain slotted callable instead of a closure so a scheduled (or
    retry-pending) issue survives pickling when the simulator is
    checkpointed mid-run.
    """

    __slots__ = ("core", "record", "index")

    def __init__(self, core: "Core", record: "TraceRecord",
                 index: int) -> None:
        self.core = core
        self.record = record
        self.index = index

    def __call__(self) -> None:
        self.core._issue(self.record, self.index)


class _LoadWake:
    """Wake callback handed to the uncore for a pending load."""

    __slots__ = ("core", "index")

    def __init__(self, core: "Core", index: int) -> None:
        self.core = core
        self.index = index

    def __call__(self, time: int) -> None:
        core = self.core
        core._resolve(self.index, time + core.config.use_latency)


class Core:
    """One trace-driven core attached to an uncore.

    Slotted — a run holds only a handful of cores, but the fetch engine
    reads/writes these fields once per trace record. ``trace`` is any
    iterable of records — a materialized list or a lazy generator. The
    core consumes it through a one-record lookahead (``_next``), pulling
    records only as fetch advances, so a streaming source never holds a
    whole per-core trace in memory. The core takes ownership of the
    iterable; callers must not consume or mutate it afterwards.
    """

    __slots__ = ("core_id", "_records", "_next", "uncore", "events",
                 "config", "on_finish", "gap_left", "index", "fetch_q",
                 "bp_index", "bp_time", "unresolved", "arrivals",
                 "finished", "finish_time", "loads_issued",
                 "stores_issued", "stall_retries")

    def __init__(self, core_id: int, trace: Iterable[TraceRecord],
                 uncore, events: EventQueue,
                 config: CoreConfig = CoreConfig(),
                 on_finish: Optional[Callable[["Core"], None]] = None) -> None:
        self.core_id = core_id
        self._records = iter(trace)
        self._next = next(self._records, None)  # one-record lookahead
        self.uncore = uncore
        self.events = events
        self.config = config
        self.on_finish = on_finish
        # --- pipeline state ---
        self.gap_left = self._next.gap if self._next is not None else 0
        self.index = 0               # global index of next instr to fetch
        self.fetch_q = 0             # fetch clock in quarter cycles
        self.bp_index = -1           # last retirement breakpoint (instr idx)
        self.bp_time = 0             # ... and its retire time (cycles)
        self.unresolved: deque[int] = deque()   # load indices, in order
        self.arrivals: Dict[int, int] = {}
        self.finished = False
        self.finish_time: Optional[int] = None
        # --- statistics ---
        self.loads_issued = 0
        self.stores_issued = 0
        self.stall_retries = 0

    # ------------------------------------------------------------------

    @property
    def instructions(self) -> int:
        """Instructions retired once finished (trace length in instrs)."""
        return self.index

    def ipc(self) -> float:
        if not self.finish_time:
            return 0.0
        return self.index / self.finish_time

    def telemetry_items(self) -> dict:
        """End-of-run counters exported as ``core<i>.*`` gauges."""
        return {
            "instructions": self.index,
            "loads_issued": self.loads_issued,
            "stores_issued": self.stores_issued,
            "rob_stall_retries": self.stall_retries,
            "finish_cycle": self.finish_time or 0,
            "ipc": self.ipc(),
        }

    def start(self) -> None:
        """Kick off the core at the current event time."""
        self.advance()

    # ------------------------------------------------------------------
    # Fetch engine
    # ------------------------------------------------------------------

    def _window_room(self) -> int:
        """Instructions fetchable before the ROB-full condition binds."""
        if not self.unresolved:
            return 1 << 30
        return self.unresolved[0] + self.config.rob_size - self.index

    def advance(self) -> None:
        """Run the fetch engine until it blocks or the trace ends."""
        if self.finished:
            return
        while True:
            record = self._next
            if record is None:
                if not self.unresolved:
                    self._finish()
                return
            room = self._window_room()
            if room <= 0:
                return  # ROB full behind the oldest outstanding load
            if self.gap_left > 0:
                take = min(self.gap_left, room)
                self.fetch_q += take
                self.index += take
                self.gap_left -= take
                if take == room:
                    return
            # Fetch the memory instruction itself.
            if self._window_room() <= 0:
                return
            self.fetch_q += 1
            instr_index = self.index
            self.index += 1
            fetch_time = self.fetch_q // 4
            if not record.is_write:
                self.unresolved.append(instr_index)
            self._next = next(self._records, None)
            if self._next is not None:
                self.gap_left = self._next.gap
            issue_at = max(self.events.now, fetch_time)
            self.events.schedule(issue_at,
                                 _IssueEvent(self, record, instr_index))

    # ------------------------------------------------------------------
    # Memory interface
    # ------------------------------------------------------------------

    def _issue(self, record: TraceRecord, instr_index: int) -> None:
        now = self.events.now
        if record.is_write:
            result = self.uncore.access(self.core_id, True, record.address,
                                        wake=None)
            if result.status == AccessResult.STALL:
                self.stall_retries += 1
                self.events.schedule(now + self.config.retry_interval,
                                     _IssueEvent(self, record, instr_index))
                return
            self.stores_issued += 1
            return
        # Load: completion resolves the instruction.
        wake = _LoadWake(self, instr_index)
        result = self.uncore.access(self.core_id, False, record.address,
                                    wake=wake)
        if result.status == AccessResult.STALL:
            self.stall_retries += 1
            self.events.schedule(now + self.config.retry_interval,
                                 _IssueEvent(self, record, instr_index))
            return
        self.loads_issued += 1
        if result.status == AccessResult.HIT:
            self._resolve(instr_index, result.complete_time)

    # ------------------------------------------------------------------
    # Retirement bookkeeping
    # ------------------------------------------------------------------

    def _retire_linear(self, idx: int) -> int:
        """Retirement time of ``idx`` assuming no stalls after the last
        breakpoint (width instructions per cycle)."""
        return self.bp_time + ceil_div(max(0, idx - self.bp_index),
                                       self.config.width)

    def _resolve(self, instr_index: int, arrival: int) -> None:
        """A load's data is usable at ``arrival``."""
        self.arrivals[instr_index] = arrival
        progressed = False
        while self.unresolved and self.unresolved[0] in self.arrivals:
            idx = self.unresolved.popleft()
            time = self.arrivals.pop(idx)
            retire = max(time, self._retire_linear(idx))
            self.bp_index, self.bp_time = idx, retire
            # Refill gate: if fetch had hit the ROB-full wall for this
            # load, it resumes when the load retires.
            if self.index >= idx + self.config.rob_size:
                self.fetch_q = max(self.fetch_q, retire * 4)
            progressed = True
        if progressed:
            self.advance()

    def _finish(self) -> None:
        self.finished = True
        last = max(self._retire_linear(self.index - 1),
                   self.fetch_q // 4 + 1) if self.index else 0
        self.finish_time = last
        if self.on_finish is not None:
            self.on_finish(self)
