"""repro — Critical-word-first heterogeneous DRAM memory simulator.

A from-scratch Python reproduction of *"Leveraging Heterogeneity in DRAM
Main Memories to Accelerate Critical Word Access"* (MICRO 2012): a
cycle-level DRAM simulator for DDR3 / LPDDR2 / RLDRAM3, a USIMM-style
multi-core front end, the paper's heterogeneous critical-word-first
memory organisations, and an experiment harness regenerating every
table and figure in the paper's evaluation.

Quickstart::

    from repro import SimConfig, run_benchmark

    config = SimConfig(target_dram_reads=4000)
    base = run_benchmark("leslie3d", config.with_memory("ddr3"))
    rl = run_benchmark("leslie3d", config.with_memory("rl"))
    print(f"RL speedup: {rl.speedup_over(base):.3f}")

Memory organisations are pluggable: ``repro.memsys.registry`` maps
names like ``"ddr3"``, ``"rl"``, or ``"hmc_cwf"`` to backend factories,
and :func:`register_backend` adds new ones (see DESIGN.md, "Adding a
memory organisation").
"""

from repro.sim.config import MemoryKind, SimConfig, TABLE1
from repro.sim.system import SimResult, SimulationSystem, run_benchmark, make_traces
from repro.core.cwf import CriticalWordMemory, CWFConfig, CWFPolicy, HeteroPair
from repro.core.criticality import CriticalityProfiler
from repro.core.placement import PagePlacementMemory
from repro.memsys.homogeneous import HomogeneousMemory
from repro.memsys.registry import (
    BackendDescriptor,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
)
from repro.workloads.profiles import PROFILES, benchmark_names, profile_for

__version__ = "1.0.0"

__all__ = [
    "MemoryKind", "SimConfig", "TABLE1",
    "SimResult", "SimulationSystem", "run_benchmark", "make_traces",
    "CriticalWordMemory", "CWFConfig", "CWFPolicy", "HeteroPair",
    "CriticalityProfiler", "PagePlacementMemory", "HomogeneousMemory",
    "BackendDescriptor", "backend_names", "get_backend", "list_backends",
    "register_backend",
    "PROFILES", "benchmark_names", "profile_for",
    "__version__",
]
