"""System energy model — paper Section 6.1.3 "Methodology".

The paper's assumptions, implemented verbatim:

* In the **baseline**, the DRAM system consumes 25 % of total system
  power; the remaining 75 % is the CPU side.
* One third of CPU power is constant (leakage + clock); the other two
  thirds scale linearly with CPU activity (we use relative throughput,
  i.e. aggregate IPC vs. the baseline run, as the activity factor).
* DRAM power for each configuration comes from the Micron-style power
  model fed with simulated activity factors.
* Energy = power x execution time; the paper reports system energy
  normalised to the DDR3 baseline (their Figure 10) and memory energy
  (the -15 % headline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.device import DRAMKind
from repro.dram.power import default_power_model
from repro.memsys.base import MemorySystem
from repro.sim.system import SimResult

BASELINE_DRAM_SYSTEM_FRACTION = 0.25
CPU_STATIC_FRACTION = 1.0 / 3.0


@dataclass
class EnergyReport:
    """Energy of one configuration relative to the baseline run."""

    benchmark: str
    memory: str
    memory_power_mw: float
    cpu_power_mw: float
    elapsed_cycles: int
    normalized_memory_power: float
    normalized_memory_energy: float
    normalized_system_energy: float
    normalized_exec_time: float


class SystemEnergyModel:
    """Computes Figure 10-style normalised system energy."""

    def __init__(self, baseline: SimResult) -> None:
        if baseline.memory_power_mw <= 0:
            raise ValueError("baseline run has no memory power")
        self.baseline = baseline
        # DRAM is 25 % of baseline system power.
        self.baseline_system_mw = (baseline.memory_power_mw
                                   / BASELINE_DRAM_SYSTEM_FRACTION)
        self.cpu_peak_mw = self.baseline_system_mw - baseline.memory_power_mw
        self.cpu_static_mw = self.cpu_peak_mw * CPU_STATIC_FRACTION
        self.cpu_dynamic_mw = self.cpu_peak_mw - self.cpu_static_mw

    def cpu_power(self, result: SimResult) -> float:
        """CPU power scaled by activity (relative throughput)."""
        activity = (result.throughput / self.baseline.throughput
                    if self.baseline.throughput else 1.0)
        return self.cpu_static_mw + self.cpu_dynamic_mw * min(2.0, activity)

    def report(self, result: SimResult) -> EnergyReport:
        base = self.baseline
        cpu_mw = self.cpu_power(result)
        base_cpu_mw = self.cpu_static_mw + self.cpu_dynamic_mw
        t_ratio = result.elapsed_cycles / base.elapsed_cycles
        mem_energy = result.memory_power_mw * result.elapsed_cycles
        base_mem_energy = base.memory_power_mw * base.elapsed_cycles
        sys_energy = (result.memory_power_mw + cpu_mw) * result.elapsed_cycles
        base_sys_energy = ((base.memory_power_mw + base_cpu_mw)
                           * base.elapsed_cycles)
        return EnergyReport(
            benchmark=result.benchmark,
            memory=result.memory,
            memory_power_mw=result.memory_power_mw,
            cpu_power_mw=cpu_mw,
            elapsed_cycles=result.elapsed_cycles,
            normalized_memory_power=result.memory_power_mw / base.memory_power_mw,
            normalized_memory_energy=mem_energy / base_mem_energy,
            normalized_system_energy=sys_energy / base_sys_energy,
            normalized_exec_time=t_ratio,
        )


def memory_power_report(memory: MemorySystem, elapsed_cycles: int,
                        server_adapted_lpdram: bool = True) -> Dict[str, float]:
    """Per-family memory power (mW) for an arbitrary memory system.

    ``server_adapted_lpdram=False`` models the Malladi-style unterminated
    LPDRAM variant of Section 7.2 (no ODT/DLL adders, native currents).
    """
    activities = memory.chip_activities(elapsed_cycles)
    out: Dict[str, float] = {}
    for key, chips in activities.items():
        family = key.split(":")[-1]
        model = default_power_model(DRAMKind(family),
                                    server_adapted=server_adapted_lpdram)
        out[key] = sum(model.compute(a).total_mw for a in chips)
    return out


def weighted_speedup(shared_ipcs, alone_ipcs) -> float:
    """The paper's throughput metric: sum_i IPC_shared_i / IPC_alone_i."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("core count mismatch")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("IPC_alone must be positive")
        total += shared / alone
    return total
