"""System-level energy roll-up (paper Section 6.1.3 methodology)."""

from repro.energy.model import (
    SystemEnergyModel,
    EnergyReport,
    memory_power_report,
    weighted_speedup,
)

__all__ = ["SystemEnergyModel", "EnergyReport", "memory_power_report",
           "weighted_speedup"]
