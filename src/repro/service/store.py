"""Durable job manifests: the piece of the service that survives
restarts.

The :class:`JobStore` persists one JSON manifest per job (atomically,
temp file + ``os.replace``, same discipline as
:class:`~repro.experiments.runner.ResultCache`). Simulation *results*
are not duplicated here — workers write them into the shared
``ResultCache`` keyed by v8 spec keys, so a restarted server reloads
queued/running manifests, re-enqueues them, and the executor recalls
every spec that already completed instead of recomputing it. Finished
jobs keep their result rows and rendered table in the manifest so
``GET /v1/jobs/<id>`` answers without touching the cache.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional

from repro.service.jobs import TERMINAL_STATES, Job

DEFAULT_STATE_DIR = ".repro_jobs"


class JobStore:
    """Directory of ``<job-id>.json`` manifests with atomic writes."""

    def __init__(self, directory: str = DEFAULT_STATE_DIR) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        # Job ids are generated server-side (j-<hex>), but manifests are
        # looked up by client-supplied ids: refuse path separators.
        if "/" in job_id or os.sep in job_id or job_id in (".", ".."):
            raise ValueError(f"invalid job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    def save(self, job: Job) -> None:
        path = self._path(job.id)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(job.to_dict(), default=str))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def load(self, job_id: str) -> Optional[Job]:
        try:
            path = self._path(job_id)
        except ValueError:
            return None
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None
        if not isinstance(data, dict):
            return None
        try:
            return Job.from_dict(data)
        except Exception:
            # A manifest this server version cannot parse (schema drift,
            # hand-edited file) reads as absent rather than crashing
            # every listing that walks the directory.
            return None

    def job_ids(self) -> List[str]:
        return sorted(p.stem for p in self.directory.glob("j-*.json"))

    def load_all(self) -> List[Job]:
        jobs = [self.load(job_id) for job_id in self.job_ids()]
        return [job for job in jobs if job is not None]

    def unfinished(self) -> List[Job]:
        """Jobs a previous server left queued or running, oldest first."""
        pending = [job for job in self.load_all()
                   if job.state not in TERMINAL_STATES]
        return sorted(pending, key=lambda job: job.created_unix)
