"""Durable job manifests: the piece of the service that survives
restarts.

The :class:`JobStore` persists one JSON manifest per job through the
shared artifact-store write path
(:func:`~repro.store.atomic_write_bytes`: temp sibling + fsync +
``os.replace`` + parent-dir fsync). Before that unification manifests
were replaced without any fsync, so a power loss shortly after a
"durable" save could surface a zero-length committed file that restart
recovery then quarantined — silently dropping a queued job. Simulation
*results* are not duplicated here — workers write them into the shared
``ResultCache`` keyed by v8 spec keys, so a restarted server reloads
queued/running manifests, re-enqueues them, and the executor recalls
every spec that already completed instead of recomputing it. Finished
jobs keep their result rows and rendered table in the manifest so
``GET /v1/jobs/<id>`` answers without touching the cache.

With ``budget_bytes`` set, :meth:`gc` bounds the directory by
LRU-evicting *terminal* manifests (queued/running ones are pinned by
state and never touched), oldest save first.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.service.jobs import TERMINAL_STATES, Job
from repro.store import FileStore, atomic_write_bytes, quarantine_file
from repro.telemetry.session import active_session

DEFAULT_STATE_DIR = ".repro_jobs"


def _manifest_pinned(path: Path) -> bool:
    """Eviction must never touch a manifest still queued or running."""
    try:
        data = json.loads(path.read_text())
        return (not isinstance(data, dict)
                or data.get("state") not in TERMINAL_STATES)
    except (OSError, ValueError):
        return True  # unreadable: refuse to evict what we can't judge


class JobStore:
    """Directory of ``<job-id>.json`` manifests with durable writes."""

    def __init__(self, directory: str = DEFAULT_STATE_DIR,
                 budget_bytes: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.counters: Dict[str, int] = {"manifests_quarantined": 0}
        self.file_store = FileStore(self.directory, "j-*.json",
                                    tier="manifests",
                                    budget_bytes=budget_bytes,
                                    pinned_check=_manifest_pinned)

    def _path(self, job_id: str) -> Path:
        # Job ids are generated server-side (j-<hex>), but manifests are
        # looked up by client-supplied ids: refuse path separators.
        if "/" in job_id or os.sep in job_id or job_id in (".", ".."):
            raise ValueError(f"invalid job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    def save(self, job: Job) -> None:
        atomic_write_bytes(self._path(job.id),
                           json.dumps(job.to_dict(), default=str).encode())

    def load(self, job_id: str) -> Optional[Job]:
        """Recall a manifest; corruption quarantines the file.

        Torn/truncated JSON, non-dict payloads, and manifests this
        server version cannot parse (schema drift, hand-edited files)
        all read as absent rather than crashing every listing that
        walks the directory — but the offending file is renamed to
        ``<manifest>.json.corrupt`` first (the
        :class:`~repro.experiments.runner.ResultCache` discipline) so
        the evidence survives for a post-mortem instead of being
        re-clobbered by the next :meth:`save`, and the event is counted
        (``service.manifests_quarantined`` in ``/metrics``). A plain
        read race (``OSError``) stays a silent miss — the file may be
        mid-replace, not corrupt.
        """
        try:
            path = self._path(job_id)
        except ValueError:
            return None
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._quarantine(path)
        except OSError:
            return None
        if not isinstance(data, dict):
            return self._quarantine(path)
        try:
            return Job.from_dict(data)
        except Exception:
            return self._quarantine(path)

    def _quarantine(self, path: Path) -> None:
        """Set a corrupt manifest aside as ``<manifest>.json.corrupt``.

        The renamed file no longer matches the ``j-*.json`` glob, so
        listings and recovery skip it naturally.
        """
        quarantine_file(path)
        self.counters["manifests_quarantined"] += 1
        session = active_session()
        if session is not None:
            session.incr("service.manifests_quarantined")
        return None

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> dict:
        """Bound the manifest directory (see :meth:`FileStore.gc`)."""
        return self.file_store.gc(max_bytes=max_bytes, dry_run=dry_run)

    def store_stats(self) -> dict:
        return self.file_store.stats()

    def job_ids(self) -> List[str]:
        return sorted(p.stem for p in self.directory.glob("j-*.json"))

    def load_all(self) -> List[Job]:
        jobs = [self.load(job_id) for job_id in self.job_ids()]
        return [job for job in jobs if job is not None]

    def unfinished(self) -> List[Job]:
        """Jobs a previous server left queued or running, oldest first."""
        pending = [job for job in self.load_all()
                   if job.state not in TERMINAL_STATES]
        return sorted(pending, key=lambda job: job.created_unix)
