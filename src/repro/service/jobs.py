"""Job model and request validation for the simulation service.

A *job* is one client submission: a batch of
:class:`~repro.experiments.specs.RunSpec` simulations (given explicitly
and/or expanded from a named experiment), executed under the server's
:class:`~repro.experiments.runner.ExperimentConfig` with optional
per-job overrides (``reads``, ``benchmarks``). Jobs are plain data —
fully JSON-serialisable both over the wire and into the
:class:`~repro.service.store.JobStore` — so a restarted server can
reload and resume them.

Validation happens here, before anything is queued: memory backends
resolve against the memsys registry (unknown names answer the
registry's did-you-mean message), benchmarks against the workload
registry (same did-you-mean treatment; ``trace:<path>`` names resolve
server-side, so the file must exist where the server runs),
experiments against ``ALL_EXPERIMENTS``, and named runners against the
runner registry. A bad request is a
:class:`JobValidationError` (HTTP 400), never a crashed worker later.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.specs import RUNNER_REGISTRY, RunSpec

# Job lifecycle states. queued -> running -> done | failed; queued and
# running jobs found in the store at startup are recovered (re-queued).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL_STATES = (DONE, FAILED)

JOB_SCHEMA_VERSION = 1

#: Top-level keys a POST /v1/jobs payload may carry.
REQUEST_KEYS = ("specs", "experiment", "reads", "benchmarks", "tag")


class JobValidationError(ValueError):
    """A submission that can never run; maps to HTTP 400."""


def new_job_id() -> str:
    return f"j-{uuid.uuid4().hex[:12]}"


# ---------------------------------------------------------------------------
# RunSpec <-> JSON
# ---------------------------------------------------------------------------


def spec_to_dict(spec: RunSpec) -> dict:
    return {
        "benchmark": spec.benchmark,
        "memory": spec.memory,
        "variant": spec.variant,
        "overrides": [list(pair) for pair in spec.overrides],
        "runner": spec.runner,
        "params": [list(pair) for pair in spec.params],
    }


def spec_from_dict(data: object) -> RunSpec:
    """Rebuild a RunSpec from its JSON form, validating every axis."""
    if not isinstance(data, dict):
        raise JobValidationError(
            f"each spec must be an object, got {type(data).__name__}")
    allowed = {"benchmark", "memory", "variant", "overrides", "runner",
               "params"}
    unknown = set(data) - allowed
    if unknown:
        raise JobValidationError(
            f"unknown spec field(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}")
    benchmark = data.get("benchmark", "")
    if not isinstance(benchmark, str) or not benchmark:
        raise JobValidationError("spec.benchmark must be a non-empty string")
    _check_benchmarks([benchmark])
    runner = data.get("runner", "") or ""
    if runner:
        import repro.experiments  # noqa: F401  (populate the registry)
        import repro.sweep  # noqa: F401
        if runner not in RUNNER_REGISTRY:
            raise JobValidationError(
                f"unknown named runner {runner!r}; "
                f"known: {sorted(RUNNER_REGISTRY)}")
    try:
        return RunSpec(
            benchmark=benchmark,
            memory=data.get("memory", "ddr3"),
            variant=str(data.get("variant", "") or ""),
            overrides=_pairs(data.get("overrides", ()), "overrides"),
            runner=runner,
            params=_pairs(data.get("params", ()), "params"))
    except JobValidationError:
        raise
    except Exception as exc:  # UnknownBackendError carries did-you-mean
        raise JobValidationError(str(exc)) from None


def _pairs(raw: object, what: str) -> Tuple[Tuple[str, object], ...]:
    if not isinstance(raw, (list, tuple)):
        raise JobValidationError(
            f"spec.{what} must be a list of [name, value] pairs")
    pairs = []
    for item in raw:
        if (not isinstance(item, (list, tuple)) or len(item) != 2
                or not isinstance(item[0], str)):
            raise JobValidationError(
                f"spec.{what} entries must be [name, value] pairs, "
                f"got {item!r}")
        value = item[1]
        if isinstance(value, list):
            value = tuple(value)
        pairs.append((item[0], value))
    return tuple(pairs)


def _check_benchmarks(names) -> None:
    """Resolve each name against the workload registry; an unknown
    workload answers the registry's did-you-mean message as a 400."""
    from repro.workloads.registry import WorkloadError, resolve_workload

    for name in names:
        try:
            resolve_workload(name)
        except WorkloadError as exc:
            raise JobValidationError(str(exc)) from None


# ---------------------------------------------------------------------------
# Job record
# ---------------------------------------------------------------------------


@dataclass
class SpecEntry:
    """One spec slot of a job, with its cache key and coalescing flags."""

    spec: RunSpec
    key: str
    coalesced: bool = False  # key was already wanted by another job
    cached: bool = False     # key was already resolved in the cache
    state: str = "pending"   # pending | done | failed

    def to_dict(self) -> dict:
        return {"spec": spec_to_dict(self.spec), "key": self.key,
                "label": self.spec.label, "coalesced": self.coalesced,
                "cached": self.cached, "state": self.state}


@dataclass
class Job:
    """One submission, from queueing through persisted results."""

    id: str
    created_unix: float
    state: str = QUEUED
    experiment: Optional[str] = None
    tag: str = ""
    reads: Optional[int] = None
    benchmarks: Tuple[str, ...] = ()
    entries: List[SpecEntry] = field(default_factory=list)
    results: List[dict] = field(default_factory=list)
    failures: List[dict] = field(default_factory=list)
    table: str = ""
    error: str = ""
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def coalesced_specs(self) -> int:
        return sum(1 for e in self.entries if e.coalesced)

    @property
    def cached_specs(self) -> int:
        return sum(1 for e in self.entries if e.cached)

    def job_config(self, base_config):
        """The ExperimentConfig this job runs under: server base +
        per-job overrides."""
        updates: Dict[str, object] = {}
        if self.reads is not None:
            updates["target_dram_reads"] = self.reads
        if self.benchmarks:
            updates["benchmarks"] = tuple(self.benchmarks)
        return replace(base_config, **updates) if updates else base_config

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA_VERSION,
            "id": self.id,
            "state": self.state,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "experiment": self.experiment,
            "tag": self.tag,
            "reads": self.reads,
            "benchmarks": list(self.benchmarks),
            "coalesced_specs": self.coalesced_specs,
            "cached_specs": self.cached_specs,
            "specs": [entry.to_dict() for entry in self.entries],
            "results": self.results,
            "failures": self.failures,
            "table": self.table,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        entries = []
        for raw in data.get("specs", []):
            entries.append(SpecEntry(
                spec=spec_from_dict(raw["spec"]),
                key=raw.get("key", ""),
                coalesced=bool(raw.get("coalesced", False)),
                cached=bool(raw.get("cached", False)),
                state=raw.get("state", "pending")))
        return cls(
            id=data["id"],
            created_unix=float(data.get("created_unix", 0.0)),
            state=data.get("state", QUEUED),
            experiment=data.get("experiment"),
            tag=data.get("tag", ""),
            reads=data.get("reads"),
            benchmarks=tuple(data.get("benchmarks", ())),
            entries=entries,
            results=list(data.get("results", [])),
            failures=list(data.get("failures", [])),
            table=data.get("table", ""),
            error=data.get("error", ""),
            started_unix=data.get("started_unix"),
            finished_unix=data.get("finished_unix"))


# ---------------------------------------------------------------------------
# Request parsing
# ---------------------------------------------------------------------------


def parse_request(payload: object, base_config) -> Job:
    """Validate a POST /v1/jobs payload into a queued :class:`Job`.

    The job's spec list is the explicit ``specs`` (if any) followed by
    the named ``experiment``'s expansion under the job's config; cache
    keys are assigned later by the scheduler (they depend on the
    resolved config).
    """
    from repro.experiments import ALL_EXPERIMENTS, EXPERIMENT_SPECS

    if not isinstance(payload, dict):
        raise JobValidationError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}")
    unknown = set(payload) - set(REQUEST_KEYS)
    if unknown:
        raise JobValidationError(
            f"unknown request field(s) {sorted(unknown)}; "
            f"allowed: {sorted(REQUEST_KEYS)}")

    experiment = payload.get("experiment")
    if experiment is not None:
        if experiment not in ALL_EXPERIMENTS:
            raise JobValidationError(
                f"unknown experiment {experiment!r}; "
                f"known: {list(ALL_EXPERIMENTS)}")

    reads = payload.get("reads")
    if reads is not None:
        if not isinstance(reads, int) or isinstance(reads, bool) or reads <= 0:
            raise JobValidationError("reads must be a positive integer")

    benchmarks: Tuple[str, ...] = ()
    if payload.get("benchmarks"):
        raw = payload["benchmarks"]
        if (not isinstance(raw, (list, tuple))
                or not all(isinstance(b, str) for b in raw)):
            raise JobValidationError("benchmarks must be a list of strings")
        _check_benchmarks(raw)
        benchmarks = tuple(raw)

    tag = payload.get("tag", "")
    if not isinstance(tag, str):
        raise JobValidationError("tag must be a string")

    specs: List[RunSpec] = [spec_from_dict(raw)
                            for raw in payload.get("specs", [])]
    job = Job(id=new_job_id(), created_unix=time.time(),
              experiment=experiment, tag=tag, reads=reads,
              benchmarks=benchmarks)
    if experiment is not None:
        specs.extend(EXPERIMENT_SPECS[experiment](job.job_config(base_config)))
    if not specs:
        raise JobValidationError(
            "empty job: provide 'specs' and/or an 'experiment' to expand")
    # Dedupe within the job while keeping declared order; per-spec cache
    # keys (and hence cross-job coalescing) are assigned at enqueue.
    job.entries = [SpecEntry(spec=spec, key="")
                   for spec in dict.fromkeys(specs)]
    return job
