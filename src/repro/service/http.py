"""Stdlib HTTP front-end for the job scheduler.

Endpoints (all JSON)::

    POST /v1/jobs        submit a job            -> 202 job record
                         queue full              -> 429 + Retry-After
                         invalid request         -> 400
                         draining                -> 503
    GET  /v1/jobs        list known jobs         -> 200
    GET  /v1/jobs/<id>   poll one job            -> 200 | 404
    GET  /healthz        liveness + queue depth  -> 200 | 503 (draining)
    GET  /metrics        counters snapshot       -> 200

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
request, all of them funnelling into the scheduler's locked submit
path; simulation work itself happens on the scheduler's worker pool,
so slow simulations never block health probes.

:func:`serve_until_signal` wires SIGTERM/SIGINT to a graceful drain:
stop accepting, finish the in-flight batch, persist, exit.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro import __version__
from repro.service.jobs import JobValidationError
from repro.service.scheduler import JobScheduler, QueueFull, SchedulerStopped

MAX_BODY_BYTES = 4 * 1024 * 1024  # a job manifest, not a dataset


class ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the scheduler for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], scheduler: JobScheduler,
                 verbose: bool = False) -> None:
        self.scheduler = scheduler
        self.verbose = verbose
        super().__init__(address, JobRequestHandler)


class JobRequestHandler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------

    def _reply(self, status: int, payload: dict,
               retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After",
                             str(max(1, int(round(retry_after_s)))))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               retry_after_s: Optional[float] = None) -> None:
        self._reply(status, {"error": message}, retry_after_s=retry_after_s)

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            health = self.scheduler.health()
            self._reply(200 if health["status"] == "ok" else 503, health)
        elif path == "/metrics":
            self._reply(200, self.scheduler.metrics())
        elif path == "/v1/jobs":
            jobs = self.scheduler.jobs()
            self._reply(200, {"jobs": [
                {"id": job.id, "state": job.state, "tag": job.tag,
                 "experiment": job.experiment,
                 "specs": len(job.entries)} for job in jobs]})
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.scheduler.get(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
            else:
                self._reply(200, job.to_dict())
        else:
            self._error(404, f"no such endpoint {path!r}; try /healthz, "
                             "/metrics, or /v1/jobs")

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/jobs":
            self._error(404, f"no such endpoint {path!r}; POST /v1/jobs")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._error(400, "missing or oversized Content-Length")
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            job = self.scheduler.submit(payload)
        except JobValidationError as exc:
            self._error(400, str(exc))
        except QueueFull as exc:
            self._error(429, str(exc), retry_after_s=exc.retry_after_s)
        except SchedulerStopped as exc:
            self._error(503, str(exc))
        else:
            self._reply(202, job.to_dict())


# ---------------------------------------------------------------------------
# Server lifecycle
# ---------------------------------------------------------------------------


def make_server(scheduler: JobScheduler, host: str = "127.0.0.1",
                port: int = 8787, verbose: bool = False) -> ReproHTTPServer:
    return ReproHTTPServer((host, port), scheduler, verbose=verbose)


#: Exit code of a forced (double-signal) shutdown.
FORCED_EXIT_CODE = 70  # EX_SOFTWARE: the drain was abandoned


def serve_until_signal(server: ReproHTTPServer,
                       scheduler: JobScheduler) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    The first signal flips the scheduler into draining (new submits
    answer 503) and stops the accept loop from a side thread —
    ``HTTPServer.shutdown`` must not be called from the thread running
    ``serve_forever``. The in-flight batch finishes and persists before
    the process exits; returns 0.

    A *second* signal while the drain is still in progress means the
    operator (or the supervisor's escalation policy) will not wait:
    the process hard-exits immediately with :data:`FORCED_EXIT_CODE`
    (non-zero, so unit files and CI mark the stop as unclean). Job
    manifests are durable at every state change and simulations
    checkpoint, so the abandoned batch is recovered on restart.
    """
    signals_seen = 0

    def _stop(_signum, _frame) -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen > 1:
            os._exit(FORCED_EXIT_CODE)  # second signal: die NOW
        scheduler.begin_drain()  # refuse new work immediately
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _stop)
    try:
        server.serve_forever(poll_interval=0.2)
        # The drain below (batch completion, pool shutdown) still runs
        # under the forced-exit handler: a second signal cuts it short.
        server.server_close()
        scheduler.shutdown()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        scheduler.shutdown()  # idempotent; covers the exception path
    return 0
