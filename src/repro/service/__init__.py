"""Simulation-as-a-service: a long-lived job server over the pipeline.

``repro serve`` keeps the PR-2 :class:`ParallelExecutor` worker pool,
the result cache, and the PR-4 retry machinery resident in one process
and fronts them with a stdlib HTTP API, so concurrent users neither
re-pay pool spin-up nor duplicate identical in-flight simulations.

Dataflow (see DESIGN.md, "The service layer")::

    POST /v1/jobs -> validate -> bounded queue -> coalescer
        -> batched ParallelExecutor submission -> JobStore + ResultCache
        -> GET /v1/jobs/<id>

Pieces:

* :mod:`repro.service.jobs`      — job model + request validation
* :mod:`repro.service.store`     — restart-surviving job manifests
* :mod:`repro.service.scheduler` — queue, coalescing, batching, drain
* :mod:`repro.service.http`      — the stdlib HTTP front-end
* :mod:`repro.service.client`    — urllib client (``repro submit``)
"""

from repro.service.client import DEFAULT_URL, ServiceClient, ServiceError
from repro.service.http import (
    FORCED_EXIT_CODE,
    ReproHTTPServer,
    make_server,
    serve_until_signal,
)
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobValidationError,
    parse_request,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.scheduler import (
    JobScheduler,
    QueueFull,
    SchedulerStopped,
)
from repro.service.store import DEFAULT_STATE_DIR, JobStore

__all__ = [
    "DEFAULT_STATE_DIR", "DEFAULT_URL", "FORCED_EXIT_CODE",
    "Job", "JobScheduler", "JobStore", "JobValidationError",
    "QueueFull", "ReproHTTPServer", "SchedulerStopped",
    "ServiceClient", "ServiceError",
    "QUEUED", "RUNNING", "DONE", "FAILED",
    "make_server", "parse_request", "serve_until_signal",
    "spec_from_dict", "spec_to_dict",
]
