"""The service's scheduler: bounded queue → coalescer → executor → store.

One :class:`JobScheduler` owns a persistent
:class:`~repro.experiments.executor.ParallelExecutor` (the worker pool
spins up once and serves every submission) and a background thread that
drains a bounded job queue:

* **Backpressure** — :meth:`submit` refuses work beyond ``max_queue``
  with :class:`QueueFull` (the HTTP layer maps it to 429 +
  ``Retry-After``), so a traffic burst degrades into client retries
  instead of an unbounded memory footprint.
* **Coalescing** — every spec slot is keyed by its v8 cache key. A key
  already wanted by a queued/running job, or already resolved in the
  result cache, is marked coalesced/cached at submit time; the batch
  builder dedupes keys across jobs so N clients asking for the same
  simulation pay for exactly one run, and every waiter is fanned the
  shared result.
* **Batching** — the drain loop pops *every* queued job that shares the
  front job's resolved config and submits their deduped spec union as
  one executor call, so the pool stays saturated across job boundaries.
* **Resilience** — the executor runs with ``keep_going=True`` and the
  config's :class:`~repro.experiments.resilience.RetryPolicy`: a
  crashed or hung worker is retried per spec, and only a spec that
  exhausts its retries fails the *job* (never the server).
* **Durability** — jobs persist in the
  :class:`~repro.service.store.JobStore` at every state change;
  :meth:`recover` re-queues whatever a dead server left behind, and
  completed specs are recalled from the result cache instead of
  recomputed.

:meth:`shutdown` drains in-flight work: the running batch finishes and
persists, queued jobs stay ``queued`` in the store for the next server.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict
from typing import Deque, Dict, List, Optional, Tuple

from repro.experiments.executor import ParallelExecutor
from repro.experiments.resilience import FailedRun, is_valid_result
from repro.experiments.specs import RunSpec, spec_cache_key
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, Job
from repro.service.store import JobStore

DEFAULT_MAX_QUEUE = 32


class QueueFull(RuntimeError):
    """The bounded job queue is at capacity; retry after a beat."""

    def __init__(self, depth: int, limit: int,
                 retry_after_s: float = 1.0) -> None:
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(
            f"job queue is full ({depth}/{limit} queued); "
            f"retry in {retry_after_s:g}s")


class SchedulerStopped(RuntimeError):
    """Submissions after shutdown began; maps to HTTP 503."""


class JobScheduler:
    """Owns the queue, the coalescing map, and the persistent executor."""

    def __init__(self, config, store: Optional[JobStore] = None,
                 executor: Optional[ParallelExecutor] = None,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 jobs: Optional[int] = None,
                 start: bool = True,
                 recover: bool = True) -> None:
        self.config = config
        self.store = store if store is not None else JobStore()
        self.executor = executor if executor is not None else ParallelExecutor(
            config, jobs=jobs, persistent=True, keep_going=True)
        self.max_queue = max_queue
        self.started_unix = time.time()
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0, "jobs_completed": 0, "jobs_failed": 0,
            "jobs_rejected": 0, "jobs_recovered": 0,
            "coalesced_specs": 0, "cached_specs": 0, "simulated_specs": 0,
            "batches": 0,
        }
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._queue: Deque[str] = deque()
        self._jobs: Dict[str, Job] = {}
        # Refcount of spec cache keys across queued + running jobs: the
        # coalescing map consulted at submit time.
        self._wanted: Dict[str, int] = {}
        self._thread: Optional[threading.Thread] = None
        if recover:
            self.recover()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-scheduler", daemon=True)
        self._thread.start()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def begin_drain(self) -> None:
        """Refuse new submissions; the loop exits after its batch."""
        self._stop.set()
        self._wake.set()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful drain: finish the in-flight batch, persist, stop.

        Jobs still queued when the loop exits remain ``queued`` in the
        store and are recovered by the next server. Safe to call twice.
        """
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.executor.shutdown()

    def recover(self) -> int:
        """Re-enqueue queued/running jobs a previous server left behind."""
        recovered = 0
        for job in self.store.unfinished():
            job_config = job.job_config(self.config)
            for entry in job.entries:
                # Keys are recomputed (not trusted from disk): a server
                # restarted with a different seed or read target must
                # coalesce against its *own* key space.
                entry.key = spec_cache_key(entry.spec, job_config)
            self._enqueue(job, recovered=True)
            recovered += 1
        return recovered

    # ------------------------------------------------------------------
    # Submission path (HTTP threads)
    # ------------------------------------------------------------------

    def submit(self, payload: object) -> Job:
        """Validate, coalesce-tag, enqueue, and persist one submission.

        Raises :class:`~repro.service.jobs.JobValidationError` (400),
        :class:`QueueFull` (429), or :class:`SchedulerStopped` (503).
        """
        from repro.service.jobs import parse_request

        if self._stop.is_set():
            raise SchedulerStopped("server is draining; resubmit elsewhere")
        job = parse_request(payload, self.config)
        job_config = job.job_config(self.config)
        for entry in job.entries:
            entry.key = spec_cache_key(entry.spec, job_config)
        self._enqueue(job)
        return job

    def _enqueue(self, job: Job, recovered: bool = False) -> None:
        with self._lock:
            if len(self._queue) >= self.max_queue and not recovered:
                self.counters["jobs_rejected"] += 1
                # Rough service-time hint: one beat per queued job.
                raise QueueFull(len(self._queue), self.max_queue,
                                retry_after_s=max(1.0,
                                                  0.1 * len(self._queue)))
            for entry in job.entries:
                entry.coalesced = entry.key in self._wanted
                if not entry.coalesced:
                    entry.cached = self.executor.cache.contains(entry.key)
                self._wanted[entry.key] = self._wanted.get(entry.key, 0) + 1
            self.counters["coalesced_specs"] += job.coalesced_specs
            self.counters["cached_specs"] += job.cached_specs
            self.counters["jobs_submitted" if not recovered
                          else "jobs_recovered"] += 1
            job.state = QUEUED
            self._jobs[job.id] = job
            self._queue.append(job.id)
        self.store.save(job)
        self._wake.set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job
        return self.store.load(job_id)  # finished before this process

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll_s: float = 0.02) -> Job:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.done:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state} after {timeout:g}s")
            time.sleep(poll_s)

    def health(self) -> dict:
        with self._lock:
            depth = len(self._queue)
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "status": "draining" if self._stop.is_set() else "ok",
            "uptime_s": round(time.time() - self.started_unix, 3),
            "queue_depth": depth,
            "queue_limit": self.max_queue,
            "jobs": states,
        }

    def metrics(self) -> dict:
        """Telemetry snapshot for ``GET /metrics``."""
        health = self.health()
        service = {f"service.{name}": value
                   for name, value in sorted(self.counters.items())}
        service.update(
            {f"service.{name}": value
             for name, value in sorted(
                 getattr(self.store, "counters", {}).items())})
        executor = {f"executor.{name}": value
                    for name, value in sorted(self.executor.counters.items())}
        cache_stats = self.executor.cache.stats()
        cache = {f"cache.{name}": value
                 for name, value in sorted(cache_stats.items())
                 if name != "directory"}
        # Artifact-store tiers (results CAS + manifest FileStore):
        # entries/bytes/budget plus hit/miss/evict/quarantine counters,
        # flattened as store.<tier>.<name>.
        store: Dict[str, object] = {}
        for tier_stats in (self.executor.cache.store_stats(),
                           self.store.store_stats()):
            if not tier_stats:
                continue
            tier = tier_stats["tier"]
            store.update({f"store.{tier}.{name}": value
                          for name, value in sorted(tier_stats.items())
                          if name not in ("tier", "directory")})
        return {
            "uptime_s": health["uptime_s"],
            "queue_depth": health["queue_depth"],
            "queue_limit": health["queue_limit"],
            "jobs": health["jobs"],
            "workers": self.executor.jobs,
            **service, **executor, **cache, **store,
        }

    # ------------------------------------------------------------------
    # Drain loop (scheduler thread)
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=0.2)
            self._wake.clear()
            self._drain()
        # Graceful stop: whatever _drain left queued stays persisted for
        # the next server; the batch that was running has completed.

    def _drain(self) -> None:
        while not self._stop.is_set():
            batch = self._next_batch()
            if batch is None:
                return
            config, group = batch
            try:
                self._run_batch(config, group)
            except Exception as exc:  # scheduler thread must survive
                self._fail_batch(group, exc)

    def _next_batch(self) -> Optional[Tuple[object, List[Job]]]:
        """Pop every queued job compatible with the front job's config."""
        with self._lock:
            if not self._queue:
                return None
            front = self._jobs[self._queue[0]]
            config = front.job_config(self.config)
            group: List[Job] = []
            deferred: Deque[str] = deque()
            while self._queue:
                job_id = self._queue.popleft()
                job = self._jobs[job_id]
                if job.job_config(self.config) == config:
                    group.append(job)
                else:
                    deferred.append(job_id)
            self._queue = deferred
            now = time.time()
            for job in group:
                job.state = RUNNING
                job.started_unix = now
        for job in group:
            self.store.save(job)
        return config, group

    def _run_batch(self, config, group: List[Job]) -> None:
        # Union of the group's specs, deduped by cache key: the second
        # client's identical fig-3 submission adds zero new work here.
        union: List[RunSpec] = []
        seen: set = set()
        for job in group:
            for entry in job.entries:
                if entry.key not in seen:
                    seen.add(entry.key)
                    union.append(entry.spec)
        self.counters["batches"] += 1
        timings_before = len(self.executor.timings)
        results = self.executor.run(union, config=config)
        simulated = sum(
            1 for t in self.executor.timings[timings_before:]
            if not t["cached"] and t["status"] in ("ok", "degraded"))
        with self._lock:
            self.counters["simulated_specs"] += simulated
        for job in group:
            self._finish_job(job, config, results)
        self._post_batch_gc()

    def _post_batch_gc(self) -> None:
        """Re-bound the budgeted tiers after a batch lands.

        Worker puts auto-gc inside their own processes, but the parent's
        usage estimate goes stale across a batch; one gc here keeps the
        on-disk size honest at job granularity. Tiers without a budget
        are left alone (gc would still sweep, but there is nothing to
        bound and suite latency matters).
        """
        cache_store = self.executor.cache.store
        if cache_store is not None and cache_store.budget_bytes is not None:
            cache_store.gc()
        if self.store.file_store.budget_bytes is not None:
            self.store.gc()

    def _finish_job(self, job: Job, config,
                    results: Dict[RunSpec, object]) -> None:
        rows: List[dict] = []
        failures: List[dict] = []
        for entry in job.entries:
            result = results.get(entry.spec)
            if is_valid_result(result):
                entry.state = "done"
                row = {"label": entry.spec.label, "key": entry.key,
                       "throughput": result.throughput}
                row.update(asdict(result))
                rows.append(row)
            else:
                entry.state = "failed"
                failed = result if isinstance(result, FailedRun) else None
                failures.append({
                    "label": entry.spec.label,
                    "kind": failed.kind if failed else "missing-result",
                    "attempts": failed.attempts if failed else 0,
                    "error": failed.error if failed
                    else "executor returned no result for this spec",
                })
        job.results = rows
        job.failures = failures
        job.error = ""
        if job.experiment and not failures:
            try:
                from repro.experiments import ALL_EXPERIMENTS
                table = ALL_EXPERIMENTS[job.experiment](config,
                                                        results=results)
                job.table = table.format()
            except Exception as exc:
                job.error = (f"rendering {job.experiment} failed: "
                             f"{type(exc).__name__}: {exc}")
        job.state = FAILED if (failures or job.error) else DONE
        job.finished_unix = time.time()
        with self._lock:
            self._release(job)
            self.counters["jobs_failed" if job.state == FAILED
                          else "jobs_completed"] += 1
        self.store.save(job)

    def _fail_batch(self, group: List[Job], exc: Exception) -> None:
        for job in group:
            job.state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_unix = time.time()
            with self._lock:
                self._release(job)
                self.counters["jobs_failed"] += 1
            self.store.save(job)

    def _release(self, job: Job) -> None:
        """Drop the job's coalescing refcounts (lock held by caller)."""
        for entry in job.entries:
            count = self._wanted.get(entry.key, 0) - 1
            if count > 0:
                self._wanted[entry.key] = count
            else:
                self._wanted.pop(entry.key, None)
