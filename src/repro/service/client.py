"""Thin stdlib client for the job server (``repro submit``/``status``).

Pure ``urllib`` — the client side of the service needs nothing the
container doesn't already have, so any script (or CI job) can submit a
suite, poll it to completion, and read the rendered tables back.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime
from typing import Optional, Tuple

DEFAULT_URL = "http://127.0.0.1:8787"

#: Ceiling on the *cumulative* time submit() spends honouring 429
#: Retry-After answers. Without it a server replying with a far-future
#: HTTP-date (or a huge delta-seconds) would park the client for hours.
DEFAULT_MAX_RETRY_WAIT_S = 120.0


def parse_retry_after(value: object, fallback_s: float) -> float:
    """``Retry-After`` → seconds to wait; ``fallback_s`` if unparsable.

    RFC 9110 allows two forms: delta-seconds (``"3"``) and an HTTP-date
    (``"Wed, 21 Oct 2026 07:28:00 GMT"``). The old client fed the raw
    header to ``float()``, so every HTTP-date answer raised ValueError
    and was silently replaced by the fixed backoff — the server's
    requested pacing never applied. A date in the past means "now"
    (0 s), never a negative sleep.
    """
    if value is None:
        return fallback_s
    text = str(value).strip()
    try:
        return max(0.0, float(text))
    except ValueError:
        pass
    try:
        when = parsedate_to_datetime(text)
    except (TypeError, ValueError, IndexError):
        return fallback_s
    if when.tzinfo is None:  # naive HTTP-date: RFC says GMT
        when = when.replace(tzinfo=timezone.utc)
    return max(0.0, (when - datetime.now(timezone.utc)).total_seconds())


class ServiceError(RuntimeError):
    """Non-2xx answer from the server, with status and parsed body."""

    def __init__(self, status: int, body: dict) -> None:
        self.status = status
        self.body = body if isinstance(body, dict) else {"error": str(body)}
        super().__init__(
            f"HTTP {status}: {self.body.get('error', self.body)}")


class ServiceClient:
    def __init__(self, url: str = DEFAULT_URL, timeout_s: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Tuple[int, dict, dict]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                body = json.loads(response.read() or b"{}")
                return response.status, body, dict(response.headers)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read() or b"{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                body = {"error": str(exc)}
            return exc.code, body, dict(exc.headers or {})
        except urllib.error.URLError as exc:
            raise ServiceError(0, {"error": f"cannot reach {self.url}: "
                                            f"{exc.reason}"}) from None

    def _get(self, path: str) -> dict:
        status, body, _ = self._request("GET", path)
        if status >= 400:
            raise ServiceError(status, body)
        return body

    # ------------------------------------------------------------------

    def submit(self, request: dict, retries: int = 0,
               backoff_s: float = 1.0,
               max_wait_s: float = DEFAULT_MAX_RETRY_WAIT_S) -> dict:
        """POST a job; on 429 honour ``Retry-After`` up to ``retries``.

        Both RFC 9110 ``Retry-After`` forms are understood — delta-
        seconds and HTTP-date — and the cumulative sleep across all
        retries is capped at ``max_wait_s``, so a pathological header
        can delay a submit, never park it indefinitely.
        """
        attempt = 0
        waited_s = 0.0
        while True:
            status, body, headers = self._request("POST", "/v1/jobs", request)
            if status < 400:
                return body
            if status == 429 and attempt < retries:
                attempt += 1
                wait_s = parse_retry_after(headers.get("Retry-After"),
                                           backoff_s)
                wait_s = max(0.05, min(wait_s, max_wait_s - waited_s))
                if waited_s + wait_s > max_wait_s:
                    raise ServiceError(status, body)
                waited_s += wait_s
                time.sleep(wait_s)
                continue
            raise ServiceError(status, body)

    def job(self, job_id: str) -> dict:
        return self._get(f"/v1/jobs/{job_id}")

    def jobs(self) -> dict:
        return self._get("/v1/jobs")

    def wait(self, job_id: str, poll_s: float = 0.5,
             timeout_s: Optional[float] = None) -> dict:
        """Poll until the job reaches ``done``/``failed``."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job.get("state") in ("done", "failed"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.get('state')} "
                    f"after {timeout_s:g}s")
            time.sleep(poll_s)

    def health(self) -> dict:
        # /healthz answers 503 while draining but still carries the
        # health document; surface it rather than raising.
        status, body, _ = self._request("GET", "/healthz")
        if status >= 400 and "status" not in body:
            raise ServiceError(status, body)
        return body

    def metrics(self) -> dict:
        return self._get("/metrics")
