"""Benchmark profiles and the synthetic trace generator."""

import statistics

import pytest

from repro.cpu.core import TraceRecord
from repro.workloads.profiles import (
    BenchmarkProfile,
    HIGH_BANDWIDTH,
    PROFILES,
    SUITE_NPB,
    SUITE_SPEC,
    benchmark_names,
    profile_for,
)
from repro.workloads.synthetic import (
    CORE_ADDRESS_STRIDE,
    TraceGenerator,
    expected_critical_word,
    generate_core_trace,
    preferred_word,
    preferred_word_for_global_line,
    records_for_reads,
    _word_lookup_table,
)


class TestProfiles:
    def test_suite_size(self):
        # 18 SPEC + GemsFDTD + 6 NPB + STREAM = 26 programs.
        assert len(PROFILES) == 26
        assert len(benchmark_names(SUITE_SPEC)) == 19
        assert len(benchmark_names(SUITE_NPB)) == 6

    def test_all_fields_sane(self):
        for profile in PROFILES.values():
            assert 0 <= profile.stream_fraction <= 1
            assert profile.mean_gap > 0
            assert profile.footprint_lines > 0
            assert 0 <= profile.write_fraction < 1
            assert abs(sum([profile.stream_fraction,
                            profile.chase_fraction]) - 1.0) < 1e-9

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            profile_for("nonexistent")

    def test_unknown_benchmark_suggests_close_match(self):
        with pytest.raises(KeyError) as excinfo:
            profile_for("lesliee3d")
        assert "did you mean" in str(excinfo.value)
        assert "leslie3d" in str(excinfo.value)

    def test_high_bandwidth_group_is_intense(self):
        heavy = [PROFILES[name].mean_gap for name in HIGH_BANDWIDTH]
        light = [p.mean_gap for n, p in PROFILES.items()
                 if n not in HIGH_BANDWIDTH]
        assert max(heavy) < statistics.mean(light)

    def test_validation_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", suite="spec2006", mean_gap=10,
                             stream_fraction=1.5)

    def test_estimated_misses_positive(self):
        for profile in PROFILES.values():
            assert profile.estimated_misses_per_record() > 0


class TestWordTables:
    def test_lookup_table_respects_weights(self):
        table = _word_lookup_table({0: 3.0, 1: 1.0})
        f0 = table.count(0) / len(table)
        assert 0.70 < f0 < 0.80

    def test_preferred_word_deterministic(self):
        table = _word_lookup_table({w: 1.0 for w in range(8)})
        assert [preferred_word(line, table) for line in range(100)] == \
               [preferred_word(line, table) for line in range(100)]

    def test_global_line_recovery_matches_generator(self):
        profile = profile_for("mcf")
        gen = TraceGenerator(profile, core_id=3)
        lines_per_core = CORE_ADDRESS_STRIDE // 64
        for local in (0, 17, 12345):
            global_line = 3 * lines_per_core + local
            assert (preferred_word_for_global_line(profile, global_line)
                    == preferred_word(local, gen.word_table))


class TestGenerator:
    def test_deterministic(self):
        a = TraceGenerator(profile_for("mcf"), 0, seed=1).records(500)
        b = TraceGenerator(profile_for("mcf"), 0, seed=1).records(500)
        assert a == b

    def test_seed_changes_trace(self):
        a = TraceGenerator(profile_for("mcf"), 0, seed=1).records(500)
        b = TraceGenerator(profile_for("mcf"), 0, seed=2).records(500)
        assert a != b

    def test_cores_have_disjoint_address_spaces(self):
        t0 = TraceGenerator(profile_for("mcf"), 0).records(300)
        t1 = TraceGenerator(profile_for("mcf"), 1).records(300)
        assert all(r.address < CORE_ADDRESS_STRIDE for r in t0)
        assert all(CORE_ADDRESS_STRIDE <= r.address < 2 * CORE_ADDRESS_STRIDE
                   for r in t1)

    def test_addresses_within_footprint(self):
        profile = profile_for("bzip2")
        trace = TraceGenerator(profile, 0).records(2000)
        limit = profile.footprint_lines * 64
        assert all(r.address < limit for r in trace)

    def test_gap_mean_approximates_profile(self):
        profile = profile_for("leslie3d")
        trace = TraceGenerator(profile, 0).records(4000)
        mean = statistics.mean(r.gap for r in trace)
        assert 0.7 * profile.mean_gap < mean < 1.3 * profile.mean_gap

    def test_write_fraction_approximated(self):
        profile = profile_for("stream")
        trace = TraceGenerator(profile, 0).records(4000)
        frac = sum(r.is_write for r in trace) / len(trace)
        assert abs(frac - profile.write_fraction) < 0.05

    def test_streaming_profile_biases_word0(self):
        # First touches of lines in a stride-8 stream are word 0.
        profile = profile_for("leslie3d")
        trace = TraceGenerator(profile, 0).records(4000)
        words = [(r.address // 8) % 8 for r in trace]
        assert words.count(0) / len(words) > 0.7

    def test_chase_profile_spreads_words(self):
        profile = profile_for("mcf")
        trace = TraceGenerator(profile, 0).records(4000)
        words = [(r.address // 8) % 8 for r in trace]
        assert words.count(0) / len(words) < 0.6
        assert len(set(words)) == 8

    def test_second_touches_hit_same_line(self):
        profile = profile_for("omnetpp")
        trace = TraceGenerator(profile, 0, seed=5).records(6000)
        lines = [r.address // 64 for r in trace]
        repeats = sum(1 for i, line in enumerate(lines)
                      if line in lines[max(0, i - 8):i])
        assert repeats > 20  # scheduled second touches land nearby


class TestSizing:
    def test_records_for_reads_scales(self):
        profile = profile_for("leslie3d")
        assert records_for_reads(profile, 2000) > \
            records_for_reads(profile, 200)

    def test_generate_core_trace_shape(self):
        trace = generate_core_trace(profile_for("mcf"), 0, 100)
        assert all(isinstance(r, TraceRecord) for r in trace)
        assert len(trace) >= 64


class TestExpectedCriticalWord:
    def test_stream_heavy_yields_word0(self):
        import random
        profile = profile_for("stream")
        rng = random.Random(0)
        words = [expected_critical_word(profile, line, rng)
                 for line in range(500)]
        assert words.count(0) / len(words) > 0.9
