"""Workload registry: resolution, sources, replay fidelity, cache tokens."""

import dataclasses
import subprocess
import sys

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.specs import RunSpec, spec_cache_key
from repro.sim.config import SimConfig
from repro.sim.system import make_traces, run_benchmark
from repro.workloads.profiles import PROFILES, profile_for
from repro.workloads.registry import (
    TRACE_FAMILY,
    DuplicateWorkloadError,
    SyntheticSource,
    TraceFileSource,
    UnknownWorkloadError,
    WorkloadError,
    assert_source_conformant,
    conformance_problems,
    create_workload,
    get_workload,
    list_workloads,
    register_workload,
    resolve_workload,
    unregister_workload,
    workload_cache_token,
    workload_names,
)
from repro.workloads.trace import save_multi_trace

ALL_WORKLOADS = workload_names()
SMALL = SimConfig(target_dram_reads=200)


def record_trace(path, benchmark="mcf", config=SMALL):
    """Capture ``benchmark`` exactly like ``repro trace record`` does."""
    source = create_workload(benchmark)
    traces = [list(stream) for stream in source.streams(config)]
    save_multi_trace(traces, path, metadata={
        "benchmark": source.display_benchmark(),
        "seed": str(config.seed),
        "target_dram_reads": str(config.target_dram_reads)})
    return path


class TestResolution:
    def test_every_profile_is_a_workload(self):
        assert set(ALL_WORKLOADS) == set(PROFILES)

    def test_canonical_names_resolve_to_themselves(self):
        for name in ALL_WORKLOADS:
            assert resolve_workload(name) == name

    def test_synthetic_prefix_coalesces_with_bare_name(self):
        assert resolve_workload("synthetic:mcf") == "mcf"
        assert resolve_workload("  synthetic: mcf ") == "mcf"

    def test_lowercase_aliases(self):
        assert resolve_workload("gemsfdtd") == "GemsFDTD"
        assert resolve_workload("synthetic:dealii") == "dealII"

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            resolve_workload("mcff")
        assert "mcf" in str(excinfo.value)
        assert "list-workloads" in str(excinfo.value)

    def test_unknown_error_doubles_as_keyerror(self):
        # Callers that treated PROFILES[name] misses as KeyError keep
        # working, and str() must not repr-quote the whole message.
        with pytest.raises(KeyError) as excinfo:
            resolve_workload("nope")
        assert isinstance(excinfo.value, ValueError)
        assert str(excinfo.value).startswith("unknown workload 'nope'")

    def test_non_string_rejected(self):
        with pytest.raises(WorkloadError):
            resolve_workload(42)

    def test_empty_trace_path_rejected(self):
        with pytest.raises(WorkloadError, match="needs a path"):
            resolve_workload("trace:")

    def test_missing_trace_file_rejected(self):
        with pytest.raises(WorkloadError, match="not found"):
            resolve_workload("trace:/no/such/file.trace")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateWorkloadError):
            register_workload("mcf")(lambda: None)

    def test_alias_clash_rejected(self):
        with pytest.raises(DuplicateWorkloadError):
            register_workload("fresh_workload", aliases=("mcf",))(
                lambda: None)
        assert "fresh_workload" not in workload_names()

    def test_prefixed_name_rejected(self):
        with pytest.raises(WorkloadError, match="prefix"):
            register_workload("trace:sneaky")(lambda: None)

    def test_register_unregister_roundtrip(self):
        @register_workload("tmp_workload", suite="custom",
                           aliases=("tmpw",), description="test-only")
        def _build():
            return SyntheticSource("tmp_workload", profile_for("mcf"))

        try:
            assert resolve_workload("tmpw") == "tmp_workload"
            source = create_workload("tmp_workload")
            assert source.display_benchmark() == "tmp_workload"
            # Plugin token comes from the source, not PROFILES.
            assert workload_cache_token("tmp_workload") == \
                source.cache_token()
        finally:
            unregister_workload("tmp_workload")
        with pytest.raises(UnknownWorkloadError):
            resolve_workload("tmp_workload")
        with pytest.raises(UnknownWorkloadError):
            resolve_workload("tmpw")

    def test_descriptors_expose_capabilities(self):
        descriptors = list_workloads()
        assert descriptors[-1] is TRACE_FAMILY
        for descriptor in descriptors:
            caps = descriptor.capabilities()
            assert set(caps) == {"kind", "suite", "streaming"}
            assert caps["streaming"] is True
            assert descriptor.description

    def test_get_workload_for_trace_family(self, tmp_path):
        path = record_trace(tmp_path / "t.trace")
        descriptor = get_workload(f"trace:{path}")
        assert descriptor.kind == "trace"
        assert descriptor.name == f"trace:{path}"


class TestConformance:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_builtin_builds_conformant(self, name):
        source = create_workload(name)
        assert conformance_problems(source) == []
        assert source.kind == "synthetic"
        assert source.profile is PROFILES[name]
        assert source.describe()["cache_token"] == workload_cache_token(name)

    def test_nonconformant_rejected(self):
        class Bogus:
            pass

        problems = conformance_problems(Bogus())
        assert problems
        with pytest.raises(WorkloadError):
            assert_source_conformant(Bogus())


class TestSyntheticStreams:
    def test_streams_match_materialized_traces(self):
        """The streaming pipeline must reproduce the draw sequence of
        the list-building path exactly — this is what keeps the golden
        kernel matrix byte-identical."""
        source = create_workload("mcf")
        streamed = [list(s) for s in source.streams(SMALL)]
        assert streamed == make_traces(profile_for("mcf"), SMALL)

    def test_streams_are_lazy_iterators(self):
        streams = create_workload("leslie3d").streams(SMALL)
        assert len(streams) == SMALL.num_cores
        for stream in streams:
            assert iter(stream) is stream  # an iterator, not a list


class TestTraceReplay:
    def test_replay_reproduces_synthetic_result(self, tmp_path):
        """A recorded trace must replay to the *identical* SimResult:
        same records, same metadata-restored benchmark and profile
        (hence identical L2 prewarm)."""
        path = record_trace(tmp_path / "mcf.trace", "mcf", SMALL)
        synthetic = run_benchmark("mcf", SMALL)
        replayed = run_benchmark(f"trace:{path}", SMALL)
        assert dataclasses.asdict(replayed) == dataclasses.asdict(synthetic)

    def test_trace_source_restores_profile(self, tmp_path):
        path = record_trace(tmp_path / "mcf.trace")
        source = create_workload(f"trace:{path}")
        assert isinstance(source, TraceFileSource)
        assert source.profile is PROFILES["mcf"]
        assert source.display_benchmark() == "mcf"
        assert source.num_cores == SMALL.num_cores

    def test_core_count_mismatch_rejected(self, tmp_path):
        path = record_trace(tmp_path / "mcf.trace", config=SMALL)
        source = create_workload(f"trace:{path}")
        with pytest.raises(WorkloadError, match="num_cores"):
            source.streams(SimConfig(num_cores=SMALL.num_cores + 1))

    def test_corrupt_file_raises_workload_error(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(WorkloadError, match="bad trace file"):
            create_workload(f"trace:{path}")


class TestCacheTokens:
    CONFIG = ExperimentConfig(target_dram_reads=100)

    def test_synthetic_prefix_shares_cache_keys(self):
        assert (spec_cache_key(RunSpec("synthetic:mcf", "rl"), self.CONFIG)
                == spec_cache_key(RunSpec("mcf", "rl"), self.CONFIG))

    def test_profiles_token_differ_per_benchmark(self):
        tokens = {workload_cache_token(name) for name in ALL_WORKLOADS}
        assert len(tokens) == len(ALL_WORKLOADS)

    def test_editing_trace_file_changes_key(self, tmp_path):
        """Same spec, same config — but re-recorded file contents must
        produce a different v8 key (the whole point of the token)."""
        path = record_trace(tmp_path / "t.trace")
        spec = RunSpec(f"trace:{path}", "ddr3")
        before = spec_cache_key(spec, self.CONFIG)
        with open(path, "a") as handle:
            handle.write("# note=edited\n")
        after = spec_cache_key(RunSpec(f"trace:{path}", "ddr3"), self.CONFIG)
        assert before != after
        # Only the workload-token part moved.
        diff = [i for i, (a, b) in enumerate(
            zip(before.split("|"), after.split("|"))) if a != b]
        assert diff == [8]

    def test_synthetic_key_stable_across_processes(self):
        local = spec_cache_key(RunSpec("synthetic:mcf", "rl"), self.CONFIG)
        script = (
            "from repro.experiments.runner import ExperimentConfig\n"
            "from repro.experiments.specs import RunSpec, spec_cache_key\n"
            "print(spec_cache_key(RunSpec('synthetic:mcf', 'rl'),"
            " ExperimentConfig(target_dram_reads=100)))\n")
        remote = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True).stdout.strip()
        assert remote == local

    def test_trace_key_stable_across_processes(self, tmp_path):
        path = record_trace(tmp_path / "t.trace")
        spec = RunSpec(f"trace:{path}", "rl")
        local = spec_cache_key(spec, self.CONFIG)
        script = (
            "import sys\n"
            "from repro.experiments.runner import ExperimentConfig\n"
            "from repro.experiments.specs import RunSpec, spec_cache_key\n"
            "print(spec_cache_key(RunSpec('trace:' + sys.argv[1], 'rl'),"
            " ExperimentConfig(target_dram_reads=100)))\n")
        remote = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, check=True).stdout.strip()
        assert remote == local


class TestRunSpecValidation:
    def test_runspec_canonicalises_workload(self):
        assert RunSpec("synthetic:mcf", "rl") == RunSpec("mcf", "rl")
        assert RunSpec("gemsfdtd", "ddr3").benchmark == "GemsFDTD"

    def test_runspec_rejects_unknown_workload(self):
        with pytest.raises(UnknownWorkloadError):
            RunSpec("quake", "ddr3")
