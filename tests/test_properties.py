"""Property-based tests on core invariants (hypothesis).

These drive the stateful components with random operation sequences and
check invariants a cycle-accurate model must never violate.
"""

from hypothesis import given, settings, strategies as st

from repro.dram.bank import Bank, BankState
from repro.dram.channel import DataBus
from repro.dram.rank import Rank
from repro.dram.request import RequestKind
from repro.dram.device import DDR3_DEVICE
from repro.dram.timing import DDR3_TIMING, TimingSet
from repro.util.events import EventQueue

DDR3 = TimingSet(DDR3_TIMING)


class TestBankInvariants:
    @settings(max_examples=50)
    @given(st.lists(st.sampled_from(["act", "read", "write", "pre", "wait"]),
                    max_size=60))
    def test_legal_command_sequences_never_crash(self, ops):
        """Drive the bank respecting can_* gates; state stays coherent."""
        bank = Bank(timing=DDR3)
        now = 0
        row = 0
        for op in ops:
            now += 1
            if op == "wait":
                now += DDR3.t_rc
            elif op == "act":
                if bank.can_activate(now):
                    row += 1
                    bank.activate(now, row)
            elif op == "read":
                if bank.state is BankState.ACTIVE and bank.can_read(now, row):
                    data = bank.column_read(now)
                    assert data == now + DDR3.t_rl
            elif op == "write":
                if bank.state is BankState.ACTIVE and now >= bank.next_write:
                    bank.column_write(now)
            elif op == "pre":
                if bank.can_precharge(now):
                    bank.precharge(now)
            # Invariants:
            assert (bank.open_row is None) == (bank.state is BankState.IDLE)
            assert bank.activate_count >= 0

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=1, max_value=300), max_size=40))
    def test_activate_times_respect_trc(self, waits):
        bank = Bank(timing=DDR3)
        act_times = []
        now = 0
        for wait in waits:
            now += wait
            if bank.can_activate(now):
                bank.activate(now, row=1)
                act_times.append(now)
            elif bank.can_precharge(now):
                bank.precharge(now)
        for a, b in zip(act_times, act_times[1:]):
            assert b - a >= DDR3.t_rc


class TestRankInvariants:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=4,
                    max_size=40))
    def test_no_five_activates_in_tfaw(self, waits):
        rank = Rank(DDR3_DEVICE, DDR3)
        acts = []
        now = 0
        for wait in waits:
            now += wait
            t = rank.earliest_activate(now)
            rank.note_activate(t)
            acts.append(t)
            now = t
        for i in range(len(acts) - 4):
            window = acts[i + 4] - acts[i]
            assert window >= DDR3.t_faw

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=2000)),
                    max_size=30))
    def test_tally_always_sums_to_elapsed(self, steps):
        rank = Rank(DDR3_DEVICE, DDR3)
        now = 0
        for sleep, delta in steps:
            now += delta
            if sleep:
                rank.try_power_down(now, idle_threshold=0)
            else:
                rank.touch(now)
        tally = rank.finalize_tally(now)
        assert tally.total() == now


class TestDataBusInvariants:
    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=3),
                              st.integers(min_value=0, max_value=200)),
                    max_size=50))
    def test_bursts_never_overlap(self, requests):
        bus = DataBus(DDR3)
        intervals = []
        now = 0
        for is_write, rank, delay in requests:
            now += delay
            kind = RequestKind.WRITE if is_write else RequestKind.READ
            start = bus.earliest_start(now, kind, rank)
            end = bus.reserve(start, kind, rank)
            intervals.append((start, end))
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1  # strictly serialised


class TestEventQueueInvariants:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=80))
    def test_execution_times_monotonic(self, times):
        q = EventQueue()
        fired = []
        for t in times:
            q.schedule(t, lambda t=t: fired.append(t))
        q.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)
