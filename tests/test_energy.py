"""System energy model (paper Sec 6.1.3 methodology)."""

import pytest

from repro.energy.model import (
    BASELINE_DRAM_SYSTEM_FRACTION,
    SystemEnergyModel,
    weighted_speedup,
)
from repro.sim.system import SimResult


def fake_result(power_mw=10_000.0, elapsed=100_000, throughput=8.0,
                memory="ddr3"):
    return SimResult(
        benchmark="x", memory=memory, num_cores=8,
        elapsed_cycles=elapsed, instructions=1_000_000,
        per_core_ipc=[throughput / 8] * 8,
        dram_reads=1000, dram_writes=100, demand_reads=900,
        avg_queue_latency=50.0, avg_core_latency=100.0,
        avg_critical_latency=150.0, avg_fill_latency=180.0,
        fast_service_fraction=0.0, bus_utilization=0.2,
        memory_power_mw=power_mw, memory_power_by_family={},
        l2_hit_rate=0.5)


class TestModelSetup:
    def test_baseline_dram_is_quarter_of_system(self):
        base = fake_result()
        model = SystemEnergyModel(base)
        assert model.baseline_system_mw == pytest.approx(
            base.memory_power_mw / BASELINE_DRAM_SYSTEM_FRACTION)
        assert model.cpu_peak_mw == pytest.approx(30_000.0)
        assert model.cpu_static_mw == pytest.approx(10_000.0)

    def test_rejects_zero_power_baseline(self):
        with pytest.raises(ValueError):
            SystemEnergyModel(fake_result(power_mw=0.0))


class TestReports:
    def test_baseline_reports_unity(self):
        base = fake_result()
        report = SystemEnergyModel(base).report(base)
        assert report.normalized_memory_energy == pytest.approx(1.0)
        assert report.normalized_system_energy == pytest.approx(1.0)
        assert report.normalized_exec_time == pytest.approx(1.0)

    def test_faster_same_power_saves_energy(self):
        base = fake_result()
        better = fake_result(elapsed=80_000, throughput=10.0)
        report = SystemEnergyModel(base).report(better)
        assert report.normalized_memory_energy == pytest.approx(0.8)
        # CPU dynamic power rises with activity, so system savings are
        # smaller than the time saving but still positive.
        assert 0.8 < report.normalized_system_energy < 1.0

    def test_cpu_power_scales_with_activity(self):
        base = fake_result()
        model = SystemEnergyModel(base)
        slow = fake_result(throughput=4.0)
        assert model.cpu_power(slow) < model.cpu_power(base)
        # One third of CPU power is static: halving activity cannot
        # halve CPU power.
        assert model.cpu_power(slow) > 0.5 * model.cpu_power(base)

    def test_memory_power_reduction_tracks(self):
        base = fake_result()
        low_power = fake_result(power_mw=8_500.0)
        report = SystemEnergyModel(base).report(low_power)
        assert report.normalized_memory_power == pytest.approx(0.85)


class TestWeightedSpeedup:
    def test_identity(self):
        assert weighted_speedup([1.0] * 8, [1.0] * 8) == pytest.approx(8.0)

    def test_paper_definition(self):
        # sum_i IPC_shared / IPC_alone
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 1.0])

    def test_zero_alone_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])
