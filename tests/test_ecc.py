"""SECDED(72,64), byte parity, and the fault injector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ecc import (
    FaultInjector,
    SECDED,
    byte_parity,
    parity_check,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSECDEDClean:
    @given(WORDS)
    @settings(max_examples=60)
    def test_roundtrip(self, word):
        decoded, status = SECDED.decode(SECDED.encode(word))
        assert status == "ok"
        assert decoded == word

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SECDED.encode(1 << 64)
        with pytest.raises(ValueError):
            SECDED.encode(-1)

    def test_distinct_words_distinct_codewords(self):
        codes = {SECDED.encode(w) for w in range(256)}
        assert len(codes) == 256


class TestSECDEDErrors:
    @given(WORDS, st.integers(min_value=0, max_value=71))
    @settings(max_examples=60)
    def test_single_bit_corrected(self, word, bit):
        corrupted = SECDED.encode(word) ^ (1 << bit)
        decoded, status = SECDED.decode(corrupted)
        assert status == "corrected"
        assert decoded == word

    @given(WORDS, st.integers(min_value=0, max_value=71),
           st.integers(min_value=0, max_value=71))
    @settings(max_examples=60)
    def test_double_bit_detected(self, word, b1, b2):
        if b1 == b2:
            return
        corrupted = SECDED.encode(word) ^ (1 << b1) ^ (1 << b2)
        decoded, status = SECDED.decode(corrupted)
        assert status == "detected"
        assert decoded is None


class TestByteParity:
    def test_zero_word(self):
        assert byte_parity(0) == 0

    def test_one_bit_per_byte(self):
        word = sum(1 << (8 * i) for i in range(8))
        assert byte_parity(word) == 0xFF

    @given(WORDS, st.integers(min_value=0, max_value=63))
    @settings(max_examples=60)
    def test_single_flip_always_detected(self, word, bit):
        parity = byte_parity(word)
        assert parity_check(word, parity)
        assert not parity_check(word ^ (1 << bit), parity)

    def test_double_flip_same_byte_aliases(self):
        # The known coverage hole (paper Sec 4.2.3): an even number of
        # flips within one byte passes parity — SECDED catches it later.
        word = 0
        parity = byte_parity(word)
        corrupted = word ^ 0b11  # two bits in byte 0
        assert parity_check(corrupted, parity)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            byte_parity(1 << 64)


class TestFaultInjector:
    def test_zero_rate_never_fails(self):
        inj = FaultInjector(0.0)
        assert all(inj.fast_part_ok() for _ in range(1000))
        assert inj.stats.parity_errors == 0
        assert inj.stats.checks == 1000

    def test_full_rate_always_fails(self):
        inj = FaultInjector(1.0)
        assert not any(inj.fast_part_ok() for _ in range(100))
        assert inj.stats.parity_errors == 100

    def test_rate_approximated(self):
        inj = FaultInjector(0.25, seed=3)
        n = 4000
        fails = sum(0 if inj.fast_part_ok() else 1 for _ in range(n))
        assert 0.2 < fails / n < 0.3

    def test_deterministic_given_seed(self):
        a = [FaultInjector(0.5, seed=9).fast_part_ok() for _ in range(50)]
        b = [FaultInjector(0.5, seed=9).fast_part_ok() for _ in range(50)]
        assert a == b

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultInjector(1.5)
