"""Resilience layer: retry policy, fault injection, classification,
graceful degradation, quarantine, and chaos determinism."""

import json
import pickle

import pytest

from repro.experiments import (
    MISSING,
    ExperimentConfig,
    ExperimentTable,
    FailedRun,
    FaultPlan,
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    RunSpec,
    SuiteError,
    failure_appendix,
    run_specs,
)
from repro.experiments.executor import resolve_jobs
from repro.experiments.homogeneous import figure_1a, specs_figure_1a
from repro.experiments.resilience import (
    BROKEN_POOL,
    CORRUPT_RESULT,
    CRASH,
    TIMEOUT,
    Fault,
    InjectedCrash,
    activate_fault_plan,
    classify_failure,
    deactivate_fault_plan,
)
from repro.experiments.specs import spec_cache_key
from repro.telemetry import TelemetrySession, activate, deactivate

READS = 60
FAST = RetryPolicy(max_retries=1, backoff_base_s=0.001)


@pytest.fixture(autouse=True)
def _no_leftover_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    yield
    deactivate_fault_plan()


def config_for(tmp_path=None, **kwargs):
    return ExperimentConfig(
        target_dram_reads=READS, benchmarks=("mcf",),
        cache_dir=str(tmp_path) if tmp_path else None, **kwargs)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_attempts_allowed(self):
        assert RetryPolicy().attempts_allowed == 1
        assert RetryPolicy(max_retries=3).attempts_allowed == 4

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_retries=9, backoff_base_s=0.1,
                             backoff_multiplier=2.0, backoff_max_s=0.5,
                             jitter_fraction=0.0)
        delays = [policy.backoff_s(a, "k") for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter_fraction=0.25)
        a = policy.backoff_s(1, "mcf/ddr3")
        assert a == policy.backoff_s(1, "mcf/ddr3")  # same schedule always
        assert 0.75 <= a <= 1.0
        assert a != policy.backoff_s(1, "mcf/rldram3")  # keyed by spec

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)


# ---------------------------------------------------------------------------
# Classification, MISSING, FailedRun
# ---------------------------------------------------------------------------


class TestClassification:
    def test_kinds(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_failure(RuntimeError("x")) == CRASH
        assert classify_failure(TimeoutError()) == TIMEOUT
        assert classify_failure(BrokenProcessPool()) == BROKEN_POOL


class TestMissing:
    def test_absorbs_arithmetic(self):
        assert (1.0 / MISSING) is MISSING
        assert (MISSING - 3) is MISSING
        assert sum([1, MISSING, 2]) is MISSING
        assert -MISSING is MISSING

    def test_formats_as_em_dash(self):
        assert f"{MISSING:.3f}" == "—"
        assert repr(MISSING) == "—"

    def test_falsy_iterable_indexable(self):
        assert not MISSING
        assert list(MISSING) == []
        assert MISSING["anything"] is MISSING
        assert MISSING.attr.method() is MISSING

    def test_float_raises(self):
        with pytest.raises(TypeError):
            float(MISSING)

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING


class TestFailedRun:
    def test_attribute_access_yields_missing(self):
        failed = FailedRun("mcf", "ddr3", kind=CRASH, attempts=2, error="boom")
        assert failed.throughput is MISSING
        assert failed.speedup_over(object()) is MISSING
        assert failed.extra["fig3"] is MISSING
        assert failed.label == "mcf/ddr3"

    def test_table_renders_em_dash_and_mean_skips(self):
        table = ExperimentTable("t", "demo", ["benchmark", "value"])
        table.add(benchmark="a", value=MISSING)
        table.add(benchmark="b", value=2.0)
        text = table.format()
        assert "—" in text
        assert table.mean("value") == 2.0  # MISSING excluded, not zero

    def test_mean_of_all_failed_column_is_missing(self):
        table = ExperimentTable("t", "demo", ["benchmark", "value"])
        table.add(benchmark="a", value=MISSING)
        assert table.mean("value") is MISSING
        empty = ExperimentTable("t", "demo", ["benchmark", "value"])
        assert empty.mean("value") == 0.0  # no rows at all: old behaviour

    def test_appendix_lists_failures(self):
        failed = FailedRun("mcf", "rldram3", kind=TIMEOUT, attempts=3,
                           error="TimeoutError: exceeded 4s")
        text = failure_appendix([failed])
        assert "mcf/rldram3" in text and "timeout" in text and "3" in text
        md = failure_appendix([failed], markdown=True)
        assert md.startswith("## Failure appendix")
        assert failure_appendix([]) == ""


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_modes_times_seconds(self):
        plan = FaultPlan.parse(
            "mcf/ddr3=crash;mcf/rldram3=hang:*:20,lbm/rl=corrupt:2")
        assert plan.fault_for("mcf/ddr3", 1).mode == "crash"
        assert plan.fault_for("mcf/ddr3", 2) is None  # times defaults to 1
        hang = plan.fault_for("mcf/rldram3", 99)
        assert hang.mode == "hang" and hang.seconds == 20.0
        assert plan.fault_for("lbm/rl", 2).mode == "corrupt"
        assert plan.fault_for("lbm/rl", 3) is None
        assert plan.fault_for("other/ddr3", 1) is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("no-equals-sign")
        with pytest.raises(ValueError):
            FaultPlan.parse("mcf/ddr3=explode")
        with pytest.raises(ValueError):
            Fault("x", "hang", seconds=-1)

    def test_from_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/ddr3=explode")
        with pytest.raises(ValueError, match="REPRO_FAULT_PLAN"):
            FaultPlan.from_env()

    def test_crash_fires_on_leading_attempts_only(self):
        plan = FaultPlan.parse("a/b=crash:2")
        with pytest.raises(InjectedCrash):
            plan.before_run("a/b", 1)
        with pytest.raises(InjectedCrash):
            plan.before_run("a/b", 2)
        plan.before_run("a/b", 3)  # retired after two firings

    def test_corrupt_replaces_result(self):
        plan = FaultPlan.parse("a/b=corrupt")
        out = plan.after_run("a/b", 1, "real-result")
        assert out != "real-result" and isinstance(out, dict)
        assert plan.after_run("a/b", 2, "real-result") == "real-result"


# ---------------------------------------------------------------------------
# Satellite: resolve_jobs on malformed REPRO_JOBS
# ---------------------------------------------------------------------------


class TestResolveJobsValidation:
    def test_malformed_env_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "two")
        with pytest.raises(ValueError, match="REPRO_JOBS.*'two'"):
            resolve_jobs()

    def test_empty_env_still_defaults_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs() == 1

    def test_explicit_arg_bypasses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert resolve_jobs(2) == 2


# ---------------------------------------------------------------------------
# Satellite: ResultCache quarantine
# ---------------------------------------------------------------------------


class TestCacheQuarantine:
    def _entry_path(self, cache, key):
        return cache._path(key)

    def test_corrupt_json_is_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = self._entry_path(cache, "key")
        path.write_text("{not json")
        assert cache.get("key") is None
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()

    def test_schema_drift_is_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = self._entry_path(cache, "key")
        path.write_text(json.dumps({"__key__": "key", "not_a_field": 1}))
        assert cache.get("key") is None
        assert path.with_suffix(".json.corrupt").exists()

    def test_key_mismatch_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = self._entry_path(cache, "key")
        path.write_text(json.dumps({"__key__": "other-key"}))
        assert cache.get("key") is None
        assert path.exists()  # left in place: valid entry, different key

    def test_quarantine_counts_in_telemetry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._entry_path(cache, "key").write_text("garbage")
        session = activate(TelemetrySession())
        try:
            cache.get("key")
        finally:
            deactivate()
        assert session.counters["cache.quarantined"] == 1
        assert session.manifest()["counters"]["cache.quarantined"] == 1

    def test_rerun_after_quarantine_repopulates(self, tmp_path):
        config = config_for(tmp_path)
        spec = RunSpec("mcf", "ddr3")
        run_specs([spec], config, jobs=1)
        path = self._entry_path(ResultCache(str(tmp_path)),
                                spec_cache_key(spec, config))
        path.write_text("{truncated")
        results = run_specs([spec], config, jobs=1)  # re-runs, not recalls
        assert results[spec].elapsed_cycles > 0
        assert path.exists()  # rewritten by the re-run
        assert path.with_suffix(".json.corrupt").exists()  # evidence kept


# ---------------------------------------------------------------------------
# Executor resilience: serial path (in-process, fault plan activated
# programmatically)
# ---------------------------------------------------------------------------


class TestSerialResilience:
    def test_crash_retry_succeeds(self):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=crash:1"))
        executor = ParallelExecutor(config_for(), jobs=1, policy=FAST)
        results = executor.run([RunSpec("mcf", "ddr3")])
        assert results[RunSpec("mcf", "ddr3")].elapsed_cycles > 0
        assert executor.counters["resilience.failures.crash"] == 1
        assert executor.counters["resilience.retries"] == 1
        assert not executor.failures

    def test_exhausted_keep_going_records_failed_run(self):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=crash:*"))
        executor = ParallelExecutor(config_for(), jobs=1, policy=FAST,
                                    keep_going=True)
        results = executor.run([RunSpec("mcf", "ddr3"),
                                RunSpec("mcf", "rldram3")])
        failed = results[RunSpec("mcf", "ddr3")]
        assert isinstance(failed, FailedRun)
        assert failed.kind == CRASH and failed.attempts == 2
        assert executor.failures == [failed]
        # The healthy spec still produced a real result.
        assert results[RunSpec("mcf", "rldram3")].elapsed_cycles > 0

    def test_exhausted_fail_fast_raises_suite_error(self):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=crash:*"))
        executor = ParallelExecutor(config_for(), jobs=1, policy=FAST)
        with pytest.raises(SuiteError, match="mcf/ddr3.*crash"):
            executor.run([RunSpec("mcf", "ddr3")])

    def test_corrupt_result_classified(self):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=corrupt:*"))
        executor = ParallelExecutor(config_for(), jobs=1, policy=FAST,
                                    keep_going=True)
        results = executor.run([RunSpec("mcf", "ddr3")])
        failed = results[RunSpec("mcf", "ddr3")]
        assert isinstance(failed, FailedRun)
        assert failed.kind == CORRUPT_RESULT

    def test_corrupt_result_never_cached(self, tmp_path):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=corrupt:*"))
        config = config_for(tmp_path)
        executor = ParallelExecutor(config, jobs=1, policy=FAST,
                                    keep_going=True)
        executor.run([RunSpec("mcf", "ddr3")])
        key = spec_cache_key(RunSpec("mcf", "ddr3"), config)
        assert ResultCache(str(tmp_path)).get(key) is None

    def test_failed_attempts_land_in_timings(self):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=crash:1"))
        executor = ParallelExecutor(config_for(), jobs=1, policy=FAST)
        executor.run([RunSpec("mcf", "ddr3")])
        statuses = [(t["status"], t["attempt"]) for t in executor.timings]
        assert (CRASH, 1) in statuses and ("ok", 2) in statuses
        assert json.dumps(executor.timings)  # artifact-serialisable


# ---------------------------------------------------------------------------
# Executor resilience: parallel path (fault plan travels via environment)
# ---------------------------------------------------------------------------


class TestParallelResilience:
    def test_injected_crash_retries_to_success(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/ddr3=crash:1")
        executor = ParallelExecutor(config_for(), jobs=2, policy=FAST)
        results = executor.run([RunSpec("mcf", "ddr3"),
                                RunSpec("mcf", "rldram3")])
        assert not executor.failures
        assert all(r.elapsed_cycles > 0 for r in results.values())
        assert executor.counters["resilience.failures.crash"] == 1
        assert executor.counters["resilience.retries"] == 1

    def test_injected_hang_past_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/rldram3=hang:*:30")
        policy = RetryPolicy(max_retries=1, timeout_s=1.0,
                             backoff_base_s=0.001)
        executor = ParallelExecutor(config_for(), jobs=2, policy=policy,
                                    keep_going=True)
        results = executor.run([RunSpec("mcf", "ddr3"),
                                RunSpec("mcf", "rldram3")])
        failed = results[RunSpec("mcf", "rldram3")]
        assert isinstance(failed, FailedRun)
        assert failed.kind == TIMEOUT and failed.attempts == 2
        assert executor.counters["resilience.failures.timeout"] == 2
        # The innocent spec sharing the pool still completed.
        assert results[RunSpec("mcf", "ddr3")].elapsed_cycles > 0

    def test_hang_recovers_when_fault_retires(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/ddr3=hang:1:30")
        policy = RetryPolicy(max_retries=1, timeout_s=1.0,
                             backoff_base_s=0.001)
        executor = ParallelExecutor(config_for(), jobs=2, policy=policy)
        results = executor.run([RunSpec("mcf", "ddr3")])
        assert not executor.failures
        assert results[RunSpec("mcf", "ddr3")].elapsed_cycles > 0
        assert executor.counters["resilience.failures.timeout"] == 1

    def test_worker_kill_breaks_pool_then_respawns(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/ddr3=kill:1")
        executor = ParallelExecutor(
            config_for(), jobs=2,
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.001))
        results = executor.run([RunSpec("mcf", "ddr3"),
                                RunSpec("mcf", "rldram3")])
        assert not executor.failures
        assert all(r.elapsed_cycles > 0 for r in results.values())
        assert executor.counters["resilience.failures.broken-pool"] >= 1

    def test_degrade_serial_rescues_worker_only_failure(self, monkeypatch):
        # kill:* breaks every pool attempt; the in-process last resort
        # runs with the fault hook disabled and rescues the spec.
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/ddr3=kill:*")
        executor = ParallelExecutor(config_for(), jobs=2, policy=FAST,
                                    degrade_serial=True)
        results = executor.run([RunSpec("mcf", "ddr3")])
        assert not executor.failures
        assert results[RunSpec("mcf", "ddr3")].elapsed_cycles > 0
        assert executor.counters["resilience.degraded_runs"] == 1

    def test_keyboard_interrupt_strands_no_workers(self, monkeypatch):
        import concurrent.futures
        import multiprocessing

        monkeypatch.setattr(
            concurrent.futures, "wait",
            lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()))
        executor = ParallelExecutor(config_for(), jobs=2)
        with pytest.raises(KeyboardInterrupt):
            executor.run([RunSpec("mcf", "ddr3"),
                          RunSpec("mcf", "rldram3")])
        # The pool was shut down and its workers terminated+joined, so
        # Ctrl-C leaves no orphan processes behind.
        assert multiprocessing.active_children() == []

    def test_parallel_failure_counters_reach_session(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/ddr3=crash:1")
        session = activate(TelemetrySession())
        try:
            executor = ParallelExecutor(config_for(), jobs=2, policy=FAST)
            executor.run([RunSpec("mcf", "ddr3")])
        finally:
            deactivate()
        assert session.counters["resilience.failures.crash"] == 1
        assert session.counters["resilience.retries"] == 1


# ---------------------------------------------------------------------------
# Chaos determinism: the acceptance bar
# ---------------------------------------------------------------------------


class TestChaosDeterminism:
    READS = 120

    def _table(self, cache_dir, jobs=2, policy=None):
        config = ExperimentConfig(target_dram_reads=self.READS,
                                  benchmarks=("mcf",),
                                  cache_dir=str(cache_dir))
        executor = ParallelExecutor(config, jobs=jobs,
                                    policy=policy or RetryPolicy())
        results = executor.run(specs_figure_1a(config))
        return figure_1a(config, results=results).format(), executor

    def test_crashes_with_retries_yield_byte_identical_tables(
            self, monkeypatch, tmp_path):
        clean, _ = self._table(tmp_path / "clean")
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "mcf/ddr3=crash:1;mcf/lpddr2=crash:1")
        faulty, executor = self._table(
            tmp_path / "faulty",
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.001))
        assert not executor.failures
        assert executor.counters["resilience.retries"] == 2
        assert faulty == clean  # byte-identical despite two crashes

    def test_exhausted_failures_degrade_gracefully(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/rldram3=crash:*")
        config = ExperimentConfig(target_dram_reads=self.READS,
                                  benchmarks=("mcf",),
                                  cache_dir=str(tmp_path / "kg"))
        executor = ParallelExecutor(config, jobs=2, policy=FAST,
                                    keep_going=True)
        results = executor.run(specs_figure_1a(config))
        table = figure_1a(config, results=results)
        text = table.format()
        assert "—" in text  # rldram3 column degrades to em-dashes
        # The untouched columns still carry real numbers.
        mcf_row = next(r for r in table.rows if r["benchmark"] == "mcf")
        assert isinstance(mcf_row["lpddr2"], float)
        assert mcf_row["rldram3"] is MISSING
        appendix = failure_appendix(executor.failures)
        assert "mcf/rldram3" in appendix and CRASH in appendix
