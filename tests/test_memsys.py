"""Homogeneous memory system and the page-placement alternative."""

from repro.core.placement import (
    PAGE_LINES,
    PagePlacementConfig,
    PagePlacementMemory,
    profile_page_heat,
)
from repro.cpu.core import TraceRecord
from repro.dram.device import DRAMKind
from repro.memsys.homogeneous import HomogeneousConfig, HomogeneousMemory
from repro.util.events import EventQueue


def finish_read(events, memory, line, word=0, is_prefetch=False):
    log = {}
    ok = memory.issue_read(line, word, 0, is_prefetch,
                           lambda t: log.setdefault("critical", t),
                           lambda t: log.setdefault("complete", t))
    assert ok
    guard = 0
    while "complete" not in log:
        assert events.step()
        guard += 1
        assert guard < 100_000
    return log


class TestHomogeneous:
    def test_read_completes_with_ordered_callbacks(self):
        events = EventQueue()
        memory = HomogeneousMemory(events)
        log = finish_read(events, memory, line=1234, word=3)
        assert log["critical"] <= log["complete"]
        assert memory.stats.reads == 1
        assert memory.stats.demand_reads == 1

    def test_prefetch_not_in_demand_stats(self):
        events = EventQueue()
        memory = HomogeneousMemory(events)
        finish_read(events, memory, line=1234, word=0, is_prefetch=True)
        assert memory.stats.demand_reads == 0
        assert memory.stats.reads == 1

    def test_writes_counted(self):
        events = EventQueue()
        memory = HomogeneousMemory(events)
        assert memory.issue_write(99, 0, 0)
        events.run(5000)
        assert memory.stats.writes == 1

    def test_reads_spread_across_channels(self):
        events = EventQueue()
        memory = HomogeneousMemory(events)
        lines_per_row = memory.mapper.lines_per_row
        for i in range(8):
            memory.issue_read(i * lines_per_row, 0, 0, False,
                              lambda t: None, lambda t: None)
        queued = [len(mc.read_queue) for mc in memory.controllers]
        assert queued == [2, 2, 2, 2]

    def test_rldram_variant_faster(self):
        ddr_events = EventQueue()
        ddr = HomogeneousMemory(ddr_events)
        rld_events = EventQueue()
        rld = HomogeneousMemory(rld_events,
                                HomogeneousConfig(kind=DRAMKind.RLDRAM3))
        ddr_log = finish_read(ddr_events, ddr, line=5)
        rld_log = finish_read(rld_events, rld, line=5)
        assert rld_log["complete"] < ddr_log["complete"]

    def test_chip_activities_shape(self):
        events = EventQueue()
        memory = HomogeneousMemory(events)
        finish_read(events, memory, line=5)
        activities = memory.chip_activities(elapsed_cycles=10_000)
        assert set(activities) == {"ddr3"}
        # 4 channels x 1 rank x 9 devices.
        assert len(activities["ddr3"]) == 36
        assert any(a.reads for a in activities["ddr3"])

    def test_latency_views(self):
        events = EventQueue()
        memory = HomogeneousMemory(events)
        finish_read(events, memory, line=5)
        assert memory.avg_core_latency() > 0
        assert memory.avg_queue_latency() >= 0


class TestPageHeatProfiling:
    def test_ranks_by_access_count(self):
        hot_page, cold_page = 3, 9
        trace = [TraceRecord(0, False, hot_page * PAGE_LINES * 64)] * 10
        trace += [TraceRecord(0, False, cold_page * PAGE_LINES * 64)] * 2
        ranking = profile_page_heat([trace])
        assert ranking == [hot_page, cold_page]


class TestPagePlacement:
    def make(self, ranking, fraction=0.5):
        events = EventQueue()
        memory = PagePlacementMemory(
            events, ranking,
            PagePlacementConfig(hot_page_fraction=fraction))
        return events, memory

    def test_hot_page_routed_to_rldram(self):
        events, memory = self.make(ranking=list(range(10)), fraction=0.5)
        line = 2 * PAGE_LINES + 7   # page 2: hot (top 5 of 10)
        log = finish_read(events, memory, line)
        assert memory.hot_accesses == 1
        assert memory.stats.critical_served_fast == 1

    def test_cold_page_routed_to_lpddr(self):
        events, memory = self.make(ranking=list(range(10)), fraction=0.2)
        line = 9 * PAGE_LINES   # page 9: cold
        finish_read(events, memory, line)
        assert memory.cold_accesses == 1
        assert memory.stats.critical_served_slow == 1

    def test_hot_read_is_faster(self):
        events, memory = self.make(ranking=list(range(10)), fraction=0.5)
        hot = finish_read(events, memory, 0)              # page 0: hot
        cold = finish_read(events, memory, 9 * PAGE_LINES)
        hot_latency = hot["critical"] - 0
        assert hot["critical"] < cold["critical"]

    def test_activities_families(self):
        events, memory = self.make(ranking=list(range(4)))
        finish_read(events, memory, 0)
        activities = memory.chip_activities(10_000)
        assert set(activities) == {"lpddr2", "rldram3"}
        assert len(activities["lpddr2"]) == 27  # 3 channels x 9 chips
        assert len(activities["rldram3"]) == 8
