"""Tests for clock-domain arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.util.cycles import (
    bus_cycles_to_cpu_cycles,
    ceil_div,
    cycles_to_ns,
    ns_to_cycles,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_float_ceil(self, a, b):
        import math
        assert ceil_div(a, b) == math.ceil(a / b)


class TestNsToCycles:
    def test_table2_ddr3_trc(self):
        # 50 ns at 3.2 GHz is exactly 160 cycles.
        assert ns_to_cycles(50.0) == 160

    def test_table2_ddr3_trcd(self):
        # 13.5 ns * 3.2 = 43.2 -> rounds up to 44 (constraints are safe).
        assert ns_to_cycles(13.5) == 44

    def test_rldram_trc(self):
        assert ns_to_cycles(12.0) == 39  # 38.4 rounds up

    def test_zero(self):
        assert ns_to_cycles(0.0) == 0

    def test_float_noise_does_not_add_cycle(self):
        # 10 ns * 3.2 GHz = 32.000000000000004 in float; must stay 32.
        assert ns_to_cycles(10.0) == 32

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ns_to_cycles(-1.0)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_never_undershoots(self, ns):
        cycles = ns_to_cycles(ns)
        assert cycles + 1e-6 >= ns * 3.2 - 1e-3

    def test_roundtrip_consistency(self):
        cycles = ns_to_cycles(37.0)
        assert cycles_to_ns(cycles) >= 37.0 - 1e-9


class TestBusCycles:
    def test_ddr3_bus_cycle(self):
        # One 800 MHz bus cycle = 1.25 ns = 4 CPU cycles at 3.2 GHz.
        assert bus_cycles_to_cpu_cycles(1, 800.0) == 4

    def test_lpddr2_bus_cycle(self):
        assert bus_cycles_to_cpu_cycles(1, 400.0) == 8

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bus_cycles_to_cpu_cycles(-1, 800.0)
