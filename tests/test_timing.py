"""Timing presets must match paper Table 2 and convert correctly."""

import pytest

from repro.dram.timing import (
    DDR3_TIMING,
    LPDDR2_TIMING,
    RLDRAM3_TIMING,
    TIMING_PRESETS,
    TimingParameters,
    TimingSet,
)


class TestTable2Values:
    """Paper Table 2, verbatim."""

    def test_ddr3(self):
        t = DDR3_TIMING
        assert (t.t_rc, t.t_rcd, t.t_rl, t.t_rp) == (50.0, 13.5, 13.5, 13.5)
        assert (t.t_ras, t.t_faw, t.t_wtr, t.t_wl) == (37.0, 40.0, 7.5, 6.5)
        assert t.t_rtrs_bus_cycles == 2

    def test_lpddr2(self):
        t = LPDDR2_TIMING
        assert (t.t_rc, t.t_rcd, t.t_rl, t.t_rp) == (60.0, 18.0, 18.0, 18.0)
        assert (t.t_ras, t.t_faw, t.t_wtr, t.t_wl) == (42.0, 50.0, 7.5, 6.5)

    def test_rldram3(self):
        t = RLDRAM3_TIMING
        assert t.t_rc == 12.0
        assert t.t_rl == 10.0
        assert t.t_wl == 11.25
        assert t.t_wtr == 0.0
        assert t.t_faw == 0.0  # no activation-window restriction

    def test_frequencies(self):
        assert DDR3_TIMING.bus_freq_mhz == 800.0
        assert RLDRAM3_TIMING.bus_freq_mhz == 800.0
        assert LPDDR2_TIMING.bus_freq_mhz == 400.0

    def test_presets_registry(self):
        assert set(TIMING_PRESETS) == {"ddr3", "lpddr2", "rldram3"}


class TestBurstMath:
    def test_ddr3_burst_is_5ns(self):
        # BL8 double-data-rate at 800 MHz: 4 bus cycles = 5 ns per line.
        assert DDR3_TIMING.t_burst == pytest.approx(5.0)

    def test_lpddr2_burst_is_10ns(self):
        assert LPDDR2_TIMING.t_burst == pytest.approx(10.0)

    def test_rldram3_burst_is_5ns(self):
        assert RLDRAM3_TIMING.t_burst == pytest.approx(5.0)


class TestTimingSet:
    def test_ddr3_cycles(self):
        ts = TimingSet(DDR3_TIMING)
        assert ts.t_rc == 160     # 50 ns * 3.2
        assert ts.t_rcd == 44     # ceil(43.2)
        assert ts.t_burst == 16   # 5 ns
        assert ts.bus_cycle == 4

    def test_lpddr2_cycles(self):
        ts = TimingSet(LPDDR2_TIMING)
        assert ts.t_rc == 192
        assert ts.t_burst == 32
        assert ts.bus_cycle == 8

    def test_rldram3_cycles(self):
        ts = TimingSet(RLDRAM3_TIMING)
        assert ts.t_rc == 39
        assert ts.t_rl == 32
        assert ts.t_faw == 0

    def test_custom_cpu_frequency(self):
        ts = TimingSet(DDR3_TIMING, cpu_freq_ghz=1.0)
        assert ts.t_rc == 50

    def test_rldram_faster_than_ddr3_everywhere_it_matters(self):
        rld = TimingSet(RLDRAM3_TIMING)
        ddr = TimingSet(DDR3_TIMING)
        assert rld.t_rc < ddr.t_rc
        assert rld.t_rl < ddr.t_rl


class TestValidation:
    def test_rejects_nonpositive_trc(self):
        with pytest.raises(ValueError):
            TimingParameters(name="bad", t_rc=0.0, t_rcd=1, t_rl=1, t_rp=1,
                             t_ras=1, t_rtrs_bus_cycles=2, t_faw=1,
                             t_wtr=1, t_wl=1)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            TimingParameters(name="bad", t_rc=10, t_rcd=1, t_rl=1, t_rp=1,
                             t_ras=1, t_rtrs_bus_cycles=2, t_faw=1,
                             t_wtr=1, t_wl=1, burst_length=0)
