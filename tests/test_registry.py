"""Backend registry: resolution, conformance, builds, cache-key version."""

import subprocess
import sys

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.specs import RunSpec, spec_cache_key
from repro.memsys.base import (
    MemorySystem,
    MemorySystemProtocolError,
    assert_conformant,
    conformance_problems,
)
from repro.memsys.registry import (
    BackendError,
    DuplicateBackendError,
    UnknownBackendError,
    backend_names,
    create_memory,
    get_backend,
    list_backends,
    register_backend,
    resolve_name,
    unregister_backend,
)
from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import run_benchmark
from repro.util.events import EventQueue
from repro.workloads.profiles import profile_for

ALL_BACKENDS = backend_names()
TINY = SimConfig(target_dram_reads=60)


class TestResolution:
    def test_canonical_names_resolve_to_themselves(self):
        for name in ALL_BACKENDS:
            assert resolve_name(name) == name

    @pytest.mark.parametrize("alias,canonical", [
        ("baseline", "ddr3"),
        ("rldram", "rldram3"),
        ("lpddr", "lpddr2"),
        ("pp", "page_placement"),
        ("hmc", "hmc_cwf"),
    ])
    def test_aliases(self, alias, canonical):
        assert resolve_name(alias) == canonical
        assert get_backend(alias).name == canonical

    def test_normalisation(self):
        assert resolve_name("  DDR3 ") == "ddr3"
        assert resolve_name("hmc-cwf") == "hmc_cwf"

    def test_deprecated_enum_accepted(self):
        assert resolve_name(MemoryKind.RL) == "rl"
        assert resolve_name(MemoryKind.PAGE_PLACEMENT) == "page_placement"

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve_name("hmc_cfw")
        assert "hmc_cwf" in str(excinfo.value)
        assert "list-backends" in str(excinfo.value)

    def test_non_string_rejected(self):
        with pytest.raises(BackendError):
            resolve_name(42)

    def test_runspec_and_simconfig_canonicalise(self):
        assert RunSpec("mcf", "RL") == RunSpec("mcf", MemoryKind.RL)
        assert SimConfig(memory="baseline").memory == "ddr3"
        with pytest.raises(UnknownBackendError):
            SimConfig(memory="ddr4")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateBackendError):
            register_backend("ddr3")(lambda *a, **k: None)

    def test_alias_clash_rejected(self):
        with pytest.raises(DuplicateBackendError):
            register_backend("fresh_name", aliases=("baseline",))(
                lambda *a, **k: None)
        assert "fresh_name" not in backend_names()

    def test_register_unregister_roundtrip(self):
        @register_backend("tmp_backend", aliases=("tmpb",),
                          description="test-only")
        def _build(config, events, traces=None, profile=None):
            from repro.memsys.homogeneous import HomogeneousMemory
            return HomogeneousMemory(events)

        try:
            assert resolve_name("tmpb") == "tmp_backend"
            memory = create_memory("tmp_backend", TINY, EventQueue())
            assert memory.backend_name == "tmp_backend"
        finally:
            unregister_backend("tmp_backend")
        with pytest.raises(UnknownBackendError):
            resolve_name("tmp_backend")
        with pytest.raises(UnknownBackendError):
            resolve_name("tmpb")

    def test_descriptors_expose_capabilities(self):
        for descriptor in list_backends():
            caps = descriptor.capabilities()
            assert set(caps) == {"needs_profile", "is_heterogeneous",
                                 "dram_families"}
            assert descriptor.description
            assert descriptor.dram_families


class TestConformance:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_every_backend_builds_conformant(self, name):
        memory = create_memory(name, TINY, EventQueue(),
                               profile=profile_for("mcf"))
        assert isinstance(memory, MemorySystem)
        assert conformance_problems(memory) == []
        described = memory.describe()
        assert described["backend"] == name
        assert described["controllers"]

    def test_nonconformant_rejected(self):
        class Bogus:
            pass

        problems = conformance_problems(Bogus())
        assert problems
        with pytest.raises(MemorySystemProtocolError):
            assert_conformant(Bogus())


class TestTinyRuns:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_every_backend_completes_a_run(self, name):
        result = run_benchmark("mcf", TINY.with_memory(name))
        assert result.memory == name
        assert result.elapsed_cycles > 0
        assert result.dram_reads >= TINY.target_dram_reads
        assert result.avg_critical_latency > 0.0


class TestCacheKeyVersion:
    def test_v8_differs_from_older_formats(self):
        config = ExperimentConfig(target_dram_reads=100)
        key = spec_cache_key(RunSpec("mcf", "rl"), config)
        assert key.startswith("v8|")
        assert not key.startswith(("v6|", "v7|"))

    def test_stable_across_processes(self):
        config = ExperimentConfig(target_dram_reads=100)
        local = spec_cache_key(RunSpec("mcf", "hmc_cwf"), config)
        script = (
            "from repro.experiments.runner import ExperimentConfig\n"
            "from repro.experiments.specs import RunSpec, spec_cache_key\n"
            "print(spec_cache_key(RunSpec('mcf', 'hmc_cwf'),"
            " ExperimentConfig(target_dram_reads=100)))\n")
        remote = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True).stdout.strip()
        assert remote == local

    def test_enum_and_string_specs_share_keys(self):
        config = ExperimentConfig(target_dram_reads=100)
        assert (spec_cache_key(RunSpec("mcf", MemoryKind.RL), config)
                == spec_cache_key(RunSpec("mcf", "rl"), config))
