"""End-to-end simulation harness tests (small but real runs)."""

import pytest

from repro.sim.config import MemoryKind, SimConfig, TABLE1, build_memory
from repro.sim.system import (
    SimulationSystem,
    make_traces,
    prewarm_l2,
    run_benchmark,
)
from repro.util.events import EventQueue
from repro.workloads.profiles import profile_for

SMALL = SimConfig(target_dram_reads=400, num_cores=2)


def small_config(memory=MemoryKind.DDR3, cores=2, reads=400):
    return SimConfig(memory=memory, num_cores=cores,
                     target_dram_reads=reads)


class TestRunBasics:
    def test_run_completes_and_reports(self):
        result = run_benchmark("mcf", small_config())
        assert result.benchmark == "mcf"
        assert result.elapsed_cycles > 0
        assert result.instructions > 0
        assert result.dram_reads > 0
        assert len(result.per_core_ipc) == 2
        assert all(ipc > 0 for ipc in result.per_core_ipc)
        assert 0 < result.throughput <= 8.0

    def test_determinism(self):
        a = run_benchmark("mcf", small_config())
        b = run_benchmark("mcf", small_config())
        assert a.elapsed_cycles == b.elapsed_cycles
        assert a.per_core_ipc == b.per_core_ipc
        assert a.dram_reads == b.dram_reads

    def test_same_work_across_memories(self):
        """The paper's methodology: identical instruction streams."""
        a = run_benchmark("mcf", small_config(MemoryKind.DDR3))
        b = run_benchmark("mcf", small_config(MemoryKind.RL))
        assert a.instructions == b.instructions

    def test_latency_stats_populated(self):
        result = run_benchmark("leslie3d", small_config())
        assert result.avg_critical_latency > 0
        assert result.avg_fill_latency >= result.avg_critical_latency
        assert 0 < result.bus_utilization < 1
        assert result.memory_power_mw > 0

    def test_word0_profile_captured(self):
        result = run_benchmark("leslie3d", small_config())
        assert result.word0_fraction > 0.5
        assert len(result.critical_distribution) == 8
        assert sum(result.critical_distribution) == pytest.approx(1.0)


class TestMemoryKinds:
    @pytest.mark.parametrize("kind", list(MemoryKind))
    def test_every_kind_runs(self, kind):
        result = run_benchmark("mcf", small_config(kind, reads=200))
        assert result.memory == kind.value
        assert result.throughput > 0

    def test_cwf_kinds_report_fast_fraction(self):
        result = run_benchmark("leslie3d", small_config(MemoryKind.RL))
        assert result.fast_service_fraction > 0.5


class TestPrewarm:
    def test_prewarm_fills_l2(self):
        config = small_config()
        profile = profile_for("mcf")
        traces = make_traces(profile, config)
        system = SimulationSystem(config, traces, profile=profile)
        prewarm_l2(system, profile)
        capacity = (system.uncore.l2.config.num_sets
                    * system.uncore.l2.config.associativity)
        assert system.uncore.l2.occupancy() >= capacity * 0.6

    def test_prewarm_generates_writeback_traffic(self):
        warm = run_benchmark("stream", small_config(reads=400), warm=True)
        cold = run_benchmark("stream", small_config(reads=400), warm=False)
        assert warm.dram_writes > cold.dram_writes


class TestConfigHelpers:
    def test_with_memory(self):
        config = SMALL.with_memory(MemoryKind.RL)
        assert config.memory == "rl"
        assert config.target_dram_reads == SMALL.target_dram_reads

    def test_without_prefetcher(self):
        config = SMALL.without_prefetcher()
        assert not config.uncore.prefetcher.enabled

    def test_table1_keys(self):
        assert TABLE1["Re-Order-Buffer"] == "64 entry"
        assert "DRAM Read Queue" in TABLE1

    def test_build_memory_page_placement_needs_inputs(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            build_memory(SMALL.with_memory(MemoryKind.PAGE_PLACEMENT),
                         events)


class TestSpeedupMath:
    def test_speedup_over_self_is_one(self):
        result = run_benchmark("mcf", small_config())
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_memory_energy_consistent(self):
        result = run_benchmark("mcf", small_config())
        assert result.memory_energy_mj == pytest.approx(
            result.memory_power_mw * result.elapsed_cycles)
