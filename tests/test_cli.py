"""CLI entry point."""

import pytest

from repro.cli import build_parser, main, make_config


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.experiment == "fig6"
        assert args.reads is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig6", "--reads", "500", "--benchmarks", "mcf,lbm",
             "--cache", "off"])
        config = make_config(args)
        assert config.target_dram_reads == 500
        assert config.benchmarks == ("mcf", "lbm")
        assert config.cache_dir is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2

    def test_runs_table2(self, capsys):
        assert main(["tab2", "--cache", "off"]) == 0
        out = capsys.readouterr().out
        assert "tRC" in out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["tab1", "--cache", "off",
                     "--output", str(out_file)]) == 0
        assert "Re-Order-Buffer" in out_file.read_text()

    def test_small_simulation_experiment(self, capsys, tmp_path):
        assert main(["fig8", "--reads", "150", "--benchmarks", "mcf",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fast_fraction" in out
