"""CLI entry point."""

import pytest

from repro.cli import build_parser, main, make_config


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.experiment == "fig6"
        assert args.reads is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig6", "--reads", "500", "--benchmarks", "mcf,lbm",
             "--cache", "off"])
        config = make_config(args)
        assert config.target_dram_reads == 500
        assert config.benchmarks == ("mcf", "lbm")
        assert config.cache_dir is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2

    def test_runs_table2(self, capsys):
        assert main(["tab2", "--cache", "off"]) == 0
        out = capsys.readouterr().out
        assert "tRC" in out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["tab1", "--cache", "off",
                     "--output", str(out_file)]) == 0
        assert "Re-Order-Buffer" in out_file.read_text()

    def test_small_simulation_experiment(self, capsys, tmp_path):
        assert main(["fig8", "--reads", "150", "--benchmarks", "mcf",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fast_fraction" in out


class TestListBackendsSubcommand:
    def test_lists_all_backends(self, capsys):
        assert main(["list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("ddr3", "rl", "page_placement", "hmc_cwf"):
            assert name in out
        assert "hetero" in out and "needs-profile" in out

    def test_json_shape(self, capsys):
        import json

        assert main(["list-backends", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in entries}
        assert by_name["hmc_cwf"]["is_heterogeneous"] is True
        assert "hmc" in by_name["hmc_cwf"]["aliases"]
        assert by_name["rl_adaptive"]["needs_profile"] is True


class TestRunSubcommand:
    def test_run_table(self, capsys, tmp_path):
        assert main(["run", "--memory", "ddr3,hmc_cwf",
                     "--benchmarks", "mcf", "--reads", "120",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "hmc_cwf" in out and "critical_latency" in out

    def test_alias_canonicalised_and_deduped(self, capsys, tmp_path):
        assert main(["run", "--memory", "baseline,ddr3",
                     "--benchmarks", "mcf", "--reads", "120",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("ddr3") == 2  # title + single table row
        assert "baseline" not in out

    def test_unknown_memory_exits_2_with_suggestion(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--memory", "hmc_cfw", "--benchmarks", "mcf",
                  "--reads", "120", "--cache", "off"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "hmc_cwf" in err
        assert "registered memory backends" in err


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        assert main(["--version"]) == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_short_flag(self, capsys):
        assert main(["-V"]) == 0
        assert "repro " in capsys.readouterr().out
