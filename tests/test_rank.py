"""Rank-level constraints: tFAW, tRRD, power-down, residency tally."""

import pytest

from repro.dram.device import DDR3_DEVICE, LPDDR2_DEVICE, RLDRAM3_DEVICE
from repro.dram.rank import PowerState, Rank
from repro.dram.timing import (
    DDR3_TIMING,
    LPDDR2_TIMING,
    RLDRAM3_TIMING,
    TimingSet,
)

DDR3 = TimingSet(DDR3_TIMING)
RLD = TimingSet(RLDRAM3_TIMING)
LPD = TimingSet(LPDDR2_TIMING)


@pytest.fixture
def rank():
    return Rank(DDR3_DEVICE, DDR3)


class TestTFAW:
    def test_four_activates_allowed_quickly(self, rank):
        t = 0
        for _ in range(4):
            t = rank.earliest_activate(t)
            rank.note_activate(t)
        # The 5th must wait for the tFAW window from the 1st.
        fifth = rank.earliest_activate(t)
        assert fifth >= DDR3.t_faw

    def test_rldram_has_no_tfaw(self):
        rank = Rank(RLDRAM3_DEVICE, RLD)
        t = 0
        for _ in range(8):
            t = rank.earliest_activate(t)
            rank.note_activate(t)
        # Only tRRD spacing, never a 4-activate window stall.
        assert t < DDR3.t_faw

    def test_trrd_spacing(self, rank):
        rank.note_activate(0)
        assert rank.earliest_activate(1) >= DDR3.t_rrd


class TestPowerDown:
    def test_initially_standby(self, rank):
        assert rank.power_state is PowerState.STANDBY

    def test_power_down_after_idle(self):
        rank = Rank(LPDDR2_DEVICE, LPD)
        rank.touch(0)
        assert not rank.try_power_down(100, idle_threshold=640)
        assert rank.try_power_down(640, idle_threshold=640)
        assert rank.power_state is PowerState.POWER_DOWN
        assert rank.power_down_entries == 1

    def test_rldram_never_powers_down(self):
        rank = Rank(RLDRAM3_DEVICE, RLD)
        assert not rank.try_power_down(10_000, idle_threshold=1)

    def test_open_bank_blocks_power_down(self):
        rank = Rank(LPDDR2_DEVICE, LPD)
        rank.banks[0].activate(0, row=1)
        assert not rank.try_power_down(10_000, idle_threshold=1)

    def test_wake_applies_exit_latency(self):
        rank = Rank(LPDDR2_DEVICE, LPD)
        rank.try_power_down(1000, idle_threshold=0)
        usable = rank.wake(2000)
        assert usable == 2000 + LPD.t_pd_exit
        assert rank.power_state is PowerState.STANDBY
        assert rank.earliest_activate(2000) >= usable

    def test_touch_wakes(self):
        rank = Rank(LPDDR2_DEVICE, LPD)
        rank.try_power_down(1000, idle_threshold=0)
        rank.touch(1500)
        assert rank.power_state is PowerState.STANDBY


class TestResidencyTally:
    def test_tally_covers_elapsed_time(self):
        rank = Rank(LPDDR2_DEVICE, LPD)
        rank.touch(100)
        rank.try_power_down(1000, idle_threshold=0)
        rank.wake(3000)
        tally = rank.finalize_tally(5000)
        assert tally.total() == 5000

    def test_power_down_time_recorded(self):
        rank = Rank(LPDDR2_DEVICE, LPD)
        rank.try_power_down(1000, idle_threshold=0)
        tally = rank.finalize_tally(4000)
        assert tally.power_down == 3000
        assert tally.standby == 1000

    def test_active_time_when_bank_open(self, rank):
        rank.banks[0].activate(0, row=1)
        tally = rank.finalize_tally(500)
        assert tally.active == 500

    def test_stat_rollups(self, rank):
        rank.banks[0].activate(0, row=1)
        rank.banks[0].column_read(DDR3.t_rcd)
        rank.note_activate(0)
        assert rank.activate_count == 1
        assert rank.read_count == 1
        assert rank.write_count == 0
