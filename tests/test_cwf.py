"""The critical-word-first heterogeneous memory system."""

from repro.core.cwf import (
    CriticalWordMemory,
    CWFConfig,
    CWFPolicy,
    DDR3_FAST_DEVICE,
    HeteroPair,
)
from repro.dram.device import DRAMKind
from repro.util.events import EventQueue


def make_memory(policy=CWFPolicy.STATIC, pair=HeteroPair.RL,
                parity_error_rate=0.0, tag_seeder=None,
                shared_command_bus=True):
    events = EventQueue()
    memory = CriticalWordMemory(
        events,
        CWFConfig(pair=pair, policy=policy,
                  parity_error_rate=parity_error_rate,
                  shared_command_bus=shared_command_bus),
        tag_seeder=tag_seeder)
    return events, memory


def do_read(events, memory, line, word, is_prefetch=False):
    log = {}
    ok = memory.issue_read(
        line_address=line, critical_word=word, core_id=0,
        is_prefetch=is_prefetch,
        on_critical=lambda t: log.setdefault("critical", t),
        on_complete=lambda t: log.setdefault("complete", t))
    assert ok
    guard = 0
    while "complete" not in log:
        assert events.step(), "no completion"
        guard += 1
        assert guard < 200_000
    return log


class TestStructure:
    def test_rl_devices(self):
        _, memory = make_memory()
        assert memory.config.fast_device.kind is DRAMKind.RLDRAM3
        assert memory.config.bulk_device.kind is DRAMKind.LPDDR2

    def test_sixteen_fast_chips(self):
        # Paper Fig 5c: 4 sub-channels x 4 single-chip x9 ranks.
        _, memory = make_memory()
        assert len(memory.fast_controllers) == 1
        assert len(memory.fast_controllers[0].ranks) == 16

    def test_dl_uses_close_page_ddr3_fast_side(self):
        _, memory = make_memory(pair=HeteroPair.DL)
        assert memory.config.fast_device is DDR3_FAST_DEVICE
        assert memory.config.fast_device.data_width_bits == 9

    def test_unaggregated_variant(self):
        _, memory = make_memory(shared_command_bus=False)
        assert len(memory.fast_controllers) == 4
        assert all(len(mc.ranks) == 4 for mc in memory.fast_controllers)


class TestFastDecode:
    def test_subchannel_tracks_bulk_channel(self):
        _, memory = make_memory()
        rps = memory.config.fast_ranks_per_subchannel
        for line in range(0, 4096, 37):
            bulk = memory.bulk_mapper.decode(line * 64)
            fast = memory._fast_decode(line)
            assert fast.rank // rps == bulk.channel

    def test_distinct_lines_distinct_fast_slots(self):
        _, memory = make_memory()
        seen = set()
        for line in range(8192):
            d = memory._fast_decode(line)
            key = (d.channel, d.rank, d.bank, d.row, d.column)
            assert key not in seen
            seen.add(key)


class TestPolicies:
    def test_static_always_word0(self):
        _, memory = make_memory(CWFPolicy.STATIC)
        assert all(memory.fast_word(line) == 0 for line in range(100))

    def test_random_stable_and_spread(self):
        _, memory = make_memory(CWFPolicy.RANDOM)
        words = [memory.fast_word(line) for line in range(4000)]
        assert words == [memory.fast_word(line) for line in range(4000)]
        histogram = [words.count(w) / len(words) for w in range(8)]
        assert all(0.08 < f < 0.18 for f in histogram)

    def test_adaptive_learns_from_writeback(self):
        events, memory = make_memory(CWFPolicy.ADAPTIVE)
        assert memory.fast_word(123) == 0
        memory.issue_write(123, critical_word_tag=5, core_id=0)
        assert memory.fast_word(123) == 5

    def test_adaptive_seeder_fallback(self):
        _, memory = make_memory(CWFPolicy.ADAPTIVE,
                                tag_seeder=lambda line: line % 8)
        assert memory.fast_word(13) == 5
        memory.issue_write(13, critical_word_tag=2, core_id=0)
        assert memory.fast_word(13) == 2  # real writeback overrides seed

    def test_oracle_always_covers(self):
        _, memory = make_memory(CWFPolicy.ORACLE)
        assert memory._covers(99, 7)

    def test_static_covers_only_word0(self):
        _, memory = make_memory(CWFPolicy.STATIC)
        assert memory._covers(1, 0)
        assert not memory._covers(1, 3)


class TestReadPath:
    def test_word0_read_wakes_from_fast_side(self):
        events, memory = make_memory()
        log = do_read(events, memory, line=17, word=0)
        assert log["critical"] < log["complete"]
        assert memory.stats.critical_served_fast == 1
        assert memory.stats.critical_served_slow == 0

    def test_fast_wake_is_much_earlier(self):
        events, memory = make_memory()
        log = do_read(events, memory, line=17, word=0)
        # RLDRAM answer lands tens of cycles before the LPDDR2 line.
        assert log["complete"] - log["critical"] > 50

    def test_nonzero_word_served_by_bulk(self):
        events, memory = make_memory()
        log = do_read(events, memory, line=17, word=4)
        assert memory.stats.critical_served_slow == 1
        # Still earlier than the full line (bulk burst is reordered).
        assert log["critical"] <= log["complete"]

    def test_completion_needs_both_parts(self):
        events, memory = make_memory()
        log = do_read(events, memory, line=17, word=0)
        bulk_latency = (memory.bulk_timing.t_rcd + memory.bulk_timing.t_rl
                        + memory.bulk_timing.t_burst)
        assert log["complete"] >= bulk_latency

    def test_prefetch_not_counted_in_critical_stats(self):
        events, memory = make_memory()
        do_read(events, memory, line=17, word=0, is_prefetch=True)
        assert memory.stats.demand_reads == 0
        assert memory.stats.critical_served_fast == 0
        assert memory.stats.reads == 1


class TestWritePath:
    def test_write_goes_to_both_sides(self):
        events, memory = make_memory()
        assert memory.issue_write(9, critical_word_tag=0, core_id=0)
        events.run(10_000)
        fast_writes = sum(mc.stats.writes_done
                          for mc in memory.fast_controllers)
        bulk_writes = sum(mc.stats.writes_done
                          for mc in memory.bulk_controllers)
        assert fast_writes == 1
        assert bulk_writes == 1


class TestParityPath:
    def test_parity_error_defers_wake_to_fill(self):
        events, memory = make_memory(parity_error_rate=1.0)
        log = do_read(events, memory, line=17, word=0)
        assert memory.parity_deferrals == 1
        assert log["critical"] == log["complete"]
        # Deferred wakes count as slow service.
        assert memory.stats.critical_served_slow == 1


class TestBackPressure:
    def test_full_queue_rejects_atomically(self):
        events, memory = make_memory()
        limit = memory.bulk_controllers[0].config.read_queue_size
        issued = 0
        line = 0
        while True:
            ok = memory.issue_read(line_address=line * 4, critical_word=0,
                                   core_id=0, is_prefetch=False,
                                   on_critical=lambda t: None,
                                   on_complete=lambda t: None)
            if not ok:
                break
            issued += 1
            line += 1
            assert issued <= 16 * limit
        # Rejection left the two sides consistent (no half-issued read).
        fast_q = len(memory.fast_controllers[0].read_queue)
        bulk_q = sum(len(mc.read_queue) for mc in memory.bulk_controllers)
        assert fast_q == bulk_q


class TestActivities:
    def test_chip_activity_families_and_counts(self):
        events, memory = make_memory()
        do_read(events, memory, line=17, word=0)
        memory.finalize()
        activities = memory.chip_activities(elapsed_cycles=100_000)
        assert set(activities) == {"bulk:lpddr2", "fast:rldram3"}
        assert len(activities["bulk:lpddr2"]) == 4 * 8
        assert len(activities["fast:rldram3"]) == 16
