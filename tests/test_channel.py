"""Data-bus serialisation, turnaround gaps, and command-bus slots."""

import pytest

from repro.dram.channel import Channel, CommandBus, DataBus
from repro.dram.request import RequestKind
from repro.dram.timing import DDR3_TIMING, RLDRAM3_TIMING, TimingSet

DDR3 = TimingSet(DDR3_TIMING)
RLD = TimingSet(RLDRAM3_TIMING)


class TestDataBus:
    def test_first_burst_starts_on_time(self):
        bus = DataBus(DDR3)
        assert bus.earliest_start(100, RequestKind.READ, rank=0) == 100

    def test_bursts_serialise(self):
        bus = DataBus(DDR3)
        end = bus.reserve(100, RequestKind.READ, rank=0)
        assert end == 100 + DDR3.t_burst
        assert bus.earliest_start(100, RequestKind.READ, rank=0) == end

    def test_overlapping_reserve_raises(self):
        bus = DataBus(DDR3)
        bus.reserve(100, RequestKind.READ, rank=0)
        with pytest.raises(RuntimeError):
            bus.reserve(105, RequestKind.READ, rank=0)

    def test_write_to_read_turnaround(self):
        bus = DataBus(DDR3)
        end = bus.reserve(0, RequestKind.WRITE, rank=0)
        start = bus.earliest_start(end, RequestKind.READ, rank=0)
        assert start == end + DDR3.t_wtr

    def test_read_to_write_gap(self):
        bus = DataBus(DDR3)
        end = bus.reserve(0, RequestKind.READ, rank=0)
        start = bus.earliest_start(end, RequestKind.WRITE, rank=0)
        assert start == end + DDR3.t_rtrs

    def test_rank_to_rank_gap(self):
        bus = DataBus(DDR3)
        end = bus.reserve(0, RequestKind.READ, rank=0)
        start = bus.earliest_start(end, RequestKind.READ, rank=1)
        assert start == end + DDR3.t_rtrs

    def test_same_rank_reads_back_to_back(self):
        bus = DataBus(DDR3)
        end = bus.reserve(0, RequestKind.READ, rank=0)
        assert bus.earliest_start(end, RequestKind.READ, rank=0) == end

    def test_rldram_write_to_read_is_free(self):
        # Paper Table 2: tWTR = 0 for RLDRAM3.
        bus = DataBus(RLD)
        end = bus.reserve(0, RequestKind.WRITE, rank=0)
        assert bus.earliest_start(end, RequestKind.READ, rank=0) == end

    def test_utilization(self):
        bus = DataBus(DDR3)
        bus.reserve(0, RequestKind.READ, rank=0)
        bus.reserve(DDR3.t_burst, RequestKind.READ, rank=0)
        assert bus.utilization(4 * DDR3.t_burst) == pytest.approx(0.5)
        assert bus.stats.reads_transferred == 2


class TestCommandBus:
    def test_single_slot_per_cycle(self):
        bus = CommandBus(DDR3, slots_per_cycle=1)
        assert bus.earliest_slot(0) == 0
        bus.reserve(0)
        # Same bus cycle is now full; next slot is the next bus cycle.
        assert bus.earliest_slot(0) == DDR3.bus_cycle

    def test_dual_pumped_slots(self):
        bus = CommandBus(DDR3, slots_per_cycle=2)
        bus.reserve(0)
        assert bus.earliest_slot(0) == 0
        bus.reserve(0)
        assert bus.earliest_slot(0) == DDR3.bus_cycle

    def test_overflow_raises(self):
        bus = CommandBus(DDR3, slots_per_cycle=1)
        bus.reserve(0)
        with pytest.raises(RuntimeError):
            bus.reserve(1)  # same bus cycle

    def test_rejects_bad_slot_count(self):
        with pytest.raises(ValueError):
            CommandBus(DDR3, slots_per_cycle=0)


class TestChannel:
    def test_aggregated_channel_shape(self):
        # The paper's Fig 5c critical-word channel: 4 data buses behind
        # a dual-pumped command bus.
        channel = Channel(RLD, num_data_buses=4, cmd_slots_per_cycle=2)
        assert len(channel.data_buses) == 4
        assert channel.cmd_bus.slots_per_cycle == 2

    def test_utilization_averages_subchannels(self):
        channel = Channel(DDR3, num_data_buses=2)
        channel.data_bus(0).reserve(0, RequestKind.READ, rank=0)
        assert channel.utilization(DDR3.t_burst) == pytest.approx(0.5)
