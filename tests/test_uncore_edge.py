"""Uncore edge cases: split-wake ablation flag, deadlock guards."""

import pytest

from repro.cpu.cache import CacheConfig
from repro.cpu.prefetch import PrefetcherConfig
from repro.cpu.uncore import Uncore, UncoreConfig
from repro.sim.config import SimConfig
from repro.sim.system import SimulationSystem
from repro.cpu.core import TraceRecord
from repro.util.events import EventQueue


class SplitMemory:
    """Memory whose critical part lands well before the fill."""

    def __init__(self, events):
        self.events = events

    def issue_read(self, line_address, critical_word, core_id, is_prefetch,
                   on_critical, on_complete):
        now = self.events.now
        self.events.schedule(now + 50, lambda: on_critical(now + 50))
        self.events.schedule(now + 400, lambda: on_complete(now + 400))
        return True

    def issue_write(self, line_address, critical_word_tag, core_id):
        return True


def make_uncore(events, critical_word_wakeup=True):
    config = UncoreConfig(
        l1=CacheConfig(name="L1", size_bytes=2 * 64 * 2, associativity=2),
        l2=CacheConfig(name="L2", size_bytes=8 * 64 * 4, associativity=4),
        prefetcher=PrefetcherConfig(enabled=False),
        dram_path_latency=0,
        critical_word_wakeup=critical_word_wakeup)
    return Uncore(1, SplitMemory(events), events, config)


class TestSplitWakeFlag:
    def test_enabled_wakes_early(self):
        events = EventQueue()
        uncore = make_uncore(events, critical_word_wakeup=True)
        woken = []
        uncore.access(0, False, 0, woken.append)
        events.run(100)
        assert woken == [50]

    def test_disabled_waits_for_fill(self):
        events = EventQueue()
        uncore = make_uncore(events, critical_word_wakeup=False)
        woken = []
        uncore.access(0, False, 0, woken.append)
        events.run(100)
        assert woken == [400]


class TestDeadlockGuards:
    def test_deadlock_reported_not_hung(self):
        """A memory that never answers must fail loudly."""

        class BlackHole:
            def issue_read(self, *args, **kwargs):
                return True

            def issue_write(self, *args, **kwargs):
                return True

            def chip_activities(self, elapsed):
                return {}

            def bus_utilization(self, elapsed):
                return 0.0

        config = SimConfig(num_cores=1, target_dram_reads=10)
        trace = [TraceRecord(gap=0, is_write=False, address=0)]
        system = SimulationSystem(config, [trace])
        system.memory = BlackHole()
        system.uncore.memory = system.memory
        with pytest.raises(RuntimeError, match="deadlock"):
            system.run()

    def test_max_events_guard(self):
        config = SimConfig(num_cores=1, target_dram_reads=10)
        trace = [TraceRecord(gap=0, is_write=False, address=i * 4096)
                 for i in range(20)]
        system = SimulationSystem(config, [trace])
        with pytest.raises(RuntimeError, match="max_events"):
            system.run(max_events=5)
