"""Telemetry subsystem: registry, histograms, tracing, sampling, export."""

import json
import time

import pytest

from repro.experiments.runner import ExperimentConfig, ResultCache
from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import SimulationSystem, make_traces, run_benchmark
from repro.telemetry import (
    ChromeTracer,
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NULL_TRACER,
    Sampler,
    TelemetrySession,
    activate,
    deactivate,
    run_manifest,
    validate_trace,
)
from repro.util.events import EventQueue
from repro.workloads.profiles import profile_for


def tiny_config(memory=MemoryKind.DDR3, reads=120):
    return SimConfig(memory=memory, target_dram_reads=reads)


# ---------------------------------------------------------------------------
# Histogram percentile math
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("t")
        for v in (1, 2, 3, 4, 100):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 110
        assert h.mean == pytest.approx(22.0)
        assert h.min == 1 and h.max == 100

    def test_empty(self):
        h = Histogram("t")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["buckets"] == {}

    def test_single_value_percentiles(self):
        h = Histogram("t")
        h.observe(37)
        for p in (50, 95, 99):
            assert h.percentile(p) == pytest.approx(37.0)

    def test_percentiles_bracket_the_data(self):
        h = Histogram("t")
        for v in range(1, 1001):
            h.observe(v)
        p50, p95, p99 = (h.percentile(p) for p in (50, 95, 99))
        assert p50 <= p95 <= p99 <= h.max
        # log2 buckets: percentile is right to within its bucket width.
        assert 256 <= p50 <= 1000   # rank-500 sample lives in [512,1023]
        assert p99 > p50

    def test_percentile_monotone_in_p(self):
        h = Histogram("t")
        for v in (5, 5, 5, 900, 901, 902):
            h.observe(v)
        assert h.percentile(10) <= h.percentile(50) <= h.percentile(99)

    def test_negative_clamped_and_zero_bucketed(self):
        h = Histogram("t")
        h.observe(-5)
        h.observe(0)
        assert h.count == 2 and h.sum == 0
        assert h.buckets[0] == 2

    def test_bucket_bounds(self):
        assert Histogram.bucket_bounds(0) == (0, 0)
        assert Histogram.bucket_bounds(1) == (1, 1)
        assert Histogram.bucket_bounds(4) == (8, 15)

    def test_snapshot_has_percentile_keys(self):
        h = Histogram("t")
        h.observe(10)
        snap = h.snapshot()
        assert {"p50", "p95", "p99", "mean", "count", "sum"} <= set(snap)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_same_name_same_type_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a.b") is r.counter("a.b")

    def test_name_collision_across_types_raises(self):
        r = MetricsRegistry()
        r.counter("dram.ch0.acts")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("dram.ch0.acts")
        with pytest.raises(ValueError):
            r.histogram("dram.ch0.acts")

    def test_hierarchical_prefix_queries(self):
        r = MetricsRegistry()
        r.counter("dram.ch0.acts")
        r.counter("dram.ch1.acts")
        r.gauge("core0.ipc")
        assert r.names("dram.") == ["dram.ch0.acts", "dram.ch1.acts"]
        assert set(r.snapshot("core0.")) == {"core0.ipc"}

    def test_snapshot_values(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(1.5)
        snap = r.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"] == {"type": "gauge", "value": 1.5}

    def test_null_registry_returns_shared_noops(self):
        assert NULL_REGISTRY.counter("x") is NULL_COUNTER
        assert NULL_REGISTRY.histogram("y") is NULL_HISTOGRAM
        NULL_COUNTER.inc(100)
        NULL_HISTOGRAM.observe(42)
        assert NULL_COUNTER.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert len(NULL_REGISTRY.snapshot()) == 0


# ---------------------------------------------------------------------------
# Chrome trace
# ---------------------------------------------------------------------------

class TestTrace:
    def _run_with_trace(self):
        session = TelemetrySession(trace_enabled=True)
        run = session.begin_run("mcf", "ddr3")
        config = tiny_config()
        profile = profile_for("mcf")
        system = SimulationSystem(config, make_traces(profile, config),
                                  profile=profile, telemetry=run)
        result = system.run()
        session.end_run(run)
        return session, result

    def test_trace_schema_valid(self, tmp_path):
        session, _ = self._run_with_trace()
        path = tmp_path / "trace.json"
        session.export_trace(str(path))
        trace = json.loads(path.read_text())
        assert validate_trace(trace) == []
        events = trace["traceEvents"]
        assert len(events) > 100
        names = {e["name"] for e in events}
        assert {"access", "burst", "critical_word",
                "process_name", "thread_name"} <= names

    def test_spans_cover_request_lifecycle(self):
        session, _ = self._run_with_trace()
        events = session._tracers[0].events
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in spans)
        instants = [e for e in events if e["name"] == "critical_word"]
        assert instants and all("word" in e["args"] for e in instants)

    def test_tracer_cycle_to_us_conversion(self):
        tracer = ChromeTracer(cpu_freq_ghz=3.2)
        tracer.complete("x", 3200, 3200, "t0")
        span = [e for e in tracer.events if e["ph"] == "X"][0]
        assert span["ts"] == pytest.approx(1.0)   # 3200 cyc @3.2GHz = 1 us
        assert span["dur"] == pytest.approx(1.0)

    def test_validate_trace_flags_problems(self):
        assert validate_trace({}) == ["missing traceEvents array"]
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
                                "ts": 1.0, "dur": -1}]}
        assert any("bad dur" in p for p in validate_trace(bad))


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------

class TestSampler:
    def test_samples_on_cadence(self):
        events = EventQueue()
        registry = MetricsRegistry()
        sampler = Sampler(events, registry, interval_cycles=10)
        sampler.add_probe("queue_depth", lambda: events.now)
        sampler.start()
        events.run_until(100)
        sampler.stop()
        assert sampler.samples_taken == 10
        hist = registry.get("sample.queue_depth.hist")
        assert hist.count == 10
        assert registry.get("sample.queue_depth").value == 100

    def test_stop_cancels_pending_event(self):
        events = EventQueue()
        sampler = Sampler(events, MetricsRegistry(), interval_cycles=10)
        sampler.start()
        assert len(events) == 1
        sampler.stop()
        assert len(events) == 0


# ---------------------------------------------------------------------------
# Null-sink zero-overhead path
# ---------------------------------------------------------------------------

class TestNullSink:
    def test_uninstrumented_run_touches_no_real_metrics(self):
        config = tiny_config(MemoryKind.RL)
        profile = profile_for("mcf")
        system = SimulationSystem(config, make_traces(profile, config),
                                  profile=profile)
        assert system.sampler is None
        assert system.memory._h_critical is NULL_HISTOGRAM
        for mc in system.memory.telemetry_controllers():
            assert mc._h_queue_lat is NULL_HISTOGRAM
            assert mc.tracer is NULL_TRACER
        before = NULL_HISTOGRAM.count
        result = system.run()
        assert result.telemetry is None
        assert NULL_HISTOGRAM.count == before       # nothing accumulated
        assert NULL_TRACER.events == []

    def test_null_sink_wall_time_overhead_under_5pct(self):
        """Bound the null-sink cost against a real run's wall time.

        The runs are deterministic, so an instrumented twin run counts
        exactly how many telemetry operations the un-instrumented run
        performs as no-ops; measured no-op cost x that count must stay
        under 5% of the measured simulation wall time.
        """
        config = tiny_config(MemoryKind.RL, reads=400)
        profile = profile_for("mcf")
        traces = make_traces(profile, config)

        baseline = None
        for _ in range(3):
            system = SimulationSystem(config, [list(t) for t in traces],
                                      profile=profile)
            start = time.perf_counter()
            system.run()
            wall = time.perf_counter() - start
            baseline = wall if baseline is None else min(baseline, wall)

        # Twin run with a real registry: every hot-path call lands.
        registry = MetricsRegistry()
        system = SimulationSystem(config, [list(t) for t in traces],
                                  profile=profile)
        system.memory.attach_telemetry(registry)
        system.run()
        ops = 0
        for _, metric in registry.items():
            ops += getattr(metric, "count", None) or \
                (metric.value if isinstance(metric, Counter) else 0)

        n_timing = 200_000
        start = time.perf_counter()
        for _ in range(n_timing):
            NULL_HISTOGRAM.observe(1)
        per_op = (time.perf_counter() - start) / n_timing

        overhead = per_op * ops
        assert ops > 0
        assert overhead <= 0.05 * baseline, (
            f"null-sink overhead {overhead:.6f}s exceeds 5% of "
            f"{baseline:.3f}s baseline ({ops} ops @ {per_op * 1e9:.0f}ns)")


# ---------------------------------------------------------------------------
# Run-level integration: registry vs legacy SimResult
# ---------------------------------------------------------------------------

class TestRunTelemetry:
    def test_registry_matches_legacy_avg_critical_latency(self):
        session = TelemetrySession()
        run = session.begin_run("mcf", "rl")
        config = tiny_config(MemoryKind.RL, reads=300)
        result = run_benchmark("mcf", config, telemetry=run)
        system_avg = result.telemetry["avg_critical_latency"]
        assert system_avg == pytest.approx(result.avg_critical_latency,
                                           rel=1e-9)
        # Registry cross-check from raw metrics.
        hist = run.registry.get("memsys.critical_latency_cycles")
        demands = run.registry.get("memsys.demand_reads")
        assert hist.sum / demands.value == pytest.approx(
            result.avg_critical_latency, rel=1e-9)

    def test_per_channel_queue_histograms_exported(self):
        session = TelemetrySession()
        run = session.begin_run("mcf", "ddr3")
        config = tiny_config(reads=200)
        result = run_benchmark("mcf", config, telemetry=run)
        by_channel = result.telemetry["queue_latency_by_channel"]
        assert len(by_channel) == 4     # 4 DDR3 channels
        assert any(v["count"] > 0 for v in by_channel.values())
        for snap in by_channel.values():
            assert {"p50", "p95", "p99", "mean"} <= set(snap)
        # Structural per-bank gauges exist too.
        assert any(".bank" in name and name.endswith("act_count")
                   for name in run.registry.names("dram."))

    def test_sampler_ran_during_instrumented_run(self):
        session = TelemetrySession()
        run = session.begin_run("mcf", "ddr3")
        run_benchmark("mcf", tiny_config(reads=200), telemetry=run)
        assert run.registry.get("sample.samples_taken").value > 0
        assert run.registry.get("sample.mshr.occupancy.hist").count > 0


# ---------------------------------------------------------------------------
# Export artefacts and manifest
# ---------------------------------------------------------------------------

class TestExport:
    def test_manifest_fields(self):
        manifest = run_manifest(config={"reads": 5}, seed=42,
                                argv=["x"], wall_time_s=1.0)
        assert manifest["schema"] == 1
        assert manifest["seed"] == 42
        assert len(manifest["config_hash"]) == 16
        assert manifest["wall_time_s"] == 1.0

    def test_csv_export(self, tmp_path):
        session = TelemetrySession()
        run = session.begin_run("mcf", "ddr3")
        run.registry.counter("dram.ch0.acts").inc(7)
        session.end_run(run)
        path = tmp_path / "stats.csv"
        session.export_csv(str(path))
        text = path.read_text()
        assert "dram.ch0.acts" in text and "counter" in text

    def test_stats_json_round_trip_via_cli(self, tmp_path, capsys):
        from repro.cli import main
        stats = tmp_path / "stats.json"
        trace = tmp_path / "trace.json"
        assert main(["fig8", "--reads", "150", "--benchmarks", "mcf",
                     "--cache", "off",
                     "--stats-json", str(stats),
                     "--trace-out", str(trace)]) == 0
        doc = json.loads(stats.read_text())
        assert doc["manifest"]["num_runs"] == len(doc["runs"]) > 0
        run = doc["runs"][0]
        assert run["benchmark"] == "mcf" and run["memory"] == "rl"
        queue_hists = {n: s for n, s in run["metrics"].items()
                       if n.endswith("queue_latency_cycles")}
        assert queue_hists
        assert all({"p50", "p95", "p99"} <= set(s) for s in queue_hists.values())
        # Derived average equals the summary's legacy value.
        hist = run["metrics"]["memsys.critical_latency_cycles"]
        demands = run["metrics"]["memsys.demand_reads"]["value"]
        assert hist["sum"] / demands == pytest.approx(
            run["summary"]["avg_critical_latency"], rel=1e-9)
        trace_doc = json.loads(trace.read_text())
        assert validate_trace(trace_doc) == []

    def test_cli_json_table_mode(self, capsys):
        from repro.cli import main
        assert main(["tab1", "--cache", "off", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment_id"] == "tab1"
        assert doc["columns"] and doc["rows"]

    def test_active_session_bypasses_cache_reads(self, tmp_path):
        from repro.experiments.runner import run_cached
        config = ExperimentConfig(target_dram_reads=120,
                                  benchmarks=("mcf",),
                                  cache_dir=str(tmp_path))
        first = run_cached("mcf", MemoryKind.DDR3, config)
        session = activate(TelemetrySession())
        try:
            second = run_cached("mcf", MemoryKind.DDR3, config)
        finally:
            deactivate()
        assert second.telemetry is not None      # real run, not a recall
        assert first.telemetry is None
        assert second.avg_critical_latency == pytest.approx(
            first.avg_critical_latency)
        assert len(session.runs) == 1


# ---------------------------------------------------------------------------
# ResultCache hardening (satellite)
# ---------------------------------------------------------------------------

class TestResultCacheHardening:
    def _cache_with_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = ExperimentConfig(target_dram_reads=120, benchmarks=("mcf",),
                                  cache_dir=str(tmp_path))
        result = run_benchmark("mcf", config.sim_config(MemoryKind.DDR3))
        cache.put("k", result)
        return cache, result

    def test_truncated_json_is_a_miss_and_rewritable(self, tmp_path):
        cache, result = self._cache_with_entry(tmp_path)
        path = cache._path("k")
        path.write_text(path.read_text()[:40])     # truncate mid-object
        assert cache.get("k") is None
        cache.put("k", result)                      # rewrite works
        assert cache.get("k") is not None

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        cache, _ = self._cache_with_entry(tmp_path)
        cache._path("k").write_bytes(b"\x00\xff not json")
        assert cache.get("k") is None

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        cache, _ = self._cache_with_entry(tmp_path)
        cache._path("k").write_text("[1, 2, 3]")
        assert cache.get("k") is None

    def test_schema_drift_is_a_miss(self, tmp_path):
        cache, _ = self._cache_with_entry(tmp_path)
        cache._path("k").write_text(json.dumps(
            {"__key__": "k", "no_such_field": 1}))
        assert cache.get("k") is None
