"""Cross-configuration invariants: the paper's qualitative claims.

These use small (few-hundred-fetch) runs, so assertions are directional
rather than numeric; the benchmark harness regenerates the quantitative
tables.
"""

import pytest

from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import run_benchmark


def cfg(kind, reads=600):
    return SimConfig(memory=kind, target_dram_reads=reads)


@pytest.fixture(scope="module")
def leslie():
    """leslie3d (streaming, word-0 heavy) across the key organisations."""
    kinds = (MemoryKind.DDR3, MemoryKind.RLDRAM3, MemoryKind.LPDDR2,
             MemoryKind.RL, MemoryKind.RL_ORACLE, MemoryKind.RL_RANDOM)
    return {k: run_benchmark("leslie3d", cfg(k)) for k in kinds}


@pytest.fixture(scope="module")
def mcf():
    """mcf (pointer chase, low word-0 bias)."""
    kinds = (MemoryKind.DDR3, MemoryKind.RL, MemoryKind.RL_ADAPTIVE)
    return {k: run_benchmark("mcf", cfg(k)) for k in kinds}


class TestHomogeneousOrdering:
    """Paper Fig 1: RLDRAM3 > DDR3 > LPDDR2."""

    def test_rldram_beats_ddr3(self, leslie):
        assert (leslie[MemoryKind.RLDRAM3].throughput
                > leslie[MemoryKind.DDR3].throughput)

    def test_lpddr2_trails_ddr3(self, leslie):
        assert (leslie[MemoryKind.LPDDR2].throughput
                < leslie[MemoryKind.DDR3].throughput)

    def test_latency_ordering(self, leslie):
        assert (leslie[MemoryKind.RLDRAM3].avg_critical_latency
                < leslie[MemoryKind.DDR3].avg_critical_latency
                < leslie[MemoryKind.LPDDR2].avg_critical_latency)


class TestCWFBehaviour:
    def test_rl_cuts_critical_latency_for_word0_app(self, leslie):
        assert (leslie[MemoryKind.RL].avg_critical_latency
                < 0.85 * leslie[MemoryKind.DDR3].avg_critical_latency)

    def test_rl_speeds_up_word0_app(self, leslie):
        assert (leslie[MemoryKind.RL].throughput
                > leslie[MemoryKind.DDR3].throughput)

    def test_fast_fraction_tracks_word0_bias(self, leslie, mcf):
        assert leslie[MemoryKind.RL].fast_service_fraction > 0.7
        assert mcf[MemoryKind.RL].fast_service_fraction < 0.55

    def test_oracle_at_least_as_good_as_static(self, leslie):
        # leslie3d is ~94% word-0 so oracle ~= static here (tolerance
        # covers short-run noise); the mcf-class gap shows in fig9.
        assert (leslie[MemoryKind.RL_ORACLE].throughput
                >= 0.95 * leslie[MemoryKind.RL].throughput)
        assert leslie[MemoryKind.RL_ORACLE].fast_service_fraction \
            == pytest.approx(1.0)

    def test_random_mapping_much_worse_than_static(self, leslie):
        """Sec 6.1.1 control: intelligent placement is what matters."""
        assert (leslie[MemoryKind.RL_RANDOM].throughput
                < leslie[MemoryKind.RL].throughput)
        assert leslie[MemoryKind.RL_RANDOM].fast_service_fraction < 0.3

    def test_adaptive_raises_coverage_for_chase_app(self, mcf):
        assert (mcf[MemoryKind.RL_ADAPTIVE].fast_service_fraction
                > mcf[MemoryKind.RL].fast_service_fraction + 0.1)

    def test_adaptive_helps_chase_app_throughput(self, mcf):
        assert (mcf[MemoryKind.RL_ADAPTIVE].throughput
                > mcf[MemoryKind.RL].throughput)

    def test_fill_trails_critical_in_rl(self, leslie):
        rl = leslie[MemoryKind.RL]
        # The bulk (LPDDR2) half lands well after the critical word.
        assert rl.avg_fill_latency > rl.avg_critical_latency + 50


class TestPowerShape:
    def test_rldram_homogeneous_is_power_hungry(self, leslie):
        assert (leslie[MemoryKind.RLDRAM3].memory_power_mw
                > 2 * leslie[MemoryKind.DDR3].memory_power_mw)

    def test_lpddr2_homogeneous_saves_power(self, leslie):
        assert (leslie[MemoryKind.LPDDR2].memory_power_mw
                < leslie[MemoryKind.DDR3].memory_power_mw)
