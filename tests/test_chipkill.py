"""Chipkill RS(n, n-2) code over GF(2^8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chipkill import ChipkillCode, gf_div, gf_mul, gf_pow_alpha

DATA = st.lists(st.integers(min_value=0, max_value=255),
                min_size=8, max_size=8)


class TestFieldArithmetic:
    def test_multiplicative_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(256):
            assert gf_mul(a, 0) == 0

    @given(st.integers(1, 255), st.integers(1, 255))
    @settings(max_examples=100)
    def test_div_inverts_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_alpha_order(self):
        # alpha generates the multiplicative group: alpha^255 == 1.
        assert gf_pow_alpha(255) == 1
        seen = {gf_pow_alpha(i) for i in range(255)}
        assert len(seen) == 255


class TestEncode:
    @given(DATA)
    @settings(max_examples=60)
    def test_codeword_has_zero_syndromes(self, data):
        code = ChipkillCode(8)
        codeword = code.encode(data)
        assert code.syndromes(codeword) == (0, 0)
        assert len(codeword) == 10

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ChipkillCode(8).encode([0] * 7)

    def test_rejects_non_bytes(self):
        with pytest.raises(ValueError):
            ChipkillCode(8).encode([0] * 7 + [256])

    def test_overhead(self):
        assert ChipkillCode(8).storage_overhead == pytest.approx(0.25)


class TestDecode:
    @given(DATA)
    @settings(max_examples=60)
    def test_clean_roundtrip(self, data):
        code = ChipkillCode(8)
        decoded, status = code.decode(code.encode(data))
        assert status == "ok"
        assert decoded == data

    @given(DATA, st.integers(min_value=0, max_value=9),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=100)
    def test_any_single_chip_error_corrected(self, data, chip, garbage):
        """The chipkill property: lose ANY one chip, recover the data."""
        code = ChipkillCode(8)
        broken = code.kill_chip(code.encode(data), chip, garbage)
        decoded, status = code.decode(broken)
        assert status == "corrected"
        assert decoded == data

    @given(DATA, st.integers(min_value=1, max_value=255),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=60)
    def test_double_chip_error_never_miscorrects_silently_wrong(
            self, data, g1, g2):
        """Two chip errors must not be 'corrected' into wrong data."""
        code = ChipkillCode(8)
        codeword = code.encode(data)
        broken = list(codeword)
        broken[0] ^= g1
        broken[5] ^= g2
        decoded, status = code.decode(broken)
        # Distance 3: double errors are either detected or (rarely)
        # alias to a single-error pattern; if "corrected" the result
        # must at least be a valid codeword — never silently s0/s1
        # inconsistent. Wrong data with status "corrected" is the known
        # theoretical limit (same as SECDED's double-error aliasing).
        if status == "corrected":
            assert decoded is not None
        else:
            assert status == "detected"
            assert decoded is None

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ChipkillCode(8).decode([0] * 9)

    def test_kill_chip_bounds(self):
        code = ChipkillCode(8)
        with pytest.raises(ValueError):
            code.kill_chip(code.encode([0] * 8), 10)
