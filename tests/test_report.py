"""EXPERIMENTS.md report generator."""

import pytest

from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.report import CLAIMS, PaperClaim, render_report, _mean_row


class TestClaims:
    def test_every_claimed_experiment_exists(self):
        from repro.experiments import ALL_EXPERIMENTS
        assert set(CLAIMS) <= set(ALL_EXPERIMENTS)

    def test_mean_row_lookup(self):
        table = ExperimentTable("x", "t", ["benchmark", "rl"])
        table.add(benchmark="a", rl=1.5)
        table.add(benchmark="MEAN", rl=1.2)
        assert _mean_row(table, "rl") == 1.2

    def test_mean_row_missing_raises(self):
        table = ExperimentTable("x", "t", ["benchmark", "rl"])
        with pytest.raises(KeyError):
            _mean_row(table, "rl")

    def test_claim_formats_measurement(self):
        table = ExperimentTable("x", "t", ["benchmark", "rl"])
        table.add(benchmark="MEAN", rl=1.129)
        claim = PaperClaim("demo", "+12.9%", lambda t: _mean_row(t, "rl"))
        assert claim.measured(table) == "1.129"

    def test_claim_survives_bad_measure(self):
        claim = PaperClaim("demo", "x", lambda t: 1 / 0)
        table = ExperimentTable("x", "t", ["benchmark"])
        assert claim.measured(table).startswith("error")


class TestRenderReport:
    def test_fast_experiments_render(self, tmp_path):
        config = ExperimentConfig(target_dram_reads=100,
                                  benchmarks=("mcf",),
                                  cache_dir=str(tmp_path))
        text = render_report(config, experiments=["tab2", "fig2"])
        assert "# EXPERIMENTS" in text
        assert "tab2" in text and "fig2" in text
        assert "| claim | paper | measured |" in text
