"""DRAM power model: Micron-calculator equations and presets."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.device import DRAMKind
from repro.dram.power import (
    ChipActivity,
    DDR3_CURRENTS,
    IddCurrents,
    LPDDR2_NATIVE_CURRENTS,
    default_power_model,
    lpddr2_server_currents,
)


class TestIddValidation:
    def test_rejects_zero_vdd(self):
        with pytest.raises(ValueError):
            IddCurrents(vdd=0, idd0=1, idd2p=1, idd2n=1, idd3p=1, idd3n=1,
                        idd4r=2, idd4w=2, idd5=1, idd6=1)

    def test_rejects_burst_below_standby(self):
        with pytest.raises(ValueError):
            IddCurrents(vdd=1.5, idd0=90, idd2p=12, idd2n=42, idd3p=35,
                        idd3n=52, idd4r=40, idd4w=165, idd5=200, idd6=12)


class TestActivityValidation:
    def test_rejects_zero_elapsed(self):
        with pytest.raises(ValueError):
            ChipActivity(elapsed_ns=0)

    def test_bus_utilization(self):
        a = ChipActivity(elapsed_ns=100.0, read_bus_ns=30.0,
                         write_bus_ns=20.0)
        assert a.bus_utilization == pytest.approx(0.5)


class TestBackgroundPower:
    def test_idle_chip_draws_standby(self):
        model = default_power_model(DRAMKind.DDR3)
        a = ChipActivity(elapsed_ns=1000.0, precharge_standby_ns=1000.0)
        out = model.compute(a)
        expected = DDR3_CURRENTS.idd2n * DDR3_CURRENTS.vdd
        assert out.background_mw == pytest.approx(expected)
        assert out.read_mw == 0.0
        assert out.activate_mw == 0.0

    def test_power_down_cheaper_than_standby(self):
        model = default_power_model(DRAMKind.DDR3)
        standby = model.compute(ChipActivity(elapsed_ns=1000.0,
                                             precharge_standby_ns=1000.0))
        down = model.compute(ChipActivity(elapsed_ns=1000.0,
                                          power_down_ns=1000.0))
        assert down.background_mw < standby.background_mw

    def test_untallied_time_counts_as_standby(self):
        model = default_power_model(DRAMKind.DDR3)
        out = model.compute(ChipActivity(elapsed_ns=1000.0))
        expected = DDR3_CURRENTS.idd2n * DDR3_CURRENTS.vdd
        assert out.background_mw == pytest.approx(expected)


class TestActivateEnergy:
    def test_ddr3_act_energy_positive(self):
        model = default_power_model(DRAMKind.DDR3)
        # E = 1.5 * (90*50 - 52*37 - 42*13) pJ = ~3 nJ
        assert 1.0 < model.activate_energy_nj < 6.0

    def test_rldram_act_energy_exceeds_lpddr2(self):
        rld = default_power_model(DRAMKind.RLDRAM3)
        lpd = default_power_model(DRAMKind.LPDDR2)
        assert rld.activate_energy_nj > lpd.activate_energy_nj

    def test_server_adaptation_keeps_act_energy(self):
        # The idle-current bump must not change dynamic ACT energy.
        adapted = default_power_model(DRAMKind.LPDDR2, server_adapted=True)
        native = default_power_model(DRAMKind.LPDDR2, server_adapted=False)
        assert adapted.activate_energy_nj == pytest.approx(
            native.activate_energy_nj, rel=0.01)


class TestFigure2Shape:
    """The qualitative facts of paper Figure 2."""

    def models(self):
        return {k: default_power_model(k) for k in DRAMKind}

    def test_rldram_floor_much_higher(self):
        m = self.models()
        rld = m[DRAMKind.RLDRAM3].power_at_utilization(0.0).total_mw
        ddr = m[DRAMKind.DDR3].power_at_utilization(0.0).total_mw
        lpd = m[DRAMKind.LPDDR2].power_at_utilization(0.0).total_mw
        assert rld > 2.0 * ddr
        assert lpd < ddr

    def test_gap_shrinks_at_high_utilization(self):
        m = self.models()
        low_ratio = (m[DRAMKind.RLDRAM3].power_at_utilization(0.05).total_mw
                     / m[DRAMKind.DDR3].power_at_utilization(0.05).total_mw)
        high_ratio = (m[DRAMKind.RLDRAM3].power_at_utilization(0.9).total_mw
                      / m[DRAMKind.DDR3].power_at_utilization(0.9).total_mw)
        assert high_ratio < low_ratio

    def test_power_monotonic_in_utilization(self):
        for model in self.models().values():
            prev = -1.0
            for util in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
                total = model.power_at_utilization(util).total_mw
                assert total > prev
                prev = total

    def test_rejects_bad_utilization(self):
        model = default_power_model(DRAMKind.DDR3)
        with pytest.raises(ValueError):
            model.power_at_utilization(1.5)


class TestServerAdaptation:
    def test_server_idle_power_higher_than_native(self):
        adapted = lpddr2_server_currents()
        native = LPDDR2_NATIVE_CURRENTS
        assert adapted.idd2p > native.idd2p
        assert adapted.idd3p > native.idd3p
        assert adapted.idd2n > native.idd2n

    def test_unterminated_variant_cheaper_at_all_utils(self):
        adapted = default_power_model(DRAMKind.LPDDR2, server_adapted=True)
        native = default_power_model(DRAMKind.LPDDR2, server_adapted=False)
        for util in (0.0, 0.3, 0.7, 1.0):
            assert (native.power_at_utilization(util).total_mw
                    < adapted.power_at_utilization(util).total_mw)


class TestEnergyAccounting:
    def test_energy_scales_with_time(self):
        model = default_power_model(DRAMKind.DDR3)
        out = model.compute(ChipActivity(elapsed_ns=1000.0,
                                         precharge_standby_ns=1000.0))
        assert out.energy_nj(2000.0) == pytest.approx(2 * out.energy_nj(1000.0))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_breakdown_components_non_negative(self, util):
        model = default_power_model(DRAMKind.DDR3)
        out = model.power_at_utilization(util)
        for value in (out.background_mw, out.activate_mw, out.read_mw,
                      out.write_mw, out.refresh_mw, out.io_term_mw,
                      out.static_mw):
            assert value >= 0.0
