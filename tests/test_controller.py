"""Memory-controller behaviour: latencies, scheduling, drains, refresh."""

from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import DDR3_DEVICE, RLDRAM3_DEVICE
from repro.dram.request import DecodedAddress, MemoryRequest, RequestKind
from repro.dram.scheduler import SchedulingPolicy
from repro.dram.timing import DDR3_TIMING, RLDRAM3_TIMING, TimingSet
from repro.util.events import EventQueue

DDR3 = TimingSet(DDR3_TIMING)
RLD = TimingSet(RLDRAM3_TIMING)


def make_controller(device=DDR3_DEVICE, timing=DDR3, config=None,
                    num_ranks=1, num_buses=1, cmd_slots=1, rank_to_bus=None):
    events = EventQueue()
    channel = Channel(timing, num_data_buses=num_buses,
                      cmd_slots_per_cycle=cmd_slots)
    mc = MemoryController(device=device, timing=timing, channel=channel,
                          num_ranks=num_ranks, events=events,
                          config=config or ControllerConfig(),
                          rank_to_bus=rank_to_bus)
    return events, mc


def read_request(bank=0, row=0, column=0, rank=0, channel=0,
                 critical_word=0, is_prefetch=False):
    return MemoryRequest(
        kind=RequestKind.READ, address=0, critical_word=critical_word,
        is_prefetch=is_prefetch,
        decoded=DecodedAddress(channel=channel, rank=rank, bank=bank,
                               row=row, column=column))


def write_request(bank=0, row=0, column=0, rank=0):
    return MemoryRequest(
        kind=RequestKind.WRITE, address=0,
        decoded=DecodedAddress(channel=0, rank=rank, bank=bank, row=row,
                               column=column))


def run_until_done(events, requests, limit=1_000_000):
    done = []
    for req in requests:
        req.on_complete = lambda t, r=req: done.append(r)
    steps = 0
    while len(done) < len(requests):
        if not events.step():
            raise AssertionError("event queue drained before completion")
        steps += 1
        assert steps < limit
    return done


class TestIdleReadLatency:
    def test_row_miss_latency_exact(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False))
        req = read_request(bank=0, row=5)
        assert mc.enqueue(req)
        run_until_done(events, [req])
        # ACT at 0, CAS at tRCD, data at tRCD+CL, done a burst later.
        assert req.first_command_time == 0
        assert req.data_start_time == DDR3.t_rcd + DDR3.t_rl
        assert req.completion_time == req.data_start_time + DDR3.t_burst
        # Conventional CWF: the requested word rides the first beat.
        assert req.critical_word_time == req.data_start_time + DDR3.t_burst // 8

    def test_row_hit_latency(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False))
        first = read_request(bank=0, row=5, column=0)
        second = read_request(bank=0, row=5, column=1)
        mc.enqueue(first)
        mc.enqueue(second)
        run_until_done(events, [first, second])
        # The second request needs no ACT: issued as soon as CAS legal.
        assert second.first_command_time is not None
        assert (second.data_start_time - second.first_command_time
                == DDR3.t_rl)

    def test_row_conflict_needs_precharge(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False))
        first = read_request(bank=0, row=5)
        second = read_request(bank=0, row=6)
        mc.enqueue(first)
        mc.enqueue(second)
        run_until_done(events, [first, second])
        # PRE cannot happen before tRAS; ACT after +tRP; CAS after +tRCD.
        min_second_data = (DDR3.t_ras + DDR3.t_rp + DDR3.t_rcd + DDR3.t_rl)
        assert second.data_start_time >= min_second_data


class TestClosePage:
    def test_rldram_single_command_latency(self):
        events, mc = make_controller(
            device=RLDRAM3_DEVICE, timing=RLD,
            config=ControllerConfig(refresh_enabled=False))
        req = read_request(bank=0, row=5)
        mc.enqueue(req)
        run_until_done(events, [req])
        assert req.data_start_time == RLD.t_rl
        assert req.completion_time == RLD.t_rl + RLD.t_burst

    def test_bank_reuse_waits_trc(self):
        events, mc = make_controller(
            device=RLDRAM3_DEVICE, timing=RLD,
            config=ControllerConfig(refresh_enabled=False))
        a = read_request(bank=0)
        b = read_request(bank=0)
        mc.enqueue(a)
        mc.enqueue(b)
        run_until_done(events, [a, b])
        assert b.first_command_time >= a.first_command_time + RLD.t_rc

    def test_different_banks_overlap(self):
        events, mc = make_controller(
            device=RLDRAM3_DEVICE, timing=RLD,
            config=ControllerConfig(refresh_enabled=False))
        a = read_request(bank=0)
        b = read_request(bank=1)
        mc.enqueue(a)
        mc.enqueue(b)
        run_until_done(events, [a, b])
        # Bank parallelism: second command issues before the first's tRC.
        assert b.first_command_time < a.first_command_time + RLD.t_rc


class TestQueues:
    def test_read_queue_capacity(self):
        events, mc = make_controller(
            config=ControllerConfig(read_queue_size=2, refresh_enabled=False))
        assert mc.enqueue(read_request(bank=0))
        assert mc.enqueue(read_request(bank=1))
        assert not mc.enqueue(read_request(bank=2))
        assert mc.read_queue_free == 0

    def test_write_queue_capacity(self):
        events, mc = make_controller(
            config=ControllerConfig(write_queue_size=1, refresh_enabled=False))
        assert mc.enqueue(write_request())
        assert not mc.enqueue(write_request())


class TestWriteDrain:
    def test_writes_complete_eventually(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False))
        writes = [write_request(bank=i % 8, row=i) for i in range(40)]
        for w in writes:
            assert mc.enqueue(w)
        run_until_done(events, writes)
        assert mc.stats.writes_done == 40

    def test_reads_prioritised_over_casual_writes(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False))
        # A few writes below the watermark plus one read: the read's
        # latency must stay close to idle (writes fill bus gaps only).
        for i in range(4):
            mc.enqueue(write_request(bank=1, row=i))
        read = read_request(bank=0, row=0)
        mc.enqueue(read)
        run_until_done(events, [read])
        idle = DDR3.t_rcd + DDR3.t_rl + DDR3.t_burst
        assert read.completion_time <= idle + 3 * DDR3.t_burst


class TestPrefetchPriority:
    def test_demand_beats_older_prefetch(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False,
                                    prefetch_age_threshold=10**9))
        prefetches = [read_request(bank=b, row=1, is_prefetch=True)
                      for b in range(4)]
        for p in prefetches:
            mc.enqueue(p)
        demand = read_request(bank=5, row=1)
        mc.enqueue(demand)
        run_until_done(events, prefetches + [demand])
        assert demand.first_command_time <= min(
            p.first_command_time for p in prefetches[1:])

    def test_aged_prefetch_promoted(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False,
                                    prefetch_age_threshold=100))
        p = read_request(bank=0, is_prefetch=True)
        mc.enqueue(p)
        run_until_done(events, [p])
        assert p.promoted or p.first_command_time < 100


class TestRefresh:
    def test_refresh_happens(self):
        events, mc = make_controller(config=ControllerConfig())
        req = read_request(bank=0)
        mc.enqueue(req)
        run_until_done(events, [req])
        # Run past several tREFI periods.
        events.run_until(3 * DDR3.t_refi)
        while events.peek_time() is not None and \
                events.peek_time() <= 3 * DDR3.t_refi:
            events.step()
        assert mc.stats.refreshes >= 2

    def test_read_delayed_by_refresh_completes(self):
        events, mc = make_controller(config=ControllerConfig())
        events.run_until(DDR3.t_refi - 10)
        req = read_request(bank=0)
        mc.enqueue(req)
        run_until_done(events, [req])
        assert req.completion_time is not None


class TestFCFSAblation:
    def test_fcfs_serves_in_order(self):
        events, mc = make_controller(
            config=ControllerConfig(scheduling=SchedulingPolicy.FCFS,
                                    refresh_enabled=False))
        # A row hit that arrives later must NOT jump an older row miss.
        old = read_request(bank=0, row=1)
        mc.enqueue(old)
        events.run_until(2)
        hit = read_request(bank=0, row=1, column=3)
        mc.enqueue(hit)
        run_until_done(events, [old, hit])
        assert old.data_start_time < hit.data_start_time

    def test_frfcfs_lets_row_hit_jump(self):
        events, mc = make_controller(
            config=ControllerConfig(refresh_enabled=False))
        # Open row 1 via a completed request, then queue a conflicting
        # request and a row hit; FR-FCFS issues the hit first.
        warm = read_request(bank=0, row=1)
        mc.enqueue(warm)
        run_until_done(events, [warm])
        miss = read_request(bank=0, row=2)
        hit = read_request(bank=0, row=1, column=5)
        mc.enqueue(miss)
        mc.enqueue(hit)
        run_until_done(events, [miss, hit])
        assert hit.data_start_time < miss.data_start_time


class TestSubchannelMapping:
    def test_rank_to_bus_routing(self):
        # The aggregated critical-word channel: ranks map to distinct
        # data buses; simultaneous reads on different ranks overlap.
        events, mc = make_controller(
            device=RLDRAM3_DEVICE, timing=RLD, num_ranks=4, num_buses=4,
            cmd_slots=2, rank_to_bus={i: i for i in range(4)},
            config=ControllerConfig(refresh_enabled=False))
        reqs = [read_request(bank=0, rank=r) for r in range(4)]
        for r in reqs:
            mc.enqueue(r)
        run_until_done(events, reqs)
        starts = sorted(r.data_start_time for r in reqs)
        # With 2 command slots per bus cycle and private data buses, all
        # four transfers overlap (no full-burst serialisation).
        assert starts[-1] - starts[0] < 4 * RLD.t_burst
