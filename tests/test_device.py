"""Device geometry presets and validation."""

import pytest

from repro.dram.device import (
    DDR3_DEVICE,
    DeviceConfig,
    DRAMKind,
    LPDDR2_DEVICE,
    PagePolicy,
    RLDRAM3_DEVICE,
    device_for,
)
from repro.dram.timing import DDR3_TIMING


class TestPresets:
    def test_ddr3_is_2gbit(self):
        assert DDR3_DEVICE.capacity_mbit == 2048
        assert DDR3_DEVICE.num_banks == 8
        assert DDR3_DEVICE.data_width_bits == 8

    def test_rldram3_is_576mbit_16banks(self):
        assert RLDRAM3_DEVICE.capacity_mbit == 576
        assert RLDRAM3_DEVICE.num_banks == 16
        assert RLDRAM3_DEVICE.data_width_bits == 9  # 8 data + parity

    def test_rldram3_close_page_single_command(self):
        assert RLDRAM3_DEVICE.page_policy is PagePolicy.CLOSE
        assert RLDRAM3_DEVICE.single_command_addressing
        assert not RLDRAM3_DEVICE.supports_power_down

    def test_open_page_parts(self):
        assert DDR3_DEVICE.page_policy is PagePolicy.OPEN
        assert LPDDR2_DEVICE.page_policy is PagePolicy.OPEN

    def test_geometry_consistent_with_capacity(self):
        for dev in (DDR3_DEVICE, LPDDR2_DEVICE, RLDRAM3_DEVICE):
            bits = (dev.num_banks * dev.num_rows * dev.num_cols
                    * dev.data_width_bits)
            assert bits == dev.capacity_mbit * 1024 * 1024

    def test_row_size(self):
        # 1K columns x 8 bits = 1 KB row buffer per DDR3 chip.
        assert DDR3_DEVICE.row_size_bytes == 1024

    def test_device_for(self):
        assert device_for(DRAMKind.DDR3) is DDR3_DEVICE
        assert device_for(DRAMKind.RLDRAM3) is RLDRAM3_DEVICE
        assert device_for(DRAMKind.LPDDR2) is LPDDR2_DEVICE


class TestValidation:
    def test_rejects_inconsistent_capacity(self):
        with pytest.raises(ValueError):
            DeviceConfig(kind=DRAMKind.DDR3, part_number="bogus",
                         timing=DDR3_TIMING, capacity_mbit=4096,
                         data_width_bits=8, num_banks=8, num_rows=32768,
                         num_cols=1024, page_policy=PagePolicy.OPEN)

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            DeviceConfig(kind=DRAMKind.DDR3, part_number="bogus",
                         timing=DDR3_TIMING, capacity_mbit=2048,
                         data_width_bits=8, num_banks=0, num_rows=32768,
                         num_cols=1024, page_policy=PagePolicy.OPEN)
