"""MemoryRequest record invariants."""

import pytest

from repro.dram.request import (
    LINE_BYTES,
    MemoryRequest,
    RequestKind,
    WORDS_PER_LINE,
)


class TestValidation:
    def test_rejects_bad_critical_word(self):
        with pytest.raises(ValueError):
            MemoryRequest(kind=RequestKind.READ, address=0, critical_word=8)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryRequest(kind=RequestKind.READ, address=-64)

    def test_line_geometry_constants(self):
        assert LINE_BYTES == 64
        assert WORDS_PER_LINE == 8


class TestIdentity:
    def test_request_ids_unique(self):
        a = MemoryRequest(kind=RequestKind.READ, address=0)
        b = MemoryRequest(kind=RequestKind.READ, address=0)
        assert a.request_id != b.request_id

    def test_line_address(self):
        r = MemoryRequest(kind=RequestKind.READ, address=3 * 64 + 17)
        assert r.line_address == 3

    def test_is_read(self):
        assert MemoryRequest(kind=RequestKind.READ, address=0).is_read
        assert not MemoryRequest(kind=RequestKind.WRITE, address=0).is_read


class TestLatencyViews:
    def make(self):
        r = MemoryRequest(kind=RequestKind.READ, address=0)
        r.arrival_time = 100
        return r

    def test_unserved_latencies_none(self):
        r = self.make()
        assert r.queue_latency is None
        assert r.core_latency is None
        assert r.total_latency is None

    def test_latency_decomposition(self):
        r = self.make()
        r.first_command_time = 150
        r.critical_word_time = 250
        assert r.queue_latency == 50
        assert r.core_latency == 100
        assert r.total_latency == 150
        assert r.total_latency == r.queue_latency + r.core_latency
