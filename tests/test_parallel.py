"""RunSpec pipeline: specs, cache keys, executor, determinism."""

import json
import pickle
import threading

import pytest

from repro.experiments import EXPERIMENT_SPECS, suite_specs
from repro.experiments.cwf_eval import figure_6, specs_figure_6
from repro.experiments.executor import (
    ParallelExecutor,
    resolve_jobs,
    resolve_results,
    run_specs,
)
from repro.experiments.homogeneous import figure_1a, specs_figure_1a
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    ResultCache,
)
from repro.experiments.specs import (
    RUNNER_REGISTRY,
    RunSpec,
    config_digest,
    spec_cache_key,
)
from repro.sim.config import MemoryKind
from repro.sim.system import SimResult


def make_result(benchmark="b", cycles=10):
    return SimResult(
        benchmark=benchmark, memory="ddr3", num_cores=8,
        elapsed_cycles=cycles, instructions=100, per_core_ipc=[1.0],
        dram_reads=5, dram_writes=1, demand_reads=5, avg_queue_latency=1.0,
        avg_core_latency=2.0, avg_critical_latency=3.0, avg_fill_latency=4.0,
        fast_service_fraction=0.5, bus_utilization=0.1, memory_power_mw=100.0,
        memory_power_by_family={"ddr3": 100.0}, l2_hit_rate=0.9)


class TestRunSpec:
    def test_hashable_and_equal(self):
        a = RunSpec("mcf", MemoryKind.RL)
        b = RunSpec("mcf", MemoryKind.RL)
        assert a == b and hash(a) == hash(b)
        assert a != RunSpec("mcf", MemoryKind.RL, variant="noprefetch")

    def test_picklable(self):
        spec = RunSpec("mcf", MemoryKind.RL, variant="x",
                       overrides=(("prefetcher_enabled", False),),
                       runner="r", params=(("k", 1),))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_overrides_resolve(self):
        config = ExperimentConfig(target_dram_reads=100)
        spec = RunSpec("mcf", MemoryKind.RL,
                       overrides=(("prefetcher_enabled", False),
                                  ("mshr_capacity", 16)))
        sim = spec.resolved_sim_config(config)
        assert not sim.uncore.prefetcher.enabled
        assert sim.uncore.mshr_capacity == 16
        assert sim.memory == "rl"

    def test_label(self):
        assert RunSpec("mcf", MemoryKind.RL).label == "mcf/rl"
        assert RunSpec("mcf", MemoryKind.RL,
                       variant="noprefetch").label == "mcf/rl/noprefetch"


class TestCacheKey:
    def test_v8_versioned(self):
        key = spec_cache_key(RunSpec("mcf", MemoryKind.DDR3),
                             ExperimentConfig())
        assert key.startswith("v8|")

    def test_key_covers_full_sim_config(self):
        # A config-knob change no old-style key field captured (MSHR
        # size) must still produce a distinct key.
        config = ExperimentConfig(target_dram_reads=100)
        plain = spec_cache_key(RunSpec("mcf", MemoryKind.DDR3), config)
        tweaked = spec_cache_key(
            RunSpec("mcf", MemoryKind.DDR3,
                    overrides=(("mshr_capacity", 16),)), config)
        assert plain != tweaked

    def test_key_varies_with_reads_and_seed(self):
        spec = RunSpec("mcf", MemoryKind.DDR3)
        keys = {
            spec_cache_key(spec, ExperimentConfig(target_dram_reads=100)),
            spec_cache_key(spec, ExperimentConfig(target_dram_reads=200)),
            spec_cache_key(spec, ExperimentConfig(target_dram_reads=100,
                                                  seed=7)),
        }
        assert len(keys) == 3

    def test_digest_stable(self):
        config = ExperimentConfig(target_dram_reads=100)
        sim = config.sim_config(MemoryKind.DDR3)
        assert config_digest(sim) == config_digest(sim)


class TestResultCacheAtomicity:
    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key", make_result())
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert not leftovers
        assert cache.get("key").elapsed_cycles == 10

    def test_concurrent_writers_same_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        errors = []

        def writer(cycles):
            try:
                for _ in range(20):
                    cache.put("key", make_result(cycles=cycles))
                    loaded = cache.get("key")
                    # Never a torn/corrupt entry: either version is fine.
                    assert loaded is not None
                    assert loaded.elapsed_cycles in (10, 99)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(c,))
                   for c in (10, 99)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestTableAlignment:
    def test_long_cells_keep_grid(self):
        table = ExperimentTable("t", "demo", ["benchmark", "value"])
        table.add(benchmark="a-very-long-benchmark-name-indeed", value=1.0)
        table.add(benchmark="b", value=2.0)
        lines = table.format().splitlines()
        header, rule, rows = lines[1], lines[2], lines[3:]
        # Every row padded to the same full width; rule spans the grid.
        assert len({len(r) for r in rows}) == 1
        assert len(rows[0]) == len(header) == len(rule)
        # The value column starts at the same offset in every row.
        offset = rows[0].index("1.000")
        assert rows[1][offset:offset + 5] == "2.000"


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1


class TestExecutor:
    def counting_runner(self, monkeypatch, calls):
        def runner(spec, config):
            calls.append(spec)
            return make_result(spec.benchmark)
        monkeypatch.setitem(RUNNER_REGISTRY, "counting", runner)
        return runner

    def test_dedupes_repeated_specs(self, monkeypatch, tmp_path):
        calls = []
        self.counting_runner(monkeypatch, calls)
        config = ExperimentConfig(target_dram_reads=50,
                                  cache_dir=str(tmp_path))
        spec = RunSpec("mcf", MemoryKind.DDR3, runner="counting")
        results = run_specs([spec, spec, spec], config, jobs=1)
        assert len(calls) == 1
        assert results[spec].benchmark == "mcf"

    def test_cache_recall_skips_execution(self, monkeypatch, tmp_path):
        calls = []
        self.counting_runner(monkeypatch, calls)
        config = ExperimentConfig(target_dram_reads=50,
                                  cache_dir=str(tmp_path))
        spec = RunSpec("mcf", MemoryKind.DDR3, runner="counting")
        run_specs([spec], config, jobs=1)
        executor = ParallelExecutor(config, jobs=1)
        results = executor.run([spec])
        assert len(calls) == 1  # second invocation recalled from disk
        assert executor.timings[0]["cached"] is True
        assert results[spec].benchmark == "mcf"

    def test_resolve_results_fills_missing(self, monkeypatch, tmp_path):
        calls = []
        self.counting_runner(monkeypatch, calls)
        config = ExperimentConfig(target_dram_reads=50,
                                  cache_dir=str(tmp_path))
        have = RunSpec("mcf", MemoryKind.DDR3, runner="counting")
        missing = RunSpec("leslie3d", MemoryKind.DDR3, runner="counting")
        results = resolve_results([have, missing], config,
                                  results={have: make_result("a")})
        assert set(results) == {have, missing}
        assert calls == [missing]

    def test_timings_recorded(self, monkeypatch, tmp_path):
        calls = []
        self.counting_runner(monkeypatch, calls)
        config = ExperimentConfig(target_dram_reads=50,
                                  cache_dir=str(tmp_path))
        executor = ParallelExecutor(config, jobs=1)
        executor.run([RunSpec("mcf", MemoryKind.DDR3, runner="counting")])
        record, = executor.timings
        assert record["benchmark"] == "mcf"
        assert record["cached"] is False
        assert json.dumps(executor.timings)  # artifact-serialisable


class TestSuiteSpecs:
    def test_union_dedupes_shared_baselines(self):
        config = ExperimentConfig(target_dram_reads=50,
                                  benchmarks=("mcf",), cache_dir=None)
        union = suite_specs(["fig6", "fig7", "fig8", "fig9"], config)
        total = sum(len(EXPERIMENT_SPECS[k](config))
                    for k in ("fig6", "fig7", "fig8", "fig9"))
        assert len(union) < total
        # fig6+fig7 share all 4 runs and fig8's RL/fig9's DDR3+RL are
        # shared too: {ddr3, rd, rl, dl} + {rl_ad, rl_or, rldram3} = 7.
        assert len(union) == 7

    def test_every_experiment_has_a_provider(self):
        from repro.experiments import ALL_EXPERIMENTS
        assert set(EXPERIMENT_SPECS) == set(ALL_EXPERIMENTS)


class TestParallelSerialDeterminism:
    """Same seed, cold caches: jobs=2 output must equal jobs=1 output."""

    READS = 120

    def _run(self, figure, specs_fn, jobs, cache_dir):
        config = ExperimentConfig(target_dram_reads=self.READS,
                                  benchmarks=("mcf",),
                                  cache_dir=str(cache_dir))
        results = run_specs(specs_fn(config), config, jobs=jobs)
        return figure(config, results=results).format()

    def test_figure_1a(self, tmp_path):
        serial = self._run(figure_1a, specs_figure_1a, 1, tmp_path / "s")
        parallel = self._run(figure_1a, specs_figure_1a, 2, tmp_path / "p")
        assert serial == parallel

    def test_figure_6(self, tmp_path):
        serial = self._run(figure_6, specs_figure_6, 1, tmp_path / "s")
        parallel = self._run(figure_6, specs_figure_6, 2, tmp_path / "p")
        assert serial == parallel


class TestParallelTelemetry:
    def test_worker_telemetry_merges_into_session(self, tmp_path):
        from repro.telemetry import TelemetrySession, activate, deactivate

        session = activate(TelemetrySession(trace_enabled=False))
        try:
            config = ExperimentConfig(target_dram_reads=80, cache_dir=None)
            specs = [RunSpec("mcf", MemoryKind.DDR3),
                     RunSpec("mcf", MemoryKind.RL)]
            run_specs(specs, config, jobs=2)
        finally:
            deactivate()
        assert {r["memory"] for r in session.runs} == {"ddr3", "rl"}
        for record in session.runs:
            assert "memsys.critical_latency_cycles" in record["metrics"]

    def test_ingest_remaps_trace_pids(self):
        from repro.telemetry import TelemetrySession

        session = TelemetrySession(trace_enabled=True)
        session.ingest([], [{"name": "x", "pid": 1, "tid": 0}])
        session.ingest([], [{"name": "y", "pid": 1, "tid": 0}])
        pids = [t.events[0]["pid"] for t in session._tracers]
        assert len(set(pids)) == 2

class TestPersistentExecutor:
    """Service-mode executor: one pool across run() calls."""

    READS = 60

    def config(self, tmp_path, reads=READS):
        return ExperimentConfig(target_dram_reads=reads,
                                benchmarks=("mcf",),
                                cache_dir=str(tmp_path / "cache"))

    def test_pool_survives_across_runs(self, tmp_path):
        config = self.config(tmp_path)
        with ParallelExecutor(config, jobs=2, persistent=True) as executor:
            executor.run([RunSpec("mcf", "ddr3")])
            pool = executor._pool
            assert pool is not None  # kept warm after the batch
            executor.run([RunSpec("mcf", "rl")])
            assert executor._pool is pool  # no respawn for batch two
        assert executor._pool is None  # context exit tears it down

    def test_default_executor_releases_pool(self, tmp_path):
        executor = ParallelExecutor(self.config(tmp_path), jobs=2)
        executor.run([RunSpec("mcf", "ddr3")])
        assert executor._pool is None

    def test_reconfiguring_live_pool_raises(self, tmp_path):
        config = self.config(tmp_path)
        executor = ParallelExecutor(config, jobs=2, persistent=True)
        try:
            executor.run([RunSpec("mcf", "ddr3")])
            with pytest.raises(RuntimeError, match="live worker pool"):
                executor.jobs = 4
            assert executor.jobs == 2  # unchanged by the failed set
        finally:
            executor.shutdown()
        # With the pool gone the same assignment is legal again.
        executor.jobs = 4
        assert executor.jobs == 4

    def test_jobs_resolved_once_at_construction(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        executor = ParallelExecutor(self.config(tmp_path))
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert executor.jobs == 3  # later env changes never apply silently

    def test_per_call_config_override(self, tmp_path):
        base = self.config(tmp_path)
        # Far enough apart that the epoch-granular stop check actually
        # yields a different simulation, not just a different key.
        other = self.config(tmp_path, reads=600)
        executor = ParallelExecutor(base, jobs=1)
        spec = RunSpec("mcf", "ddr3")
        a = executor.run([spec])[spec]
        b = executor.run([spec], config=other)[spec]
        # Distinct configs key (and simulate) independently...
        assert not executor.timings[1]["cached"]
        assert b.dram_reads > a.dram_reads
        # ...and each is recalled under its own config afterwards.
        assert executor.run([spec], config=other)[spec] == b
        assert executor.timings[2]["cached"] is True


class TestCacheStats:
    def test_counters_track_traffic(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.stats() == {"directory": str(tmp_path), "hits": 0,
                                 "misses": 0, "writes": 0, "quarantined": 0}
        assert cache.get("key") is None
        cache.put("key", make_result())
        assert cache.get("key") is not None
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["writes"]) == (1, 1, 1)

    def test_contains_probe_is_free(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert not cache.contains("key")
        cache.put("key", make_result())
        assert cache.contains("key")
        assert cache.stats()["hits"] == cache.stats()["misses"] == 0

    def test_corrupt_entry_counted_as_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key", make_result())
        cache._path("key").write_text("not json {")
        assert cache.get("key") is None
        assert cache.stats()["quarantined"] == 1

    def test_null_cache_stats(self):
        cache = ResultCache(None)
        assert cache.stats()["directory"] is None
        assert not cache.contains("key")
